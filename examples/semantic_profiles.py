"""Table I walkthrough: the three similarity measures on example patients.

Recreates the paper's Table I patients (acute bronchitis / chest pains /
tracheobronchitis + broken arm) and shows all three similarity measures
of Section V side by side:

* the SNOMED shortest-path distances the paper quotes (5 and 2),
* the semantic similarity SS (harmonic mean, Equation 4),
* the TF-IDF profile similarity CS (Equation 3),
* and, after attaching a few document ratings, the Pearson rating
  similarity RS (Equation 2).

Run with::

    python examples/semantic_profiles.py
"""

from __future__ import annotations

from repro.data.datasets import paper_example_users
from repro.data.ratings import RatingMatrix
from repro.ontology.snomed import (
    ACUTE_BRONCHITIS,
    CHEST_PAIN,
    TRACHEOBRONCHITIS,
    build_snomed_like_ontology,
)
from repro.similarity.profile_sim import ProfileSimilarity
from repro.similarity.ratings_sim import PearsonRatingSimilarity
from repro.similarity.semantic_sim import SemanticSimilarity


def main() -> None:
    ontology = build_snomed_like_ontology()
    patients = paper_example_users(ontology)

    print("Table I patients:")
    for user in patients:
        problems = ", ".join(problem.name for problem in user.record.problems)
        print(f"  {user.user_id}: {user.gender}, {user.age} — problems: {problems}")

    print("\nSNOMED-like shortest paths (Section V.C.1):")
    print(
        "  acute bronchitis ↔ chest pain:        "
        f"{ontology.shortest_path_length(ACUTE_BRONCHITIS, CHEST_PAIN)} (paper: 5)"
    )
    print(
        "  acute bronchitis ↔ tracheobronchitis: "
        f"{ontology.shortest_path_length(ACUTE_BRONCHITIS, TRACHEOBRONCHITIS)} (paper: 2)"
    )

    semantic = SemanticSimilarity(patients, ontology)
    profile = ProfileSimilarity(patients)

    print("\nuser-level similarities:")
    pairs = [("patient-1", "patient-2"), ("patient-1", "patient-3"), ("patient-2", "patient-3")]
    print(f"  {'pair':28s} {'SS (semantic)':>14s} {'CS (profile)':>14s}")
    for user_a, user_b in pairs:
        print(
            f"  {user_a} vs {user_b:12s} "
            f"{semantic(user_a, user_b):14.3f} {profile(user_a, user_b):14.3f}"
        )

    # Attach a handful of document ratings so RS is defined as well: the two
    # respiratory patients rate the breathing-exercise documents alike.
    ratings = RatingMatrix(
        [
            ("patient-1", "doc-breathing", 5.0),
            ("patient-1", "doc-inhaler", 4.0),
            ("patient-1", "doc-heart", 2.0),
            ("patient-2", "doc-breathing", 2.0),
            ("patient-2", "doc-inhaler", 1.0),
            ("patient-2", "doc-heart", 5.0),
            ("patient-3", "doc-breathing", 5.0),
            ("patient-3", "doc-inhaler", 5.0),
            ("patient-3", "doc-heart", 1.0),
        ]
    )
    pearson = PearsonRatingSimilarity(ratings)
    print("\nrating similarity RS after a few shared document ratings:")
    for user_a, user_b in pairs:
        print(f"  {user_a} vs {user_b}: {pearson(user_a, user_b):+.3f}")

    print(
        "\nAll three views agree that patient-1 (acute bronchitis) has more in "
        "common with patient-3 (tracheobronchitis) than with patient-2 (chest pain)."
    )


if __name__ == "__main__":
    main()
