"""Running the recommender as the paper's MapReduce pipeline (Section IV).

Shows the three jobs of Figure 2 executing on the in-process MapReduce
engine, prints Hadoop-style counters for each job, compares the result
with the in-memory group recommender (they are identical), and finishes
with the centralised Algorithm 1 selection — exactly the flow described
in Section IV.

Run with::

    python examples/mapreduce_pipeline.py
"""

from __future__ import annotations

from repro import generate_dataset
from repro.core.greedy import FairnessAwareGreedy
from repro.core.group import GroupRecommender
from repro.data.groups import random_group
from repro.mapreduce.runner import MapReduceGroupRecommender
from repro.similarity.ratings_sim import PearsonRatingSimilarity


def main() -> None:
    dataset = generate_dataset(num_users=80, num_items=120, ratings_per_user=20, seed=5)
    group = random_group(dataset.users.ids(), 4, seed=1)
    print(f"group: {', '.join(group.member_ids)}")
    print(f"input: {dataset.num_ratings} rating triples (u, i, rating)")

    # --- MapReduce execution (Jobs 1-3 of Figure 2) -----------------------
    runner = MapReduceGroupRecommender(
        dataset.ratings, peer_threshold=0.0, aggregation="average", top_k=10
    )
    result = runner.run(group, use_mapreduce_topk=True)

    print("\nJob counters (Hadoop-style):")
    for job_name, counters in result.counters.items():
        stats = counters.as_dict()
        print(
            f"  {job_name}: map in={stats['map_input_records']} "
            f"out={stats['map_output_records']}, reduce groups={stats['reduce_input_groups']} "
            f"out={stats['reduce_output_records']}"
        )

    print(f"\ncandidate items for the group: {result.candidates.num_candidates}")
    print("top items by group relevance (computed with the MapReduce top-k job):")
    for item in result.top_items[:5]:
        print(f"  {item.item_id}  {item.score:.3f}")

    # --- Equivalence with the in-memory recommender ------------------------
    in_memory = GroupRecommender(
        dataset.ratings,
        PearsonRatingSimilarity(dataset.ratings),
        peer_threshold=0.0,
        top_k=10,
    ).build_candidates(group)
    max_diff = max(
        abs(result.candidates.group_relevance[item_id] - score)
        for item_id, score in in_memory.group_relevance.items()
    )
    print(f"\nmax |MapReduce - in-memory| group relevance difference: {max_diff:.2e}")

    # --- Centralised Algorithm 1 on the MapReduce output -------------------
    selection = FairnessAwareGreedy().select(result.candidates, z=8)
    print("\nfairness-aware selection computed centrally on the MR output:")
    print(f"  items:    {', '.join(selection.items)}")
    print(f"  fairness: {selection.fairness:.2f}   value: {selection.value:.2f}")


if __name__ == "__main__":
    main()
