"""Nutrition workload: recommending recipes to a caregiver's patients.

The demonstrator behind the paper was evaluated with nutrition content:
patients with dietary conditions (diabetes, hypertension, ...) rating
recipes and dietary guidance.  This example runs the full pipeline on
the synthetic nutrition workload:

1. generate recipes with nutrient profiles and patients whose ratings
   follow their dietary conditions,
2. build a caregiver group of patients with *different* conditions,
3. produce the fairness-aware recommendation and check that each
   patient receives at least one recipe compatible with their needs.

Run with::

    python examples/nutrition_group.py
"""

from __future__ import annotations

from repro import CaregiverPipeline, RecommenderConfig
from repro.data.groups import Group
from repro.data.nutrition import generate_nutrition_dataset
from repro.eval.metrics import group_satisfaction


def pick_group_with_distinct_conditions(dataset, size: int = 4) -> Group:
    """Choose patients whose primary dietary conditions differ."""
    chosen: list[str] = []
    seen_conditions: set[str] = set()
    for user in dataset.users:
        problems = tuple(sorted(p.name for p in user.record.problems))
        if problems and problems[0] not in seen_conditions:
            seen_conditions.add(problems[0])
            chosen.append(user.user_id)
        if len(chosen) == size:
            break
    return Group(member_ids=chosen, caregiver_id="dietitian", name="mixed conditions")


def main() -> None:
    dataset = generate_nutrition_dataset(
        num_users=80, num_recipes=150, ratings_per_user=20, seed=11
    )
    print(
        f"nutrition dataset: {dataset.num_users} patients, "
        f"{dataset.num_items} recipes, {dataset.num_ratings} ratings"
    )

    group = pick_group_with_distinct_conditions(dataset, size=4)
    print("\ncaregiver group (dietitian's patients):")
    for member_id in group:
        user = dataset.users.get(member_id)
        conditions = ", ".join(problem.name for problem in user.record.problems)
        print(f"  {member_id}: {conditions}")

    config = RecommenderConfig(
        similarity="ratings",
        aggregation="average",
        peer_threshold=0.0,
        top_k=10,
        top_z=8,
        candidate_pool_size=30,
    )
    pipeline = CaregiverPipeline(dataset, config)
    recommendation = pipeline.recommend(group)

    print("\nrecommended recipes (fairness-aware, Algorithm 1):")
    for item_id in recommendation.items:
        recipe = dataset.items.get(item_id)
        score = recommendation.candidates.item_group_relevance(item_id)
        print(f"  {item_id}  group-relevance={score:.2f}  {recipe.title}")

    report = recommendation.report
    print(f"\nfairness: {report.fairness:.2f}   value: {report.value:.2f}")
    print("per-patient satisfaction:")
    for member_id, score in group_satisfaction(
        recommendation.candidates, list(recommendation.items)
    ).items():
        print(f"  {member_id}: {score:.2f}")

    print("\nper-patient best-ranked recommendation (lower is better):")
    for member_id, rank in report.per_user_best_rank.items():
        print(f"  {member_id}: rank {rank} in their personal candidate ranking")


if __name__ == "__main__":
    main()
