"""Caregiver scenario mirroring the paper's architecture (Figure 1).

A caregiver is responsible for a *divergent* group of cancer patients
whose interests differ (the situation that motivates fairness in Section
III.C).  The example

1. builds the group around an anchor patient with the *least* rating
   overlap with the rest of the population,
2. compares the two aggregation designs of Definition 2 (average vs.
   least-misery veto),
3. shows how the plain top-z can leave the anchor patient without any
   relevant suggestion while the fairness-aware selection covers every
   member, and
4. prints the per-member satisfaction breakdown the caregiver would see.

Run with::

    python examples/caregiver_pipeline.py
"""

from __future__ import annotations

from repro import CaregiverPipeline, RecommenderConfig, generate_dataset
from repro.core.fairness import fairness_report
from repro.data.groups import diverse_group
from repro.eval.metrics import group_satisfaction


def describe_selection(label, candidates, items) -> None:
    report = fairness_report(candidates, list(items))
    print(f"\n--- {label} ---")
    print(f"  items:    {', '.join(items)}")
    print(f"  fairness: {report.fairness:.2f}    value: {report.value:.2f}")
    if report.unsatisfied_users:
        print(f"  members with no relevant item: {', '.join(report.unsatisfied_users)}")
    satisfaction = group_satisfaction(candidates, list(items))
    for member, score in satisfaction.items():
        print(f"    satisfaction[{member}] = {score:.2f}")


def main() -> None:
    dataset = generate_dataset(num_users=120, num_items=200, ratings_per_user=20, seed=17)
    anchor = dataset.users.ids()[0]
    group = diverse_group(dataset.ratings, anchor, size=5, seed=2)
    print(f"divergent caregiver group around {anchor}: {', '.join(group.member_ids)}")

    for aggregation in ("average", "minimum"):
        config = RecommenderConfig(
            aggregation=aggregation,
            peer_threshold=0.0,
            top_k=8,
            top_z=6,
            candidate_pool_size=30,
        )
        pipeline = CaregiverPipeline(dataset, config)
        recommendation = pipeline.recommend(group)

        print(f"\n=== aggregation = {aggregation} ===")
        describe_selection(
            "plain top-z by group relevance",
            recommendation.candidates,
            [item.item_id for item in recommendation.plain_top_z],
        )
        describe_selection(
            "fairness-aware selection (Algorithm 1)",
            recommendation.candidates,
            list(recommendation.items),
        )


if __name__ == "__main__":
    main()
