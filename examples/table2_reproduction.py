"""Reproduce the paper's Table II from the command line.

Runs the brute-force and heuristic selections over the (m, z) grid of
Section VI and prints the timing table in the same shape as Table II.
By default the enormous cells (hundreds of millions of subsets) are
skipped; pass ``--full`` to run the complete grid exactly like the paper
(expect minutes to hours for m = 30 with mid-range z, which is precisely
the point the paper makes).

Run with::

    python examples/table2_reproduction.py            # tractable cells
    python examples/table2_reproduction.py --full     # the whole grid
"""

from __future__ import annotations

import argparse

from repro.eval.experiments import run_table2, verify_proposition1
from repro.eval.reporting import format_proposition1, format_table2


def main() -> None:
    parser = argparse.ArgumentParser(description="Reproduce Table II")
    parser.add_argument(
        "--full",
        action="store_true",
        help="run every (m, z) cell, including the multi-minute brute-force ones",
    )
    parser.add_argument(
        "--max-subsets",
        type=int,
        default=6_000_000,
        help="skip brute-force cells above this subset count (ignored with --full)",
    )
    parser.add_argument("--group-size", type=int, default=4)
    parser.add_argument("--repeats", type=int, default=1)
    args = parser.parse_args()

    max_subsets = None if args.full else args.max_subsets
    print("Reproducing Table II (brute force vs. fairness-aware heuristic)...")
    if not args.full:
        print(f"(skipping cells with more than {args.max_subsets:,} subsets; use --full)")
    result = run_table2(
        group_size=args.group_size, repeats=args.repeats, max_subsets=max_subsets
    )
    print()
    print(format_table2(result))

    print("\nObservations (the shapes Table II demonstrates):")
    slowest = max(result.rows, key=lambda row: row.brute_force_ms)
    print(
        f"  * largest brute-force cell: m={slowest.m}, z={slowest.z} took "
        f"{slowest.brute_force_ms:.1f} ms vs {slowest.heuristic_ms:.3f} ms for the heuristic "
        f"({slowest.speedup:,.0f}x)"
    )
    print(
        "  * the heuristic stays in the sub-millisecond range across the grid, while"
        " the brute force grows with (m choose z)"
    )
    print("  * fairness of both algorithms is identical (= 1) in every cell")

    print("\nProposition 1 verification (fairness = 1 whenever z >= |G|):")
    print(format_proposition1(verify_proposition1()))


if __name__ == "__main__":
    main()
