"""Quickstart: fairness-aware recommendations for a caregiver group.

Generates a synthetic health dataset (patients, PHR profiles, expert
documents, ratings), forms a caregiver group, and produces the top-z
fairness-aware recommendation of the paper, printing both the plain
top-z-by-group-relevance list and the fairness-aware selection so the
difference is visible.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import CaregiverPipeline, RecommenderConfig, generate_dataset
from repro.core.fairness import fairness
from repro.eval.metrics import summarize_selection


def main() -> None:
    # 1. Data: 100 synthetic patients rating 200 expert-curated documents.
    dataset = generate_dataset(num_users=100, num_items=200, ratings_per_user=25, seed=7)
    print(
        f"dataset: {dataset.num_users} patients, {dataset.num_items} documents, "
        f"{dataset.num_ratings} ratings"
    )

    # 2. The caregiver is responsible for a group of five patients.
    group = dataset.random_group(size=5, seed=3)
    print(f"caregiver group: {', '.join(group.member_ids)}")

    # 3. Configure the recommender: Pearson similarity (Eq. 2), average
    #    aggregation, per-user top-k = 10, return z = 10 suggestions out of
    #    an m = 30 candidate pool.
    config = RecommenderConfig(
        similarity="ratings",
        aggregation="average",
        peer_threshold=0.0,
        top_k=10,
        top_z=10,
        candidate_pool_size=30,
    )
    pipeline = CaregiverPipeline(dataset, config)

    # 4. Recommend.
    recommendation = pipeline.recommend(group)

    print("\n--- plain top-z by group relevance (Definition 2 only) ---")
    plain_items = [item.item_id for item in recommendation.plain_top_z]
    for item in recommendation.plain_top_z:
        print(f"  {item.item_id}  score={item.score:.3f}  {dataset.items.get(item.item_id).title}")
    print(f"  fairness of the plain list: {fairness(recommendation.candidates, plain_items):.2f}")

    print("\n--- fairness-aware selection (Algorithm 1) ---")
    for item_id in recommendation.items:
        score = recommendation.candidates.item_group_relevance(item_id)
        print(f"  {item_id}  score={score:.3f}  {dataset.items.get(item_id).title}")
    report = recommendation.report
    print(f"  fairness: {report.fairness:.2f}   value(G, D): {report.value:.2f}")
    print(f"  satisfied members: {', '.join(report.satisfied_users)}")

    print("\n--- summary metrics ---")
    summary = summarize_selection(recommendation.candidates, list(recommendation.items))
    for name, metric in summary.items():
        print(f"  {name:22s} {metric:.3f}")


if __name__ == "__main__":
    main()
