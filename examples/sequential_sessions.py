"""Sequential caregiver sessions with explanations.

The paper's future-work section anticipates the system accompanying
patients *over time*.  This example simulates a caregiver who requests a
fresh batch of suggestions every week for the same group:

1. each round excludes everything already suggested;
2. members who were under-served in earlier rounds are prioritised;
3. each round's selection is explained in caregiver-readable text
   (which member each item serves, and why).

Run with::

    python examples/sequential_sessions.py
"""

from __future__ import annotations

from repro import RecommenderConfig, generate_dataset
from repro.core.explain import explain_recommendation, render_explanation
from repro.core.group import GroupRecommender
from repro.core.sequential import SequentialGroupRecommender
from repro.data.groups import diverse_group
from repro.similarity.ratings_sim import PearsonRatingSimilarity


def main() -> None:
    dataset = generate_dataset(num_users=100, num_items=200, ratings_per_user=25, seed=29)
    anchor = dataset.users.ids()[3]
    group = diverse_group(dataset.ratings, anchor, size=4, seed=1)
    print(f"caregiver group: {', '.join(group.member_ids)}")

    config = RecommenderConfig(top_k=10, top_z=5, candidate_pool_size=40, peer_threshold=0.0)
    recommender = GroupRecommender(
        dataset.ratings,
        PearsonRatingSimilarity(dataset.ratings),
        aggregation=config.aggregation,
        peer_threshold=config.peer_threshold,
        top_k=config.top_k,
    )
    candidates = recommender.build_candidates(
        group, candidate_limit=config.candidate_pool_size
    )
    print(f"candidate pool: {candidates.num_candidates} documents unknown to the whole group")

    sequential = SequentialGroupRecommender(satisfaction_boost=1.5)
    report = sequential.run(candidates, z=config.top_z, num_rounds=3)

    titles = {item_id: dataset.items.get(item_id).title for item_id in candidates.group_relevance}
    for round_result in report.rounds:
        print(f"\n===== week {round_result.round_index + 1} =====")
        explanation = explain_recommendation(candidates, round_result.recommendation)
        print(render_explanation(explanation, item_titles=titles))
        weights = ", ".join(
            f"{member}={weight:.2f}"
            for member, weight in round_result.member_weights.items()
        )
        print(f"priority weights going into the next week: {weights}")

    cumulative = report.cumulative_report(candidates)
    print("\n===== whole sequence =====")
    print(f"documents suggested in total: {len(report.all_items())}")
    print(f"mean within-round fairness:   {report.mean_round_fairness():.2f}")
    print(f"cumulative fairness:          {cumulative.fairness:.2f}")


if __name__ == "__main__":
    main()
