"""Setup shim for environments installing in legacy (non-PEP-660) mode."""

from setuptools import setup

setup()
