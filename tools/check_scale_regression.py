#!/usr/bin/env python3
"""Advisory perf gate over the scale-benchmark results.

Compares a fresh ``bench_scale`` run against the committed
``BENCH_scale.json`` baseline and **warns** (never fails) when the warm
serve speedup, the cold serve speedup or the worker-bootstrap ratio
regressed by more than the threshold (default 25%).  CI quick runs use
tiny workloads on shared runners, so timing is advisory by design:
regressions print GitHub ``::warning::`` annotations and exit 0.

Only *structural* breakage exits 1:

* missing/corrupt result files,
* a fresh run whose packed and dict outputs are no longer
  bit-identical (``identical_results``), or
* a spill bootstrap that stopped being smaller than the full state
  ship (``bootstrap_bytes``) — both mean the packed takeover itself is
  broken, not slow.

Usage::

    python tools/check_scale_regression.py BASELINE.json FRESH.json [--threshold 0.25]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: The ratio fields compared between baseline and fresh runs.
SPEEDUP_KEYS = ("warm_serve_speedup", "cold_serve_speedup", "bootstrap_ratio")


def load_result(path: Path) -> dict:
    """Read one ``BENCH_scale.json`` payload, validating its shape."""
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"error: cannot read {path}: {exc}")
    if not isinstance(payload.get("warm_serve_speedup"), (int, float)):
        raise SystemExit(f"error: {path} has no numeric 'warm_serve_speedup'")
    return payload


def compare(baseline: dict, fresh: dict, threshold: float) -> list[str]:
    """Return one warning line per ratio that regressed past the bar.

    Keys absent from either payload (e.g. ``bootstrap_ratio`` when the
    bootstrap phase was skipped) are silently ignored — quick CI runs
    may measure a subset of the full benchmark.
    """
    warnings = []
    for key in SPEEDUP_KEYS:
        old = baseline.get(key)
        new = fresh.get(key)
        if not isinstance(old, (int, float)) or not isinstance(new, (int, float)):
            continue
        floor = float(old) * (1.0 - threshold)
        if float(new) < floor:
            warnings.append(
                f"::warning::scale perf regression: {key} fell from "
                f"{float(old):.2f}x (baseline) to {float(new):.2f}x "
                f"(> {threshold:.0%} below baseline)"
            )
    return warnings


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; see the module docstring."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", type=Path, help="committed BENCH_scale.json")
    parser.add_argument("fresh", type=Path, help="freshly measured BENCH_scale.json")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="tolerated fractional ratio drop before warning (default 0.25)",
    )
    args = parser.parse_args(argv)
    baseline = load_result(args.baseline)
    fresh = load_result(args.fresh)
    if fresh.get("identical_results") is not True:
        print(
            "error: fresh scale run is not bit-identical across kernels "
            "— that is a correctness failure, not a perf one",
            file=sys.stderr,
        )
        return 1
    boot = fresh.get("bootstrap_bytes") or {}
    spill = boot.get("spill")
    full = boot.get("full_ship")
    if (
        isinstance(spill, (int, float))
        and isinstance(full, (int, float))
        and spill >= full > 0
    ):
        print(
            "error: spill bootstrap is no longer smaller than a full "
            f"state ship ({spill:.0f} >= {full:.0f} bytes) — the mmap "
            "spill path is broken",
            file=sys.stderr,
        )
        return 1
    warnings = compare(baseline, fresh, args.threshold)
    for line in warnings:
        print(line)
    if not warnings:
        summary = ", ".join(
            f"{key}={float(fresh[key]):.2f}x"
            for key in SPEEDUP_KEYS
            if isinstance(fresh.get(key), (int, float))
        )
        print(f"scale perf OK: {summary}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
