#!/usr/bin/env python3
"""Docstring-coverage gate for the public surfaces of this library.

Walks the given source trees (default: ``repro.exec``, ``repro.serving``
and ``repro.kernels``) and fails — exit code 1, one line per violation —
when any of these lacks a docstring:

* a module;
* a public (non-underscore) module-level function or class;
* a public method (including properties) of a public class.

Private names (leading underscore) and dunder methods are exempt:
their contracts belong to the enclosing public object's docs.  This is
deliberately a small, dependency-free checker rather than pydocstyle —
the container pins the toolchain, and the single rule we gate on
("exported names explain themselves") does not need a style engine.

Usage::

    python tools/check_docstrings.py [PATH ...]
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

#: The packages whose public surfaces are gated by default.
DEFAULT_TARGETS = (
    "src/repro/exec",
    "src/repro/serving",
    "src/repro/kernels",
    "src/repro/obs",
    "src/repro/mapreduce",
    "src/repro/resilience",
    "src/repro/validation",
    "src/repro/data/scale.py",
)

FunctionNode = (ast.FunctionDef, ast.AsyncFunctionDef)


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _missing_in_class(node: ast.ClassDef, module: str) -> list[str]:
    problems = []
    if ast.get_docstring(node) is None:
        problems.append(f"{module}: class {node.name} has no docstring")
    if not _is_public(node.name):
        return problems
    for child in node.body:
        if isinstance(child, FunctionNode) and _is_public(child.name):
            if ast.get_docstring(child) is None:
                problems.append(
                    f"{module}: method {node.name}.{child.name} "
                    f"has no docstring"
                )
    return problems


def check_file(path: Path) -> list[str]:
    """Return the docstring violations of one Python file."""
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    module = str(path)
    problems = []
    if ast.get_docstring(tree) is None:
        problems.append(f"{module}: module has no docstring")
    for node in tree.body:
        if isinstance(node, FunctionNode) and _is_public(node.name):
            if ast.get_docstring(node) is None:
                problems.append(
                    f"{module}: function {node.name} has no docstring"
                )
        elif isinstance(node, ast.ClassDef) and _is_public(node.name):
            problems.extend(_missing_in_class(node, module))
    return problems


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    targets = (argv if argv is not None else sys.argv[1:]) or list(
        DEFAULT_TARGETS
    )
    root = Path(__file__).resolve().parent.parent
    files: list[Path] = []
    for target in targets:
        path = (root / target) if not Path(target).is_absolute() else Path(target)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    problems: list[str] = []
    for path in files:
        problems.extend(check_file(path))
    for problem in problems:
        print(problem)
    checked = len(files)
    if problems:
        print(
            f"\ndocstring coverage FAILED: {len(problems)} missing "
            f"docstring(s) across {checked} file(s)",
            file=sys.stderr,
        )
        return 1
    print(f"docstring coverage OK: {checked} file(s) fully documented")
    return 0


if __name__ == "__main__":
    sys.exit(main())
