#!/usr/bin/env python3
"""Advisory gate over the remote-backend transport measurement.

Reads a ``BENCH_remote.json`` payload (freshly produced by
``benchmarks/bench_remote_backend.py``) and **warns** (never fails)
when the remote-over-loopback steady state exceeds its ceiling as a
multiple of the pool's.  Timing on shared CI runners is noisy, so the
perf half of this gate is advisory by design: it prints GitHub
``::warning::`` annotations and always exits 0 on slow-but-correct
runs.

*Structural* problems exit 1, because they mean the transport changed
results rather than merely costing time:

* missing/corrupt payload or a non-numeric ratio;
* ``identical_results`` false — the remote fleet diverged from the
  serial reference, a correctness failure;
* nonzero fault-path counters (requeues, dead workers, torn frames) on
  what must be a clean, fault-free benchmark run.

Usage::

    python tools/check_remote_regression.py BENCH_remote.json [--ceiling 4.0]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def load_result(path: Path) -> dict:
    """Read one ``BENCH_remote.json`` payload, validating its shape."""
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"error: cannot read {path}: {exc}")
    if not isinstance(payload.get("remote_vs_pool_ratio"), (int, float)):
        raise SystemExit(
            f"error: {path} has no numeric 'remote_vs_pool_ratio' field"
        )
    return payload


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; see the module docstring."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("result", type=Path, help="measured BENCH_remote.json")
    parser.add_argument(
        "--ceiling",
        type=float,
        default=None,
        help=(
            "tolerated remote/pool steady-state ratio before warning "
            "(default: the payload's own ratio_ceiling, falling back to 4.0)"
        ),
    )
    args = parser.parse_args(argv)
    payload = load_result(args.result)
    if payload.get("identical_results") is not True:
        print(
            "error: remote serving is not bit-identical with the serial "
            "reference — that is a correctness failure, not a perf one",
            file=sys.stderr,
        )
        return 1
    faults = payload.get("remote_faults", {})
    dirty = {
        name: faults.get(name, 0)
        for name in ("requeues", "dead_workers", "torn_frames")
        if faults.get(name, 0)
    }
    if dirty:
        print(
            f"error: fault-path counters fired on a clean benchmark run "
            f"({dirty}) — workers are dying or tearing frames without "
            f"injected faults",
            file=sys.stderr,
        )
        return 1
    ceiling = args.ceiling
    if ceiling is None:
        ceiling = float(payload.get("ratio_ceiling", 4.0))
    ratio = float(payload["remote_vs_pool_ratio"])
    wire = payload.get("remote_wire", {})
    traffic = (
        f"{wire.get('sync_bytes', 0)} sync bytes, "
        f"{wire.get('frames_sent', 0)} frames out / "
        f"{wire.get('frames_received', 0)} in"
    )
    if ratio > ceiling:
        print(
            f"::warning::remote-over-loopback steady state is {ratio:.2f}x "
            f"the pool's, above the {ceiling:.1f}x ceiling ({traffic})"
        )
    else:
        print(
            f"remote transport OK: {ratio:.2f}x the pool steady state "
            f"(ceiling {ceiling:.1f}x, bit-identical, zero faults; {traffic})"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
