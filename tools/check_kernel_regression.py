#!/usr/bin/env python3
"""Advisory perf gate over the packed-kernel speedups.

Compares a fresh ``bench_kernels`` run against the committed
``BENCH_kernels.json`` baseline and **warns** (never fails) when either
measured speedup — the cold index build or the warm similarity batches
— regressed by more than the threshold (default 20%).  Timing on
shared CI runners is noisy, so this gate is advisory by design: it
prints GitHub ``::warning::`` annotations and always exits 0, except
for *structural* problems (missing/corrupt files, a fresh run that is
no longer bit-identical), which exit 1 because they mean the benchmark
itself is broken, not slow.

Usage::

    python tools/check_kernel_regression.py BASELINE.json FRESH.json [--threshold 0.2]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: The speedup fields compared between baseline and fresh runs.
SPEEDUP_KEYS = ("build_speedup", "warm_batch_speedup")


def load_result(path: Path) -> dict:
    """Read one ``BENCH_kernels.json`` payload, validating its shape."""
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"error: cannot read {path}: {exc}")
    for key in SPEEDUP_KEYS:
        if not isinstance(payload.get(key), (int, float)):
            raise SystemExit(f"error: {path} has no numeric {key!r} field")
    return payload


def compare(baseline: dict, fresh: dict, threshold: float) -> list[str]:
    """Return one warning line per speedup that regressed past the bar."""
    warnings = []
    for key in SPEEDUP_KEYS:
        old = float(baseline[key])
        new = float(fresh[key])
        floor = old * (1.0 - threshold)
        if new < floor:
            warnings.append(
                f"::warning::kernel perf regression: {key} fell from "
                f"{old:.2f}x (baseline) to {new:.2f}x "
                f"(> {threshold:.0%} below baseline)"
            )
    return warnings


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; see the module docstring."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", type=Path, help="committed BENCH_kernels.json")
    parser.add_argument("fresh", type=Path, help="freshly measured BENCH_kernels.json")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.2,
        help="tolerated fractional speedup drop before warning (default 0.2)",
    )
    args = parser.parse_args(argv)
    baseline = load_result(args.baseline)
    fresh = load_result(args.fresh)
    if fresh.get("identical_results") is not True:
        print(
            "error: fresh benchmark run is not bit-identical across "
            "kernels — that is a correctness failure, not a perf one",
            file=sys.stderr,
        )
        return 1
    warnings = compare(baseline, fresh, args.threshold)
    for line in warnings:
        print(line)
    if not warnings:
        print(
            "kernel perf OK: "
            + ", ".join(
                f"{key}={float(fresh[key]):.2f}x "
                f"(baseline {float(baseline[key]):.2f}x)"
                for key in SPEEDUP_KEYS
            )
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
