#!/usr/bin/env python3
"""Markdown lint + link check over the docs set (README + docs/).

Fails — exit code 1, one line per violation — when:

* a relative markdown link points at a file that does not exist;
* a link anchor (``file.md#section`` or in-page ``#section``) names a
  heading that is not in the target file (GitHub-style slugs);
* a fenced code block is left unclosed (odd number of ``` fences);
* a line carries trailing whitespace or a hard tab (outside fences).

External links (``http(s)://``, ``mailto:``) are not fetched — CI must
stay offline — but a bare-looking scheme-less absolute URL is flagged.
Dependency-free by design: the container pins the toolchain, and the
property we gate on is "stale cross-references fail the build", which
needs a resolver, not a style engine.

Usage::

    python tools/check_docs.py [FILE_OR_DIR ...]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: The documents gated by default (relative to the repository root).
DEFAULT_TARGETS = ("README.md", "docs")

_LINK = re.compile(r"(?<!\!)\[([^\]]*)\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_EXTERNAL = ("http://", "https://", "mailto:")


def _slugify(heading: str) -> str:
    """GitHub-style anchor slug of one heading line."""
    text = heading.strip().lower()
    text = text.replace("`", "")
    text = re.sub(r"[^\w\- ]", "", text)
    return text.strip().replace(" ", "-")


def _heading_slugs(path: Path) -> set[str]:
    slugs: set[str] = set()
    counts: dict[str, int] = {}
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence or not line.startswith("#"):
            continue
        base = _slugify(line.lstrip("#"))
        seen = counts.get(base, 0)
        counts[base] = seen + 1
        slugs.add(base if seen == 0 else f"{base}-{seen}")
    return slugs


def check_document(path: Path, root: Path) -> list[str]:
    """Return the lint and link violations of one markdown file."""
    problems: list[str] = []
    try:
        rel: Path | str = path.relative_to(root)
    except ValueError:  # explicit target outside the repo (tests, ad hoc)
        rel = path
    lines = path.read_text(encoding="utf-8").splitlines()
    fence_count = 0
    in_fence = False
    for number, line in enumerate(lines, start=1):
        if line.lstrip().startswith("```"):
            fence_count += 1
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        if line.rstrip() != line:
            problems.append(f"{rel}:{number}: trailing whitespace")
        if "\t" in line:
            problems.append(f"{rel}:{number}: hard tab in markdown")
        for match in _LINK.finditer(line):
            target = match.group(2)
            if target.startswith(_EXTERNAL):
                continue
            if "://" in target:
                problems.append(
                    f"{rel}:{number}: unrecognised link scheme {target!r}"
                )
                continue
            file_part, _, anchor = target.partition("#")
            if file_part:
                resolved = (path.parent / file_part).resolve()
                if not resolved.exists():
                    problems.append(
                        f"{rel}:{number}: broken link target {target!r} "
                        f"({file_part} does not exist)"
                    )
                    continue
            else:
                resolved = path
            if anchor and resolved.suffix == ".md":
                if anchor not in _heading_slugs(resolved):
                    try:
                        shown: Path | str = resolved.relative_to(root)
                    except ValueError:
                        shown = resolved
                    problems.append(
                        f"{rel}:{number}: anchor #{anchor} not found in "
                        f"{shown}"
                    )
    if fence_count % 2:
        problems.append(f"{rel}: unclosed code fence (odd ``` count)")
    return problems


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    root = Path(__file__).resolve().parent.parent
    targets = (argv if argv is not None else sys.argv[1:]) or list(
        DEFAULT_TARGETS
    )
    files: list[Path] = []
    for target in targets:
        path = (root / target) if not Path(target).is_absolute() else Path(target)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.md")))
        else:
            files.append(path)
    problems: list[str] = []
    for path in files:
        problems.extend(check_document(path, root))
    for problem in problems:
        print(problem)
    if problems:
        print(
            f"\ndocs check FAILED: {len(problems)} problem(s) across "
            f"{len(files)} file(s)",
            file=sys.stderr,
        )
        return 1
    print(f"docs check OK: {len(files)} file(s), links and lint clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
