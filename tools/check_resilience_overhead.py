#!/usr/bin/env python3
"""Advisory gate over the resilience-seam overhead measurement.

Reads a ``BENCH_resilience.json`` payload (freshly produced by
``benchmarks/bench_resilience_overhead.py``) and **warns** (never
fails) when the measured deadline-seam overhead exceeds the ceiling
recorded in the payload (5% by default).  Timing on shared CI runners
is noisy, so the perf half of this gate is advisory by design: it
prints GitHub ``::warning::`` annotations and always exits 0, except
for *structural* problems (missing/corrupt file, a guarded replay that
is no longer bit-identical with the bare one), which exit 1 because
they mean the resilience seam changed results, not that it is slow.

Usage::

    python tools/check_resilience_overhead.py BENCH_resilience.json [--ceiling 5.0]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def load_result(path: Path) -> dict:
    """Read one ``BENCH_resilience.json`` payload, validating its shape."""
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"error: cannot read {path}: {exc}")
    if not isinstance(payload.get("overhead_pct"), (int, float)):
        raise SystemExit(f"error: {path} has no numeric 'overhead_pct' field")
    return payload


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; see the module docstring."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "result", type=Path, help="measured BENCH_resilience.json"
    )
    parser.add_argument(
        "--ceiling",
        type=float,
        default=None,
        help=(
            "tolerated overhead percentage before warning (default: the "
            "payload's own overhead_ceiling_pct, falling back to 5.0)"
        ),
    )
    args = parser.parse_args(argv)
    payload = load_result(args.result)
    if payload.get("identical_results") is not True:
        print(
            "error: guarded serving is not bit-identical with bare "
            "serving — that is a correctness failure, not a perf one",
            file=sys.stderr,
        )
        return 1
    ceiling = args.ceiling
    if ceiling is None:
        ceiling = float(payload.get("overhead_ceiling_pct", 5.0))
    overhead = float(payload["overhead_pct"])
    if overhead > ceiling:
        print(
            f"::warning::resilience-seam overhead {overhead:.2f}% exceeds "
            f"the {ceiling:.1f}% ceiling (bare "
            f"{payload.get('bare_ms', 0.0):.1f} ms vs guarded "
            f"{payload.get('guarded_ms', 0.0):.1f} ms)"
        )
    else:
        print(
            f"resilience overhead OK: {overhead:+.2f}% "
            f"(ceiling {ceiling:.1f}%, bit-identical)"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
