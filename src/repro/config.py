"""Configuration objects shared across the library.

The paper leaves several knobs open (the similarity threshold ``δ``, the
per-user top-``k`` used by the fairness definition, the group top-``z``,
the rating scale, aggregation semantics).  :class:`RecommenderConfig`
gathers them in one immutable dataclass so that the single-user
recommender, the group recommender, the fairness-aware selection and the
MapReduce runner all agree on the same values.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import Any, Mapping

from .exceptions import ConfigurationError

#: The rating scale used throughout the paper (Section III.A).
DEFAULT_RATING_SCALE: tuple[float, float] = (1.0, 5.0)

#: Aggregation strategy names accepted by :class:`RecommenderConfig`.
KNOWN_AGGREGATIONS: tuple[str, ...] = (
    "average",
    "minimum",
    "maximum",
    "median",
    "multiplicative",
    "borda",
)

#: Similarity measure names accepted by :class:`RecommenderConfig`.
KNOWN_SIMILARITIES: tuple[str, ...] = (
    "ratings",
    "profile",
    "semantic",
    "hybrid",
)

#: Execution backend names accepted by :class:`RecommenderConfig`
#: (mirrors :data:`repro.exec.BACKEND_NAMES` without importing it —
#: config must stay import-light).
KNOWN_EXEC_BACKENDS: tuple[str, ...] = (
    "serial",
    "thread",
    "process",
    "pool",
    "remote",
)

#: Pool state-sync strategies accepted by :class:`RecommenderConfig`
#: (mirrors :data:`repro.exec.POOL_SYNC_MODES`).
KNOWN_POOL_SYNCS: tuple[str, ...] = ("full", "delta")

#: Similarity/prediction kernel names accepted by
#: :class:`RecommenderConfig` (mirrors :data:`repro.kernels.KERNEL_NAMES`
#: without importing it — config must stay import-light).
KNOWN_KERNELS: tuple[str, ...] = ("packed", "dict")

#: Response-validation modes accepted by :class:`RecommenderConfig`
#: (mirrors :data:`repro.validation.VALIDATION_MODES` without importing
#: it — config must stay import-light).
KNOWN_VALIDATION_MODES: tuple[str, ...] = ("strict", "log", "off")

#: Total-fleet-loss policies of the remote backend (see
#: :class:`~repro.exec.remote.RemoteBackend`).
KNOWN_DEGRADED_MODES: tuple[str, ...] = ("off", "serial")


def resolve_positive(value: int | None, default: int, name: str) -> int:
    """Resolve an optional per-call override of a positive config value.

    ``None`` means "use the default".  An explicit non-positive value is
    a caller error and raises :class:`ConfigurationError` — silently
    mapping ``0`` to the default (the old ``value or default`` idiom)
    hid bugs where a computed size collapsed to zero.
    """
    if value is None:
        return default
    if value <= 0:
        raise ConfigurationError(f"{name} must be positive, got {value}")
    return value


@dataclass(frozen=True)
class RecommenderConfig:
    """Tunable parameters of the fairness-aware group recommender.

    Parameters
    ----------
    peer_threshold:
        The similarity threshold ``δ`` from Definition 1.  A user ``u'``
        is a peer of ``u`` when ``simU(u, u') >= peer_threshold``.
    max_peers:
        Optional cap on the number of peers retained per user (the paper
        keeps every user above the threshold; a cap makes large synthetic
        datasets tractable and is a common practical refinement).
    top_k:
        The per-user ``k`` used both for single-user recommendation lists
        and by the fairness definition ("D is fair to u if D contains at
        least one of u's top-k items", Definition 3).
    top_z:
        The number ``z`` of recommendations returned for the group.
    rating_scale:
        Inclusive ``(low, high)`` bounds of a valid rating.
    aggregation:
        Group aggregation semantics: ``"minimum"`` (least misery / veto)
        or ``"average"`` (majority), plus extension strategies.
    similarity:
        Which similarity measure feeds peer selection: ``"ratings"``
        (Pearson, Eq. 2), ``"profile"`` (TF-IDF cosine, Eq. 3),
        ``"semantic"`` (SNOMED path + harmonic mean, Eq. 4) or
        ``"hybrid"``.
    hybrid_weights:
        Weights of (ratings, profile, semantic) used by the hybrid
        similarity.  They are normalised when used.
    candidate_pool_size:
        ``m`` — the number of candidate items handed to the fairness-aware
        selection stage (Section VI calls this ``m``).
    random_seed:
        Seed used by any stochastic component (dataset generation, tie
        shuffling) so every run is reproducible.
    similarity_cache_size:
        Capacity (in pair scores) of the serving layer's LRU cache for
        pairwise user similarities.  ``0`` disables the cache.
    relevance_cache_size:
        Capacity (in per-user relevance rows) of the serving layer's
        LRU cache.  ``0`` disables the cache.
    group_cache_size:
        Capacity (in finished group recommendations) of the serving
        layer's result cache.  ``0`` disables the cache.
    serve_workers:
        Default thread-pool size used by
        :meth:`repro.serving.RecommendationService.recommend_many`;
        ``1`` serves batches sequentially.
    exec_backend:
        Default execution backend (``"serial"``, ``"thread"``,
        ``"process"``, ``"pool"`` or ``"remote"``) used by the compute
        layers (MapReduce engine, index builds, batch serving, eval
        grids).  All backends produce bit-identical results; this is
        purely a performance knob.
    exec_workers:
        Worker count for the execution backend; ``0`` selects the
        number of available CPUs.
    pool_sync:
        How the long-lived ``"pool"`` backend refreshes stale worker
        state after an update: ``"delta"`` broadcasts a per-epoch
        packet of rating / profile mutations to the resident workers
        (one control message per worker), ``"full"`` restarts the pool
        and re-ships the whole state.  Ignored by the other backends.
    pool_min_workers:
        Autoscaling floor of the ``"pool"`` backend: idle workers are
        shrunk down to this width.  ``0`` (default) pins the pool at
        the resolved ``exec_workers`` width (no autoscaling floor of
        its own).
    pool_max_workers:
        Autoscaling ceiling of the ``"pool"`` backend: the pool grows
        toward this width when a batch's queue depth exceeds the live
        worker count.  ``0`` (default) pins the ceiling at the
        resolved ``exec_workers`` width — or at ``pool_min_workers``
        when that floor is higher (a lone floor implies a covering
        ceiling, never a contradiction).
    pool_idle_ttl:
        Seconds without a dispatch after which an autoscaling pool
        shrinks back to ``pool_min_workers``.  Only meaningful when
        the bounds leave room to scale.
    pool_target_p99_ms:
        Latency target for the ``"pool"`` backend's p99-driven
        autoscaling: while the windowed p99 of batch latency breaches
        this many milliseconds the pool grows toward
        ``pool_max_workers``, shrinking again once p99 recovers below
        half the target.  ``0.0`` (default) disables the policy
        (queue-depth growth and idle-TTL shrinking still apply).
    remote_workers:
        Fleet width of the ``"remote"`` backend: how many loopback
        worker processes it spawns (externally started ``repro worker``
        processes join on top).  ``0`` (default) uses the resolved
        ``exec_workers`` width.  Ignored by the other backends; purely
        operational (excluded from :meth:`fingerprint`).
    remote_heartbeat_interval:
        Seconds between a remote worker's heartbeat beacons.  Must be
        smaller than ``remote_heartbeat_timeout``.  Purely operational
        (excluded from :meth:`fingerprint`).
    remote_heartbeat_timeout:
        Seconds of mid-batch silence after which the ``"remote"``
        parent declares a worker dead and requeues its in-flight tasks
        onto the surviving workers.  Purely operational (excluded from
        :meth:`fingerprint`).
    remote_connect_timeout:
        Seconds the ``"remote"`` parent waits for workers to connect
        before a dispatch fails with
        :class:`~repro.exec.remote.FleetLossError`.  Purely operational
        (excluded from :meth:`fingerprint`).
    degraded_mode:
        Total-fleet-loss policy of the ``"remote"`` backend: ``"off"``
        (default) raises :class:`~repro.exec.remote.FleetLossError`,
        ``"serial"`` falls back to bit-identical in-process serial
        execution (counted as ``remote_degraded_dispatches``; served
        responses carry ``"degraded": true``).  Results never differ —
        purely operational (excluded from :meth:`fingerprint`).
    index_shards:
        Number of shards the serving layer's neighbour index is hash-
        partitioned into.  ``1`` keeps the single flat index; more
        shards let builds and refreshes proceed independently (and in
        parallel under a non-serial backend).
    kernel:
        Which similarity/prediction kernel the compute layers run on:
        ``"packed"`` (default) uses the integer-interned CSR kernels of
        :mod:`repro.kernels`, ``"dict"`` the dict-of-dicts oracle path.
        Scores are bit-identical between the two — this is purely a
        performance knob (and therefore excluded from
        :meth:`fingerprint`).
    packed_scan:
        With ``kernel="packed"``: run the group candidate scan
        (``items_unrated_by_all``) over the packed inverted rows instead
        of the dict matrix.  Bit-identical either way; purely a
        performance knob (excluded from :meth:`fingerprint`).
    packed_topk:
        With ``kernel="packed"``: rank uncached single-user rows through
        the bounded-heap top-k kernel instead of materialising the full
        score dict.  Bit-identical either way; purely a performance knob
        (excluded from :meth:`fingerprint`).
    packed_spill:
        Optional directory the packed CSR arrays are spilled to
        (:meth:`repro.kernels.PackedRatings.save`).  When set, the
        serving layer keeps the spill current and pool workers bootstrap
        by ``mmap``-ing the arrays read-only instead of receiving a full
        state ship.  ``""`` (default) disables spilling.  Purely
        operational (excluded from :meth:`fingerprint`).
    validation:
        Response-shape enforcement at the serving boundary
        (:mod:`repro.validation`): ``"strict"`` checks every served
        answer against the declared shapes and raises
        :class:`~repro.exceptions.ValidationError` on a violation,
        ``"log"`` only counts violations in the metrics registry
        (``validation_failures{shape=...}``), ``"off"`` (default) skips
        the checks.  Validation never changes a valid response, so this
        is operational (excluded from :meth:`fingerprint`).
    """

    peer_threshold: float = 0.2
    max_peers: int | None = None
    top_k: int = 10
    top_z: int = 10
    rating_scale: tuple[float, float] = DEFAULT_RATING_SCALE
    aggregation: str = "average"
    similarity: str = "ratings"
    hybrid_weights: tuple[float, float, float] = (1.0, 1.0, 1.0)
    candidate_pool_size: int = 30
    random_seed: int = 7
    similarity_cache_size: int = 500_000
    relevance_cache_size: int = 10_000
    group_cache_size: int = 2048
    serve_workers: int = 1
    exec_backend: str = "serial"
    exec_workers: int = 0
    pool_sync: str = "delta"
    pool_min_workers: int = 0
    pool_max_workers: int = 0
    pool_idle_ttl: float = 30.0
    pool_target_p99_ms: float = 0.0
    remote_workers: int = 0
    remote_heartbeat_interval: float = 2.0
    remote_heartbeat_timeout: float = 10.0
    remote_connect_timeout: float = 30.0
    degraded_mode: str = "off"
    index_shards: int = 1
    kernel: str = "packed"
    packed_scan: bool = True
    packed_topk: bool = True
    packed_spill: str = ""
    validation: str = "off"

    def __post_init__(self) -> None:
        low, high = self.rating_scale
        if low >= high:
            raise ConfigurationError(
                f"rating_scale low bound {low} must be < high bound {high}"
            )
        if not -1.0 <= self.peer_threshold <= 1.0:
            raise ConfigurationError(
                f"peer_threshold must lie in [-1, 1], got {self.peer_threshold}"
            )
        if self.max_peers is not None and self.max_peers <= 0:
            raise ConfigurationError("max_peers must be positive or None")
        if self.top_k <= 0:
            raise ConfigurationError("top_k must be positive")
        if self.top_z <= 0:
            raise ConfigurationError("top_z must be positive")
        if self.candidate_pool_size <= 0:
            raise ConfigurationError("candidate_pool_size must be positive")
        if self.aggregation not in KNOWN_AGGREGATIONS:
            raise ConfigurationError(
                f"unknown aggregation {self.aggregation!r}; "
                f"expected one of {KNOWN_AGGREGATIONS}"
            )
        if self.similarity not in KNOWN_SIMILARITIES:
            raise ConfigurationError(
                f"unknown similarity {self.similarity!r}; "
                f"expected one of {KNOWN_SIMILARITIES}"
            )
        if len(self.hybrid_weights) != 3:
            raise ConfigurationError("hybrid_weights must have three entries")
        if any(w < 0 for w in self.hybrid_weights):
            raise ConfigurationError("hybrid_weights must be non-negative")
        if sum(self.hybrid_weights) == 0:
            raise ConfigurationError("hybrid_weights must not all be zero")
        if self.similarity_cache_size < 0:
            raise ConfigurationError("similarity_cache_size must be >= 0")
        if self.relevance_cache_size < 0:
            raise ConfigurationError("relevance_cache_size must be >= 0")
        if self.group_cache_size < 0:
            raise ConfigurationError("group_cache_size must be >= 0")
        if self.serve_workers <= 0:
            raise ConfigurationError("serve_workers must be positive")
        if self.exec_backend not in KNOWN_EXEC_BACKENDS:
            raise ConfigurationError(
                f"unknown exec_backend {self.exec_backend!r}; "
                f"expected one of {KNOWN_EXEC_BACKENDS}"
            )
        if self.exec_workers < 0:
            raise ConfigurationError("exec_workers must be >= 0 (0 = auto)")
        if self.pool_sync not in KNOWN_POOL_SYNCS:
            raise ConfigurationError(
                f"unknown pool_sync {self.pool_sync!r}; "
                f"expected one of {KNOWN_POOL_SYNCS}"
            )
        if self.pool_min_workers < 0:
            raise ConfigurationError(
                "pool_min_workers must be >= 0 (0 = exec_workers width)"
            )
        if self.pool_max_workers < 0:
            raise ConfigurationError(
                "pool_max_workers must be >= 0 (0 = exec_workers width)"
            )
        if (
            self.pool_min_workers
            and self.pool_max_workers
            and self.pool_min_workers > self.pool_max_workers
        ):
            raise ConfigurationError(
                f"pool_min_workers ({self.pool_min_workers}) must not "
                f"exceed pool_max_workers ({self.pool_max_workers})"
            )
        if self.pool_idle_ttl <= 0:
            raise ConfigurationError("pool_idle_ttl must be positive")
        if self.pool_target_p99_ms < 0:
            raise ConfigurationError(
                "pool_target_p99_ms must be >= 0 (0 = disabled)"
            )
        if self.remote_workers < 0:
            raise ConfigurationError(
                "remote_workers must be >= 0 (0 = exec_workers width)"
            )
        if self.remote_heartbeat_interval <= 0:
            raise ConfigurationError(
                "remote_heartbeat_interval must be positive"
            )
        if self.remote_heartbeat_timeout <= self.remote_heartbeat_interval:
            raise ConfigurationError(
                f"remote_heartbeat_timeout "
                f"({self.remote_heartbeat_timeout}) must exceed "
                f"remote_heartbeat_interval "
                f"({self.remote_heartbeat_interval})"
            )
        if self.remote_connect_timeout <= 0:
            raise ConfigurationError("remote_connect_timeout must be positive")
        if self.degraded_mode not in KNOWN_DEGRADED_MODES:
            raise ConfigurationError(
                f"unknown degraded_mode {self.degraded_mode!r}; "
                f"expected one of {KNOWN_DEGRADED_MODES}"
            )
        if self.index_shards <= 0:
            raise ConfigurationError("index_shards must be positive")
        if self.kernel not in KNOWN_KERNELS:
            raise ConfigurationError(
                f"unknown kernel {self.kernel!r}; "
                f"expected one of {KNOWN_KERNELS}"
            )
        if not isinstance(self.packed_spill, str):
            raise ConfigurationError(
                "packed_spill must be a directory path string ('' = off)"
            )
        if self.validation not in KNOWN_VALIDATION_MODES:
            raise ConfigurationError(
                f"unknown validation mode {self.validation!r}; "
                f"expected one of {KNOWN_VALIDATION_MODES}"
            )

    # -- convenience -----------------------------------------------------

    @property
    def rating_low(self) -> float:
        """Lower bound of the rating scale."""
        return self.rating_scale[0]

    @property
    def rating_high(self) -> float:
        """Upper bound of the rating scale."""
        return self.rating_scale[1]

    def with_overrides(self, **changes: Any) -> "RecommenderConfig":
        """Return a copy with ``changes`` applied (validation re-runs)."""
        return replace(self, **changes)

    def to_dict(self) -> dict[str, Any]:
        """Serialise the configuration to plain JSON-friendly types."""
        return {
            "peer_threshold": self.peer_threshold,
            "max_peers": self.max_peers,
            "top_k": self.top_k,
            "top_z": self.top_z,
            "rating_scale": list(self.rating_scale),
            "aggregation": self.aggregation,
            "similarity": self.similarity,
            "hybrid_weights": list(self.hybrid_weights),
            "candidate_pool_size": self.candidate_pool_size,
            "random_seed": self.random_seed,
            "similarity_cache_size": self.similarity_cache_size,
            "relevance_cache_size": self.relevance_cache_size,
            "group_cache_size": self.group_cache_size,
            "serve_workers": self.serve_workers,
            "exec_backend": self.exec_backend,
            "exec_workers": self.exec_workers,
            "pool_sync": self.pool_sync,
            "pool_min_workers": self.pool_min_workers,
            "pool_max_workers": self.pool_max_workers,
            "pool_idle_ttl": self.pool_idle_ttl,
            "pool_target_p99_ms": self.pool_target_p99_ms,
            "remote_workers": self.remote_workers,
            "remote_heartbeat_interval": self.remote_heartbeat_interval,
            "remote_heartbeat_timeout": self.remote_heartbeat_timeout,
            "remote_connect_timeout": self.remote_connect_timeout,
            "degraded_mode": self.degraded_mode,
            "index_shards": self.index_shards,
            "kernel": self.kernel,
            "packed_scan": self.packed_scan,
            "packed_topk": self.packed_topk,
            "packed_spill": self.packed_spill,
            "validation": self.validation,
        }

    def fingerprint(self) -> str:
        """Stable hash of the *recommendation semantics* of this config.

        Two configs share a fingerprint exactly when they produce the
        same peer rows and recommendations: operational knobs (cache
        sizes, worker counts, backend choice, sharding) are excluded —
        the execution layer never changes results, only wall-clock.
        Used to reject stale index snapshots.
        """
        semantics = {
            "peer_threshold": self.peer_threshold,
            "max_peers": self.max_peers,
            "top_k": self.top_k,
            "top_z": self.top_z,
            "rating_scale": list(self.rating_scale),
            "aggregation": self.aggregation,
            "similarity": self.similarity,
            "hybrid_weights": list(self.hybrid_weights),
            "candidate_pool_size": self.candidate_pool_size,
            "random_seed": self.random_seed,
        }
        canonical = json.dumps(semantics, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RecommenderConfig":
        """Rebuild a configuration from :meth:`to_dict` output."""
        data = dict(payload)
        if "rating_scale" in data:
            data["rating_scale"] = tuple(data["rating_scale"])
        if "hybrid_weights" in data:
            data["hybrid_weights"] = tuple(data["hybrid_weights"])
        return cls(**data)


#: Library-wide default configuration.
DEFAULT_CONFIG = RecommenderConfig()
