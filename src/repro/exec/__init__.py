"""repro.exec — the execution substrate shared by every compute layer.

One abstraction (:class:`~repro.exec.backends.ExecutionBackend`) with
five implementations — serial, thread, process, pool, remote — used by
the MapReduce engine, the similarity batch builds, the neighbour index,
the serving batch API and the evaluation grids.  All backends produce
bit-identical results; they differ only in wall-clock and in how state
reaches the workers (:mod:`repro.exec.pool` documents the long-lived
pool's broadcast epoch-sync protocol and autoscaling policy;
:mod:`repro.exec.remote` takes the same protocol over TCP with
heartbeats and dead-peer requeue, framed by :mod:`repro.exec.wire`;
``docs/ARCHITECTURE.md`` has the cross-layer picture).
"""

from .backends import (
    BACKEND_NAMES,
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    backend_scope,
    chunk_evenly,
    default_workers,
    ensure_picklable,
    get_backend,
    resolve_backend,
)
from .pool import (
    DEFAULT_IDLE_TTL,
    DEFAULT_MAX_DELTA_LOG,
    POOL_SYNC_MODES,
    PoolBackend,
)
from .remote import (
    DEFAULT_CONNECT_TIMEOUT,
    DEFAULT_HEARTBEAT_INTERVAL,
    DEFAULT_HEARTBEAT_TIMEOUT,
    DEGRADED_MODES,
    FleetLossError,
    HashRing,
    RemoteBackend,
    run_worker,
)
from .wire import PeerDisconnected, TruncatedFrameError, WireError

__all__ = [
    "BACKEND_NAMES",
    "DEFAULT_CONNECT_TIMEOUT",
    "DEFAULT_HEARTBEAT_INTERVAL",
    "DEFAULT_HEARTBEAT_TIMEOUT",
    "DEFAULT_IDLE_TTL",
    "DEFAULT_MAX_DELTA_LOG",
    "DEGRADED_MODES",
    "ExecutionBackend",
    "FleetLossError",
    "HashRing",
    "PeerDisconnected",
    "POOL_SYNC_MODES",
    "PoolBackend",
    "ProcessBackend",
    "RemoteBackend",
    "SerialBackend",
    "ThreadBackend",
    "TruncatedFrameError",
    "WireError",
    "backend_scope",
    "chunk_evenly",
    "default_workers",
    "ensure_picklable",
    "get_backend",
    "resolve_backend",
    "run_worker",
]
