"""repro.exec — the execution substrate shared by every compute layer.

One abstraction (:class:`~repro.exec.backends.ExecutionBackend`) with
three implementations — serial, thread, process — used by the MapReduce
engine, the similarity batch builds, the neighbour index, the serving
batch API and the evaluation grids.  All backends produce bit-identical
results; they differ only in wall-clock.
"""

from .backends import (
    BACKEND_NAMES,
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    backend_scope,
    chunk_evenly,
    default_workers,
    get_backend,
    resolve_backend,
)

__all__ = [
    "BACKEND_NAMES",
    "ExecutionBackend",
    "ProcessBackend",
    "SerialBackend",
    "ThreadBackend",
    "backend_scope",
    "chunk_evenly",
    "default_workers",
    "get_backend",
    "resolve_backend",
]
