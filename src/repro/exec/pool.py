"""A long-lived, autoscaling worker pool with broadcast delta sync.

:class:`~repro.exec.backends.ProcessBackend` buys staleness-freedom by
building a fresh pool per ``map_items`` call — every batch pays fork and
state-shipping overhead even when nothing changed between batches.
:class:`PoolBackend` keeps the workers alive instead and makes the
staleness hazard explicit through a **message-shaped sync protocol**
(deliberately shaped like a distributed system, so the same protocol can
later span machines, not just processes):

* each worker holds a **resident copy** of the per-call state (built by
  the ``initializer`` when the worker boots — under the fork start
  method the state is inherited, never pickled);
* the owner of the state (e.g. a
  :class:`~repro.serving.RecommendationService`) reports every mutation
  through :meth:`PoolBackend.notify_state_change`, which bumps an
  **epoch counter** and logs the mutation delta;
* each worker owns a FIFO **inbox**; the parent talks to workers only
  through messages (``sync`` / ``tasks`` / ``stop``).  When the parent
  is ahead of the pool it **broadcasts** one per-epoch *delta packet* —
  one control message per worker, each carrying the pending mutation
  log once — instead of attaching the log to every task.  Sync cost per
  batch is therefore O(workers), never O(tasks);
* because every inbox is FIFO, a task enqueued after the broadcast can
  only be seen by a worker that already applied the packet — the parent
  can advance its view of the pool epoch and clear the log at broadcast
  time, with no acknowledgements, no barrier, and no delta suffix
  riding along with later dispatches;
* when no delta is available (``sync="full"``, an undescribed mutation,
  or a log grown past ``max_delta_log``) the pool restarts, re-shipping
  the full state through the initializer;
* the pool **autoscales**: it grows toward ``max_workers`` under queue
  depth (each new worker bootstraps from the parent's *current* epoch —
  a full ship via fork — and then joins delta sync like any other
  worker) and shrinks idle workers back to ``min_workers`` once
  ``idle_ttl`` elapses with no dispatch.

In steady state (no mutations between batches) tasks ship nothing but
their own arguments — this is the whole point.  The epoch protocol
keeps the backend family's core contract intact: results are
bit-identical to the serial backend, because a worker never runs a task
against state older than the parent's at dispatch time.  Skipping
:meth:`notify_state_change` after a mutation breaks that guarantee —
the regression tests pin the resulting staleness as the documented
counterexample.

Delta entries are opaque to the backend.  The state owner registers a
module-level **applier** via :meth:`bind_delta_applier`; workers call it
once per unseen delta, in epoch order.  Appliers must be deterministic:
replaying the same deltas over the same resident state must reproduce
the parent's state exactly, or bit-identity silently breaks.

Example — the protocol in miniature (see ``docs/ARCHITECTURE.md`` for
the full sequence diagram)::

    backend = PoolBackend(workers=2, sync="delta")
    backend.bind_delta_applier(apply_mutation, build_state)
    backend.map_items(fn, items, initializer=build_state, initargs=args)
    backend.notify_state_change(delta=mutation)   # epoch 0 -> 1
    backend.map_items(fn, items, initializer=build_state, initargs=args)
    # one sync message per worker, then bare tasks
"""

from __future__ import annotations

import multiprocessing
import pickle
import queue as queue_module
import threading
import time
import traceback
from typing import Any, Callable, Iterable, TypeVar

from ..exceptions import ConfigurationError, ExecutionError
from ..obs import MetricsRegistry, get_registry
from ..resilience import Deadline, RetryPolicy
from .backends import ExecutionBackend, chunk_evenly, ensure_picklable

T = TypeVar("T")
R = TypeVar("R")

#: Sliding-window length (seconds) of the batch-latency histogram the
#: p99 autoscaling policy reads.  A window — not the cumulative
#: histogram — is what lets the pool scale back *down*: observations
#: from a past latency spike age out instead of pinning p99 forever.
P99_WINDOW_SECONDS = 30.0

#: Sync strategies accepted by :class:`PoolBackend` (and the config's
#: ``pool_sync`` knob).
POOL_SYNC_MODES: tuple[str, ...] = ("full", "delta")

#: Delta-log length beyond which replaying mutations costs more than a
#: pool restart; the backend re-ships the full state instead.
DEFAULT_MAX_DELTA_LOG = 256

#: How long a worker may stay idle (no dispatch reaching the pool)
#: before an autoscaling pool shrinks it, in seconds.  ``None`` on the
#: backend disables idle shrinking.
DEFAULT_IDLE_TTL = 30.0

#: Seconds the parent waits for a result before re-checking worker
#: liveness (a dead worker turns the wait into an ExecutionError).
_RESULT_POLL_SECONDS = 0.1

#: Seconds a worker gets to exit after receiving a stop message before
#: the parent terminates it.
_JOIN_TIMEOUT_SECONDS = 5.0

#: Inbox chunks dispatched per worker per batch: enough slack to absorb
#: uneven task costs without making dispatch O(tasks) messages.
_CHUNKS_PER_WORKER = 4

#: Every inbox message crosses the wire pre-pickled (the parent
#: serialises in the dispatching thread, so an unpicklable task item
#: raises a catchable error instead of being dropped by the queue's
#: feeder thread and hanging the collect loop).  The stop message never
#: varies, so it is serialised once here.
_STOP_BLOB: bytes = pickle.dumps(("stop",))


#: The escalation ladder a stopping worker process is driven through:
#: one bounded join per attempt (after the STOP message, after
#: ``terminate()``, after ``kill()``).  The policy contributes the
#: attempt count and the flat backoff shape; each join's timeout is
#: ``delay(attempt) * _JOIN_TIMEOUT_SECONDS``, so the module constant
#: (which tests shrink) still scales the whole ladder.
_STOP_ESCALATION = RetryPolicy(
    max_attempts=3, base_delay=1.0, multiplier=1.0, max_delay=1.0
)


def join_with_escalation(
    process: Any, policy: RetryPolicy = _STOP_ESCALATION
) -> bool:
    """Join ``process``, escalating terminate → kill between bounded joins.

    Returns ``True`` when escalation was needed — the process ignored
    its orderly stop and had to be signalled.  Shared by the pool's
    worker shutdown and the remote backend's loopback-process reaping,
    so both count forced stops through the same policy.
    """
    escalation = (
        process.terminate,
        getattr(process, "kill", process.terminate),
    )
    forced = False
    for attempt in policy.attempts():
        process.join(timeout=policy.delay(attempt) * _JOIN_TIMEOUT_SECONDS)
        if not process.is_alive() or attempt > len(escalation):
            break
        forced = True
        escalation[attempt - 1]()
    return forced


def _same_elements(a: tuple[Any, ...], b: tuple[Any, ...]) -> bool:
    """Element-wise identity of two initarg tuples.

    Identity (not equality): comparing a large dataset by value per
    dispatch would cost more than the dispatch, and the resident-state
    contract is about *which objects* the workers were built from.
    Call sites that want pool reuse must pass a stable initargs tuple
    (the serving layer caches its per-service tuple for exactly this
    reason).
    """
    return len(a) == len(b) and all(x is y for x, y in zip(a, b))


# -- worker-side resident state ---------------------------------------------
#
# One copy per worker process.  ``_EPOCH`` is the age of the resident
# state; sync packets arriving through the worker's inbox advance it.

_EPOCH: int = -1
_APPLIER: Callable[[Any], None] | None = None


def _encode_result(index: int, value: Any, delta: Any = None) -> bytes:
    """Pickle one successful task result in the worker's main thread.

    Pickling here (rather than letting the queue's feeder thread do it)
    turns an unpicklable result into a catchable, reportable error
    instead of a silently dropped message and a hung parent.  ``delta``
    is the optional piggybacked metrics payload,
    ``(worker_id, drained_delta)`` — attached to the last result of
    each task chunk so worker-side telemetry reaches the parent with
    zero extra messages.
    """
    return pickle.dumps(("ok", index, value, delta))


def _encode_error(index: int, exc: BaseException, delta: Any = None) -> bytes:
    """Pickle one failed task so the parent can re-raise the original."""
    try:
        exc_bytes: bytes | None = pickle.dumps(exc)
    except Exception:
        exc_bytes = None
    return pickle.dumps(
        ("err", index, exc_bytes, repr(exc), traceback.format_exc(), delta)
    )


def _drain_worker_delta(worker_id: int) -> Any:
    """This worker's metrics increments since the last drain (or None).

    The worker's registry is the fork-copied process-default registry;
    an initial drain at boot baselines away everything inherited from
    the parent, so only worker-side increments ever travel.
    """
    delta = get_registry().drain_delta()
    if delta is None:
        return None
    return (worker_id, delta)


def _apply_sync_packet(target_epoch: int, entries: tuple) -> None:
    """Replay the unseen suffix of one broadcast delta packet.

    Timed into the worker's registry (``worker_sync_ms`` /
    ``worker_syncs`` / ``worker_deltas_applied``) — the parent surfaces
    these per worker once the next result message carries them home.
    """
    global _EPOCH
    started = time.perf_counter()
    applied = 0
    for delta_epoch, delta in entries:
        if delta_epoch > _EPOCH:
            if _APPLIER is None:
                raise ExecutionError(
                    "pool worker received a sync packet but no delta "
                    "applier is bound; the parent should have restarted "
                    "the pool instead of broadcasting"
                )
            _APPLIER(delta)
            applied += 1
    _EPOCH = max(_EPOCH, target_epoch)
    registry = get_registry()
    registry.observe(
        "worker_sync_ms", (time.perf_counter() - started) * 1000.0
    )
    registry.inc("worker_syncs")
    if applied:
        registry.inc("worker_deltas_applied", applied)


def _worker_loop(
    worker_id: int,
    initializer: Callable[..., None] | None,
    initargs: tuple[Any, ...],
    boot_epoch: int,
    applier: Callable[[Any], None] | None,
    inbox: Any,
    results: Any,
) -> None:
    """Message loop of one resident worker process.

    Builds the resident state (a full ship: under fork the initargs are
    inherited from the parent's *current* memory, so a worker spawned
    mid-stream boots at the parent's current epoch), then serves its
    inbox in FIFO order.  The FIFO is the protocol's correctness
    backbone: a ``sync`` enqueued before a ``task`` is always applied
    before it.

    Telemetry recorded in the worker (kernel timings, repacks, sync
    replay costs) accumulates in the fork-copied default registry; the
    last result of each task chunk carries the drained increments back
    to the parent (see :func:`_drain_worker_delta`).
    """
    global _EPOCH, _APPLIER
    if initializer is not None:
        initializer(*initargs)
    _EPOCH = boot_epoch
    _APPLIER = applier
    # Baseline the fork-copied registry: anything recorded by the
    # parent (or the initializer replaying parent history) is already
    # counted parent-side and must not ship back as worker activity.
    get_registry().drain_delta()
    while True:
        message = pickle.loads(inbox.get())
        kind = message[0]
        if kind == "stop":
            break
        if kind == "sync":
            _apply_sync_packet(message[1], message[2])
            continue
        # ("tasks", fn, ((index, item), ...), epoch)
        _, fn, pairs, epoch = message
        if epoch > _EPOCH:
            # A task may never outrun its sync packet (FIFO): reaching
            # here means the parent cleared the log without telling
            # this worker — fail loudly rather than serve stale state.
            violation = ExecutionError(
                f"pool sync protocol violation: task epoch {epoch} is "
                f"ahead of resident epoch {_EPOCH} with no sync packet "
                f"in the inbox"
            )
            for position, (index, _item) in enumerate(pairs):
                delta = (
                    _drain_worker_delta(worker_id)
                    if position == len(pairs) - 1
                    else None
                )
                results.put(_encode_error(index, violation, delta))
            continue
        for position, (index, item) in enumerate(pairs):
            last = position == len(pairs) - 1
            try:
                value = fn(item)
                delta = _drain_worker_delta(worker_id) if last else None
                payload = _encode_result(index, value, delta)
            except KeyboardInterrupt:  # pragma: no cover - interactive
                raise
            except BaseException as exc:
                delta = _drain_worker_delta(worker_id) if last else None
                payload = _encode_error(index, exc, delta)
            results.put(payload)


class _Worker:
    """Parent-side handle of one resident worker: process + inbox.

    Lifecycle is fully synchronous: a worker is either in the pool's
    live list or already stopped and joined — there is no in-between
    state to reap later.
    """

    __slots__ = ("worker_id", "process", "inbox")

    def __init__(self, worker_id: int, process: Any, inbox: Any) -> None:
        self.worker_id = worker_id
        self.process = process
        self.inbox = inbox

    def stop(self) -> bool:
        """Send the targeted stop message, join, release the inbox.

        Every join is time-bounded: a worker that ignores its stop
        message is driven through :func:`join_with_escalation`'s
        ``terminate()`` (SIGTERM) → ``kill()`` (SIGKILL) ladder rather
        than stalling pool shutdown behind an unbounded join.  Returns
        ``True`` when escalation was needed so the pool can count
        forced stops (``pool_forced_stops``).
        """
        if self.process.is_alive():
            try:
                self.inbox.put(_STOP_BLOB)
            except (ValueError, OSError):  # pragma: no cover - closed
                pass
        forced = join_with_escalation(self.process)
        self.inbox.close()
        self.inbox.cancel_join_thread()
        return forced


class PoolBackend(ExecutionBackend):
    """A persistent, autoscaling process pool with broadcast state sync.

    Parameters
    ----------
    workers:
        Default pool width, as for every backend.  It seeds both
        autoscaling bounds, so a plain ``PoolBackend(workers=4)`` is a
        fixed-size pool of 4.
    sync:
        ``"delta"`` (default) broadcasts logged mutations to stale
        workers (one control message per worker); ``"full"`` restarts
        the pool (re-shipping the state through the initializer) after
        any mutation.  Both are exactly as fresh as
        :class:`~repro.exec.backends.ProcessBackend`; they differ only
        in how much crosses the process boundary.
    max_delta_log:
        Pending-delta count beyond which a delta sync falls back to a
        full restart (replaying a long history into every worker costs
        more than one re-ship).
    min_workers / max_workers:
        Autoscaling bounds.  Both default to ``workers`` (fixed size);
        a lone ``min_workers`` above ``workers`` raises the default
        ceiling with it (``max(workers, min_workers)``).
        With ``min_workers < max_workers`` the pool grows toward
        ``max_workers`` when a dispatch's queue depth exceeds the live
        width, and shrinks back to ``min_workers`` after ``idle_ttl``
        seconds without a dispatch.  A newly grown worker bootstraps
        from the parent's current epoch (full ship via fork) and then
        participates in delta sync like any resident worker.
    idle_ttl:
        Idle seconds before excess workers are shrunk (``None`` — the
        default — never shrinks).  Shrinking is applied lazily: at the
        next dispatch, :meth:`autoscale` call, or :meth:`pool_stats`
        read.
    target_p99_ms:
        Latency-targeted autoscaling: when set, the pool reads the p99
        of its batch-latency histogram over a sliding
        :data:`P99_WINDOW_SECONDS` window and grows one worker per
        dispatch while p99 breaches the target (up to ``max_workers``),
        shrinking one worker once p99 recovers below half the target
        (down to ``min_workers``).  Queue-depth growth and idle-TTL
        shrinking stay active as fallbacks.  ``None`` (default)
        disables the policy.
    clock:
        Monotonic time source (injectable for tests); defaults to
        :func:`time.monotonic`.  Also drives the latency window.
    metrics:
        Registry the pool's counters and histograms live in (restarts,
        sync volume, scale events, ``pool_batch_ms``, merged worker
        deltas).  Defaults to a fresh registry; the serving layer
        passes its own so pool telemetry joins the unified view.

    The resident state is bound by the first ``map_items`` call's
    ``initializer``.  A later call with a *different* initializer
    rebinds: the pool restarts with the new state (so one backend can
    serve the index build and the batch-serve path in turn; only the
    steady, repeated call site gets the resident-state speedup).
    """

    name = "pool"
    requires_pickling = True

    def __init__(
        self,
        workers: int | None = None,
        sync: str = "delta",
        max_delta_log: int = DEFAULT_MAX_DELTA_LOG,
        min_workers: int | None = None,
        max_workers: int | None = None,
        idle_ttl: float | None = None,
        target_p99_ms: float | None = None,
        clock: Callable[[], float] | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        super().__init__(workers)
        if sync not in POOL_SYNC_MODES:
            raise ConfigurationError(
                f"unknown pool sync mode {sync!r}; "
                f"expected one of {POOL_SYNC_MODES}"
            )
        if max_delta_log < 0:
            raise ConfigurationError("max_delta_log must be >= 0")
        self.sync = sync
        self.max_delta_log = max_delta_log
        if max_workers is not None:
            self.max_workers = max_workers
        elif min_workers is not None:
            # A lone floor implies the ceiling covers it: min_workers=4
            # with no explicit ceiling means "at least 4", not a
            # min-above-max contradiction with the default width.
            self.max_workers = max(self.workers, min_workers)
        else:
            self.max_workers = self.workers
        if self.max_workers < 1:
            raise ConfigurationError("max_workers must be >= 1")
        self.min_workers = (
            min_workers
            if min_workers is not None
            else min(self.workers, self.max_workers)
        )
        if self.min_workers < 1:
            raise ConfigurationError("min_workers must be >= 1")
        if self.min_workers > self.max_workers:
            raise ConfigurationError(
                f"min_workers ({self.min_workers}) must not exceed "
                f"max_workers ({self.max_workers})"
            )
        if idle_ttl is not None and idle_ttl <= 0:
            raise ConfigurationError("idle_ttl must be positive or None")
        self.idle_ttl = idle_ttl
        if target_p99_ms is not None and target_p99_ms <= 0:
            raise ConfigurationError("target_p99_ms must be positive or None")
        self.target_p99_ms = target_p99_ms
        self._clock = clock or time.monotonic
        methods = multiprocessing.get_all_start_methods()
        # fork keeps worker boots cheap: the initializer arguments are
        # inherited through the fork snapshot, never pickled — which is
        # also what lets a mid-stream spawn see the current epoch.
        self._context = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )
        # _lock guards the parent-side protocol state; _dispatch_lock
        # serializes whole map_items calls (dispatch + collection), so
        # two threads can never interleave results on the shared queue.
        self._lock = threading.RLock()
        self._dispatch_lock = threading.Lock()
        self._workers: list[_Worker] = []
        self._results: Any = None
        self._next_worker_id = 0
        self._bound_init: Callable[..., None] | None = None
        self._bound_initargs: tuple[Any, ...] = ()
        self._applier: Callable[[Any], None] | None = None
        self._applier_init: Callable[..., None] | None = None
        # The applier the *live workers* were spawned with.  Broadcast
        # is only sound while this matches the parent's current
        # binding — an applier bound (or re-bound) after boot must
        # force a restart, not a broadcast the workers cannot apply.
        self._pool_applier: Callable[[Any], None] | None = None
        self._epoch = 0
        self._pool_epoch = -1
        self._deltas: list[tuple[int, Any]] = []
        self._log_complete = True
        self._booted = False
        self._last_dispatch = self._clock()
        # Operational counters live in the registry; pool_stats() and
        # the introspection properties are views over these.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._restarts = self.metrics.counter("pool_restarts")
        self._delta_syncs = self.metrics.counter("pool_delta_syncs")
        self._sync_messages = self.metrics.counter("pool_sync_messages")
        self._sync_bytes = self.metrics.counter("pool_sync_bytes")
        self._scale_ups = self.metrics.counter("pool_scale_ups")
        self._scale_downs = self.metrics.counter("pool_scale_downs")
        self._bootstrap_bytes = self.metrics.counter("pool_bootstrap_bytes")
        self._forced_stops = self.metrics.counter("pool_forced_stops")
        # Pickled size of the current initargs binding, cached per
        # binding identity (the tuple is rebound wholesale on restart).
        self._initargs_size_cache: tuple[tuple[Any, ...], int] | None = None
        self._batch_latency = self.metrics.histogram(
            "pool_batch_ms", window_s=P99_WINDOW_SECONDS, clock=self._clock
        )

    # -- state registration ----------------------------------------------------

    def bind_delta_applier(
        self,
        applier: Callable[[Any], None],
        initializer: Callable[..., None],
    ) -> None:
        """Register the worker-side mutation applier for delta sync.

        ``applier`` must be a module-level (picklable) function that
        applies one delta payload to the resident state built by
        ``initializer``.  Deltas are only broadcast while the pool is
        bound to that same initializer; any other resident state falls
        back to a full restart.
        """
        with self._lock:
            self._applier = applier
            self._applier_init = initializer

    def notify_state_change(self, delta: Any = None) -> int:
        """Record one mutation of the state behind the resident copies.

        ``delta`` is an opaque, picklable description of the mutation
        (broadcast to and replayed by every live worker before its next
        task).  ``None`` means the change cannot be described as a
        delta — the next dispatch re-ships the full state.  Returns the
        new epoch.
        """
        with self._lock:
            self._epoch += 1
            if delta is not None and self.sync == "delta":
                self._deltas.append((self._epoch, delta))
            else:
                # An undescribed mutation poisons the log: replaying
                # the surviving entries would skip this change.
                self._deltas.clear()
                self._log_complete = False
            return self._epoch

    # -- introspection ---------------------------------------------------------

    @property
    def epoch(self) -> int:
        """The parent-side state epoch (mutations seen so far)."""
        with self._lock:
            return self._epoch

    @property
    def resident_epoch(self) -> int:
        """Epoch every resident worker is guaranteed to have reached.

        Advances on boot, on restart, and at each broadcast (-1 before
        the first dispatch).  The FIFO inboxes are what make advancing
        at broadcast time sound: no worker can run a later task without
        first consuming the sync packet queued ahead of it.
        """
        with self._lock:
            return self._pool_epoch

    @property
    def restarts(self) -> int:
        """Number of full pool (re)boots, the full-re-ship counter."""
        return int(self._restarts.value)

    @property
    def pending_deltas(self) -> int:
        """Logged mutations not yet broadcast to the pool."""
        with self._lock:
            return len(self._deltas)

    @property
    def live_workers(self) -> int:
        """Resident worker processes currently in the pool."""
        with self._lock:
            return len(self._workers)

    def pool_stats(self) -> dict[str, Any]:
        """Operational counters for service/CLI statistics output.

        Keys: ``sync`` mode, ``epoch``/``resident_epoch``, ``restarts``
        (full re-ships), ``delta_syncs`` (broadcasts), ``sync_messages``
        and ``sync_bytes`` (control-plane volume — O(workers) per
        broadcast by construction), ``bootstrap_bytes`` (cumulative
        pickled initargs size over worker spawns — the state-ship cost
        the mmap'd packed spill collapses), ``pending_deltas``, the live width
        and autoscaling bounds, ``scale_ups``/``scale_downs``, plus the
        latency policy: ``target_p99_ms`` and the windowed
        ``batch_p99_ms`` it reads (``None`` while the window is empty).
        The dict is a view over the pool's metrics registry; reading
        stats also applies any due autoscaling.
        """
        self.autoscale()
        with self._lock:
            return {
                "sync": self.sync,
                "epoch": self._epoch,
                "resident_epoch": self._pool_epoch,
                "restarts": int(self._restarts.value),
                "delta_syncs": int(self._delta_syncs.value),
                "sync_messages": int(self._sync_messages.value),
                "sync_bytes": int(self._sync_bytes.value),
                "bootstrap_bytes": int(self._bootstrap_bytes.value),
                "pending_deltas": len(self._deltas),
                "live_workers": len(self._workers),
                "min_workers": self.min_workers,
                "max_workers": self.max_workers,
                "idle_ttl": self.idle_ttl,
                "scale_ups": int(self._scale_ups.value),
                "scale_downs": int(self._scale_downs.value),
                "forced_stops": int(self._forced_stops.value),
                "target_p99_ms": self.target_p99_ms,
                "batch_p99_ms": self._batch_latency.windowed_quantile(0.99),
            }

    # -- autoscaling -----------------------------------------------------------

    def autoscale(self) -> int:
        """Apply the scaling policies now; returns the live width.

        Two policies run, both opportunistically (skipped while a
        dispatch is in flight — never stop a worker that may hold
        queued tasks):

        * **idle shrink** — with ``idle_ttl`` set, a pool over
          ``min_workers`` that saw no dispatch for ``idle_ttl`` seconds
          shrinks back to ``min_workers``;
        * **p99 policy** — with ``target_p99_ms`` set, the windowed
          batch-latency p99 grows the pool by one worker while
          breached and shrinks by one once it recovers below half the
          target (see :meth:`_apply_p99_policy`).
        """
        if not self._dispatch_lock.acquire(blocking=False):
            return len(self._workers)
        try:
            with self._lock:
                if (
                    self._booted
                    and self.idle_ttl is not None
                    and len(self._workers) > self.min_workers
                    and self._clock() - self._last_dispatch >= self.idle_ttl
                ):
                    self._shrink_to(self.min_workers)
                self._apply_p99_policy(allow_shrink=True)
                return len(self._workers)
        finally:
            self._dispatch_lock.release()

    def _apply_p99_policy(self, allow_shrink: bool) -> None:
        """One p99-driven scaling step (under ``_lock``; booted pools only).

        Reads the sliding-window p99 of ``pool_batch_ms``: above
        ``target_p99_ms`` the pool grows one worker toward
        ``max_workers``; at or below half the target (the hysteresis
        band that keeps grow/shrink from oscillating) it shrinks one
        worker toward ``min_workers``.  An empty window — no recent
        batches — takes no action.  Shrinking is suppressed on the
        dispatch path (``allow_shrink=False``): a dispatch wants
        capacity now, reclaiming it is :meth:`autoscale`'s job.
        """
        if self.target_p99_ms is None or not self._booted or not self._workers:
            return
        p99 = self._batch_latency.windowed_quantile(0.99)
        if p99 is None:
            return
        if p99 > self.target_p99_ms and len(self._workers) < self.max_workers:
            self._spawn_worker()
            self._scale_ups.inc()
        elif (
            allow_shrink
            and p99 <= self.target_p99_ms * 0.5
            and len(self._workers) > self.min_workers
        ):
            self._shrink_to(len(self._workers) - 1)

    def _shrink_to(self, width: int) -> None:
        """Stop excess workers via targeted stop messages (under _lock)."""
        stopped, self._workers = self._workers[width:], self._workers[:width]
        if stopped:
            self._scale_downs.inc(len(stopped))
        for worker in stopped:
            if worker.stop():
                self._forced_stops.inc()

    def _spawn_worker(self) -> None:
        """Fork one worker bootstrapped at the parent's current epoch.

        Every worker of one pool generation gets the generation's
        applier (:attr:`_pool_applier`), never the parent's possibly
        newer binding — mixed appliers within one pool would break the
        broadcast soundness argument.
        """
        self._bootstrap_bytes.inc(self._initargs_bytes())
        inbox = self._context.Queue()
        process = self._context.Process(
            target=_worker_loop,
            args=(
                self._next_worker_id,
                self._bound_init,
                self._bound_initargs,
                self._epoch,
                self._pool_applier,
                inbox,
                self._results,
            ),
            daemon=True,
        )
        process.start()
        self._workers.append(_Worker(self._next_worker_id, process, inbox))
        self._next_worker_id += 1

    def _initargs_bytes(self) -> int:
        """Pickled size of the bound initargs — the per-worker ship cost.

        The pool forks, so the state is inherited rather than pickled;
        this models what each spawn *would* ship under a spawn/remote
        start method, which is the number the mmap'd-spill bootstrap
        (tiny initargs, state mapped from disk) is measured against.
        Unpicklable initargs count as 0.
        """
        cached = self._initargs_size_cache
        if cached is not None and _same_elements(cached[0], self._bound_initargs):
            return cached[1]
        try:
            size = len(pickle.dumps(self._bound_initargs))
        except Exception:
            size = 0
        self._initargs_size_cache = (self._bound_initargs, size)
        return size

    def _spawn_width(self, queue_depth: int) -> int:
        """Initial/restart width for a dispatch of ``queue_depth`` tasks."""
        return min(self.max_workers, max(self.min_workers, queue_depth))

    # -- dispatch --------------------------------------------------------------

    def _can_delta_sync(self, initializer: Callable[..., None] | None) -> bool:
        if self.sync != "delta" or not self._log_complete:
            return False
        if self._applier is None or initializer is not self._applier_init:
            return False
        if self._applier is not self._pool_applier:
            # The live workers were spawned before this applier was
            # bound (or under a different one) — they could not replay
            # the packet.  Fall back to a restart, which re-captures
            # the binding.
            return False
        return len(self._deltas) <= self.max_delta_log

    def _restart_pool(
        self,
        initializer: Callable[..., None] | None,
        initargs: tuple[Any, ...],
        queue_depth: int,
    ) -> None:
        """Full re-ship: stop everything, respawn at the current epoch."""
        self._shutdown_pool()
        self._bound_init = initializer
        self._bound_initargs = initargs
        self._pool_applier = (
            self._applier
            if initializer is self._applier_init
            else None
        )
        self._results = self._context.Queue()
        for _ in range(self._spawn_width(queue_depth)):
            self._spawn_worker()
        self._pool_epoch = self._epoch
        self._deltas.clear()
        self._log_complete = True
        self._booted = True
        self._restarts.inc()

    def _broadcast_sync(self) -> None:
        """Fan the pending delta packet out: one message per worker.

        This is the tentpole invariant: sync cost is O(workers) — the
        packet is serialised once per *worker*, never per task — and
        after the fan-out the parent may clear the log, because every
        inbox now holds the packet ahead of any future task.
        """
        blob = pickle.dumps(("sync", self._epoch, tuple(self._deltas)))
        for worker in self._workers:
            worker.inbox.put(blob)
        self._delta_syncs.inc()
        self._sync_messages.inc(len(self._workers))
        self._sync_bytes.inc(len(blob) * len(self._workers))
        self._pool_epoch = self._epoch
        self._deltas.clear()

    def _prepare_dispatch(
        self,
        initializer: Callable[..., None] | None,
        initargs: tuple[Any, ...],
        queue_depth: int,
    ) -> tuple[list[_Worker], int]:
        """Bring the pool to the current epoch; returns (workers, epoch).

        Must run under :attr:`_lock`.  Order matters: decide restart vs
        broadcast first (stale workers get the packet), then grow
        (fresh workers boot at the current epoch and need no packet).
        """
        self._last_dispatch = self._clock()
        rebind = (
            not self._booted
            or not self._workers
            or initializer is not self._bound_init
            or not _same_elements(initargs, self._bound_initargs)
        )
        stale = self._epoch > self._pool_epoch
        if rebind or (stale and not self._can_delta_sync(initializer)):
            self._restart_pool(initializer, initargs, queue_depth)
        elif stale:
            self._broadcast_sync()
        target = min(self.max_workers, max(len(self._workers), queue_depth))
        grown = target - len(self._workers)
        for _ in range(grown):
            self._spawn_worker()
        if grown > 0:
            self._scale_ups.inc(grown)
        # Latency-targeted growth on top of queue depth: a breached
        # windowed p99 adds one more worker per dispatch (shrinking is
        # autoscale()'s job — a dispatch wants capacity, not less).
        self._apply_p99_policy(allow_shrink=False)
        return list(self._workers), self._pool_epoch

    def map_items(
        self,
        fn: Callable[[T], R],
        items: Iterable[T],
        *,
        initializer: Callable[..., None] | None = None,
        initargs: tuple[Any, ...] = (),
        deadline: Deadline | None = None,
    ) -> list[R]:
        """``[fn(item) for item in items]`` on the resident workers.

        Tasks are split into contiguous chunks (a few per worker) and
        enqueued round-robin into the worker inboxes — O(workers)
        messages per batch.  Results come back tagged with their input
        index and are reordered, so output order (and content) is
        bit-identical to the serial backend.  A task exception is
        re-raised in the parent for the earliest failing item, after
        the batch drains.

        ``deadline`` is checked *before* dispatch only: once chunks sit
        in worker inboxes, aborting the collect loop would leave queued
        results to corrupt the next batch, so an already-dispatched
        batch always drains.
        """
        items = list(items)
        if not items:
            return []
        ensure_picklable(fn)
        if deadline is not None:
            deadline.check(f"pool dispatch of {len(items)} task item(s)")
        batch_started = self._clock()
        with self._dispatch_lock:
            with self._lock:
                workers, epoch = self._prepare_dispatch(
                    initializer, initargs, len(items)
                )
            # Serialisation and enqueuing run outside the state lock —
            # a concurrent notify_state_change only appends to the
            # delta log (broadcast next dispatch), while _dispatch_lock
            # keeps the worker list and inbox ordering ours alone.
            # Every message is serialised *before* any is enqueued: an
            # unpicklable item surfaces here as an error (nothing
            # dispatched, pool still consistent) instead of being
            # dropped by the queue's feeder thread mid-batch.
            chunks = chunk_evenly(
                list(enumerate(items)),
                min(len(items), len(workers) * _CHUNKS_PER_WORKER),
            )
            try:
                blobs = [
                    pickle.dumps(("tasks", fn, tuple(chunk), epoch))
                    for chunk in chunks
                ]
            except Exception as exc:
                raise ExecutionError(
                    f"pool backend requires picklable task items; "
                    f"cannot serialise a chunk for {fn!r}: {exc}. "
                    f"Use plain-data arguments (see repro.exec)."
                ) from exc
            for position, blob in enumerate(blobs):
                workers[position % len(workers)].inbox.put(blob)
            try:
                return self._collect(fn, len(items))
            finally:
                # One observation per batch (dispatch + drain), against
                # the injectable clock — this histogram's windowed p99
                # is what the latency-targeted autoscaler reads.
                self._batch_latency.observe(
                    (self._clock() - batch_started) * 1000.0
                )

    def _collect(self, fn: Callable[..., Any], expected: int) -> list[Any]:
        """Drain ``expected`` tagged results, reorder, re-raise errors.

        Result messages may carry a piggybacked worker metrics delta
        (see :func:`_drain_worker_delta`); each is merged into the
        pool's registry under a ``worker="N"`` label before the batch
        returns — a worker that dies mid-batch loses only its final
        undelivered delta, never corrupts the parent's counts.
        """
        values: dict[int, Any] = {}
        failures: dict[int, tuple[bytes | None, str, str]] = {}
        while len(values) + len(failures) < expected:
            try:
                blob = self._results.get(timeout=_RESULT_POLL_SECONDS)
            except queue_module.Empty:
                self._ensure_workers_alive(fn)
                continue
            message = pickle.loads(blob)
            if message[0] == "ok":
                _, index, value, delta = message
                values[index] = value
            else:
                _, index, exc_bytes, summary, tb, delta = message
                failures[index] = (exc_bytes, summary, tb)
            if delta is not None:
                worker_id, payload = delta
                self.metrics.merge_delta(
                    payload, extra_labels={"worker": str(worker_id)}
                )
        if failures:
            index = min(failures)
            exc_bytes, summary, tb = failures[index]
            original: BaseException | None = None
            if exc_bytes is not None:
                try:
                    loaded = pickle.loads(exc_bytes)
                except Exception:  # pragma: no cover - defensive
                    loaded = None
                if isinstance(loaded, BaseException):
                    original = loaded
            if original is not None:
                # Keep the original exception type (callers catch it),
                # chaining the worker-side stack so the failure's
                # origin is not lost at the process boundary.
                raise original from ExecutionError(
                    f"pool task {fn!r} failed in a worker process; "
                    f"worker traceback:\n{tb}"
                )
            raise ExecutionError(
                f"pool task {fn!r} failed with an unpicklable exception "
                f"{summary}; worker traceback:\n{tb}"
            )
        return [values[index] for index in range(expected)]

    def _ensure_workers_alive(self, fn: Callable[..., Any]) -> None:
        """Turn a silent worker death into a loud ExecutionError."""
        with self._lock:
            dead = [
                worker
                for worker in self._workers
                if not worker.process.is_alive()
            ]
            if dead:
                codes = [worker.process.exitcode for worker in dead]
                self._shutdown_pool()
                raise ExecutionError(
                    f"pool worker process died while mapping {fn!r} "
                    f"(exit codes {codes})"
                )

    # -- lifecycle -------------------------------------------------------------

    def _shutdown_pool(self) -> None:
        """Stop every worker and drop the queues (under _lock)."""
        workers, self._workers = self._workers, []
        for worker in workers:
            if worker.stop():
                self._forced_stops.inc()
        if self._results is not None:
            self._results.close()
            self._results.cancel_join_thread()
            self._results = None
        self._bound_init = None
        self._bound_initargs = ()
        self._booted = False
        self._pool_epoch = -1

    def close(self) -> None:
        """Shut the resident workers down (idempotent)."""
        with self._dispatch_lock:
            with self._lock:
                self._shutdown_pool()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PoolBackend(workers={self.workers}, sync={self.sync!r}, "
            f"min_workers={self.min_workers}, max_workers={self.max_workers}, "
            f"epoch={self._epoch})"
        )
