"""A long-lived worker pool with epoch-based state synchronisation.

:class:`~repro.exec.backends.ProcessBackend` buys staleness-freedom by
building a fresh pool per ``map_items`` call — every batch pays fork and
state-shipping overhead even when nothing changed between batches.
:class:`PoolBackend` keeps the workers alive instead and makes the
staleness hazard explicit:

* each worker holds a **resident copy** of the per-call state (built by
  the ``initializer`` when the pool starts);
* the owner of the state (e.g. a
  :class:`~repro.serving.RecommendationService`) reports every mutation
  through :meth:`PoolBackend.notify_state_change`, which bumps an
  **epoch counter**;
* every task ships the current epoch; a worker whose resident state is
  older re-syncs *before* running the task — either by replaying a
  **delta log** of mutations (``sync="delta"``) or, when no delta is
  available, by a full pool restart that re-ships the state
  (``sync="full"``);
* in steady state (no mutations between batches) tasks ship nothing but
  their own arguments — this is the whole point.  After a mutation the
  pending delta suffix rides along with each dispatch (a worker only
  syncs when a task reaches it, so the parent cannot know when the last
  straggler caught up); once that has happened
  :data:`PROMOTE_AFTER_STALE_DISPATCHES` times the pool restarts to
  return to truly-bare dispatches.

The epoch protocol keeps the backend family's core contract intact:
results are bit-identical to the serial backend, because a worker never
runs a task against state older than the parent's at dispatch time.
Skipping :meth:`notify_state_change` after a mutation breaks that
guarantee — the regression tests pin the resulting staleness as the
documented counterexample.

Delta entries are opaque to the backend.  The state owner registers a
module-level **applier** via :meth:`bind_delta_applier`; workers call it
once per unseen delta, in epoch order.  Appliers must be deterministic:
replaying the same deltas over the same resident state must reproduce
the parent's state exactly, or bit-identity silently breaks.
"""

from __future__ import annotations

import multiprocessing
import threading
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Iterable, TypeVar

from ..exceptions import ConfigurationError, ExecutionError
from .backends import ExecutionBackend, ensure_picklable

T = TypeVar("T")
R = TypeVar("R")

#: Sync strategies accepted by :class:`PoolBackend` (and the config's
#: ``pool_sync`` knob).
POOL_SYNC_MODES: tuple[str, ...] = ("full", "delta")

#: Delta-log length beyond which replaying mutations costs more than a
#: pool restart; the backend re-ships the full state instead.
DEFAULT_MAX_DELTA_LOG = 256

#: Number of consecutive delta-shipping dispatches after which the pool
#: restarts anyway.  There is no cheap way to learn that *every* worker
#: has replayed the log (a worker only syncs when a task happens to
#: reach it), so the pending suffix rides along with each dispatch; the
#: bound stops a single mutation from taxing every batch forever.
PROMOTE_AFTER_STALE_DISPATCHES = 32


def _same_elements(a: tuple[Any, ...], b: tuple[Any, ...]) -> bool:
    """Element-wise identity of two initarg tuples.

    Identity (not equality): comparing a large dataset by value per
    dispatch would cost more than the dispatch, and the resident-state
    contract is about *which objects* the workers were built from.
    Call sites that want pool reuse must pass a stable initargs tuple
    (the serving layer caches its per-service tuple for exactly this
    reason).
    """
    return len(a) == len(b) and all(x is y for x, y in zip(a, b))


# -- worker-side resident state ---------------------------------------------
#
# One copy per worker process.  ``_EPOCH`` is the age of the resident
# state; tasks carry the parent's epoch plus the delta-log suffix a
# stale worker needs to catch up.

_EPOCH: int = -1
_APPLIER: Callable[[Any], None] | None = None


def _boot_worker(
    initializer: Callable[..., None] | None,
    initargs: tuple[Any, ...],
    epoch: int,
    applier: Callable[[Any], None] | None,
) -> None:
    """Build the resident state in a fresh worker process."""
    global _EPOCH, _APPLIER
    if initializer is not None:
        initializer(*initargs)
    _EPOCH = epoch
    _APPLIER = applier


def _run_task(spec: tuple[Callable[[Any], Any], Any, int, tuple]) -> Any:
    """Sync the resident state if stale, then run one task."""
    global _EPOCH
    fn, item, epoch, deltas = spec
    if epoch > _EPOCH:
        if _APPLIER is None:
            raise ExecutionError(
                f"pool worker state is stale (resident epoch {_EPOCH}, "
                f"task epoch {epoch}) and no delta applier is bound; "
                f"the parent should have restarted the pool"
            )
        for delta_epoch, delta in deltas:
            if delta_epoch > _EPOCH:
                _APPLIER(delta)
        _EPOCH = epoch
    return fn(item)


class PoolBackend(ExecutionBackend):
    """A persistent process pool whose workers hold resident state.

    Parameters
    ----------
    workers:
        Pool width, as for every backend.
    sync:
        ``"delta"`` (default) replays logged mutations into stale
        workers; ``"full"`` restarts the pool (re-shipping the state
        through the initializer) after any mutation.  Both are exactly
        as fresh as :class:`~repro.exec.backends.ProcessBackend`; they
        differ only in how much crosses the process boundary.
    max_delta_log:
        Pending-delta count beyond which a delta sync falls back to a
        full restart (replaying a long history into every worker costs
        more than one re-ship).

    The resident state is bound by the first ``map_items`` call's
    ``initializer``.  A later call with a *different* initializer
    rebinds: the pool restarts with the new state (so one backend can
    serve the index build and the batch-serve path in turn; only the
    steady, repeated call site gets the resident-state speedup).
    """

    name = "pool"
    requires_pickling = True

    def __init__(
        self,
        workers: int | None = None,
        sync: str = "delta",
        max_delta_log: int = DEFAULT_MAX_DELTA_LOG,
    ) -> None:
        super().__init__(workers)
        if sync not in POOL_SYNC_MODES:
            raise ConfigurationError(
                f"unknown pool sync mode {sync!r}; "
                f"expected one of {POOL_SYNC_MODES}"
            )
        if max_delta_log < 0:
            raise ConfigurationError("max_delta_log must be >= 0")
        self.sync = sync
        self.max_delta_log = max_delta_log
        methods = multiprocessing.get_all_start_methods()
        # fork keeps pool (re)starts cheap: the initializer arguments
        # are inherited through the fork snapshot, never pickled.
        self._context = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )
        self._lock = threading.RLock()
        self._pool: ProcessPoolExecutor | None = None
        self._bound_init: Callable[..., None] | None = None
        self._bound_initargs: tuple[Any, ...] = ()
        self._applier: Callable[[Any], None] | None = None
        self._applier_init: Callable[..., None] | None = None
        self._epoch = 0
        self._pool_epoch = -1
        self._deltas: list[tuple[int, Any]] = []
        self._log_complete = True
        self._restarts = 0
        self._delta_syncs = 0
        self._stale_dispatches = 0

    # -- state registration ----------------------------------------------------

    def bind_delta_applier(
        self,
        applier: Callable[[Any], None],
        initializer: Callable[..., None],
    ) -> None:
        """Register the worker-side mutation applier for delta sync.

        ``applier`` must be a module-level (picklable) function that
        applies one delta payload to the resident state built by
        ``initializer``.  Deltas are only replayed while the pool is
        bound to that same initializer; any other resident state falls
        back to a full restart.
        """
        with self._lock:
            self._applier = applier
            self._applier_init = initializer

    def notify_state_change(self, delta: Any = None) -> int:
        """Record one mutation of the state behind the resident copies.

        ``delta`` is an opaque, picklable description of the mutation
        (replayed by the bound applier).  ``None`` means the change
        cannot be described as a delta — the next dispatch re-ships the
        full state.  Returns the new epoch.
        """
        with self._lock:
            self._epoch += 1
            if delta is not None and self.sync == "delta":
                self._deltas.append((self._epoch, delta))
            else:
                # An undescribed mutation poisons the log: replaying
                # the surviving entries would skip this change.
                self._deltas.clear()
                self._log_complete = False
            return self._epoch

    # -- introspection ---------------------------------------------------------

    @property
    def epoch(self) -> int:
        """The parent-side state epoch (mutations seen so far)."""
        with self._lock:
            return self._epoch

    @property
    def resident_epoch(self) -> int:
        """Epoch the pool was booted at (-1 before the first dispatch)."""
        with self._lock:
            return self._pool_epoch

    @property
    def restarts(self) -> int:
        """Number of pool (re)starts, the full-re-ship counter."""
        with self._lock:
            return self._restarts

    @property
    def pending_deltas(self) -> int:
        """Delta-log entries newer than the pool's boot epoch."""
        with self._lock:
            return len(self._pending())

    def pool_stats(self) -> dict[str, Any]:
        """Operational counters for service/CLI statistics output."""
        with self._lock:
            return {
                "sync": self.sync,
                "epoch": self._epoch,
                "resident_epoch": self._pool_epoch,
                "restarts": self._restarts,
                "delta_syncs": self._delta_syncs,
                "pending_deltas": len(self._pending()),
            }

    # -- dispatch --------------------------------------------------------------

    def _pending(self) -> list[tuple[int, Any]]:
        return [entry for entry in self._deltas if entry[0] > self._pool_epoch]

    def _can_delta_sync(self, initializer: Callable[..., None] | None) -> bool:
        if self.sync != "delta" or not self._log_complete:
            return False
        if self._applier is None or initializer is not self._applier_init:
            return False
        return len(self._pending()) <= self.max_delta_log

    def _ensure_pool(
        self,
        initializer: Callable[..., None] | None,
        initargs: tuple[Any, ...],
    ) -> tuple[ProcessPoolExecutor, int, tuple[tuple[int, Any], ...]]:
        """Start/refresh the pool; returns (pool, epoch, delta suffix).

        Must be called under :attr:`_lock`.  After this returns, either
        the pool's boot epoch equals the current epoch (fresh fork) or
        the returned delta suffix brings any stale worker up to date.
        """
        rebind = (
            self._pool is None
            or initializer is not self._bound_init
            or not _same_elements(initargs, self._bound_initargs)
        )
        stale = self._epoch > self._pool_epoch
        promote = stale and self._stale_dispatches >= PROMOTE_AFTER_STALE_DISPATCHES
        if rebind or promote or (stale and not self._can_delta_sync(initializer)):
            self._shutdown_pool()
            applier = (
                self._applier
                if initializer is self._applier_init
                else None
            )
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=self._context,
                initializer=_boot_worker,
                initargs=(initializer, initargs, self._epoch, applier),
            )
            self._bound_init = initializer
            self._bound_initargs = initargs
            self._pool_epoch = self._epoch
            self._deltas.clear()
            self._log_complete = True
            self._restarts += 1
            self._stale_dispatches = 0
            return self._pool, self._epoch, ()
        # Drop log entries every worker is guaranteed to have (they were
        # booted at _pool_epoch or later).
        self._deltas = self._pending()
        if self._epoch > self._pool_epoch:
            self._delta_syncs += 1
            self._stale_dispatches += 1
            return self._pool, self._epoch, tuple(self._deltas)
        return self._pool, self._pool_epoch, ()

    def map_items(
        self,
        fn: Callable[[T], R],
        items: Iterable[T],
        *,
        initializer: Callable[..., None] | None = None,
        initargs: tuple[Any, ...] = (),
    ) -> list[R]:
        items = list(items)
        if not items:
            return []
        ensure_picklable(fn)
        with self._lock:
            pool, epoch, deltas = self._ensure_pool(initializer, initargs)
        specs = [(fn, item, epoch, deltas) for item in items]
        chunksize = max(1, len(specs) // (self.workers * 4))
        try:
            return list(pool.map(_run_task, specs, chunksize=chunksize))
        except BrokenProcessPool as exc:
            with self._lock:
                self._shutdown_pool()
            raise ExecutionError(
                f"pool worker process died while mapping {fn!r}: {exc}"
            ) from exc

    # -- lifecycle -------------------------------------------------------------

    def _shutdown_pool(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
            self._bound_init = None
            self._bound_initargs = ()
            self._pool_epoch = -1

    def close(self) -> None:
        """Shut the resident workers down (idempotent)."""
        with self._lock:
            self._shutdown_pool()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PoolBackend(workers={self.workers}, sync={self.sync!r}, "
            f"epoch={self._epoch})"
        )
