"""Length-prefixed frame codec of the remote execution protocol.

:mod:`repro.exec.pool` deliberately shaped its sync protocol like a
distributed system — per-worker FIFO inboxes, one delta packet per
epoch, results tagged with their input index — precisely so the
``mp.Queue`` transport could later be swapped for a socket.  This module
is that swap's wire format: every message of the pool protocol (plus
the handshake and liveness messages a real network needs) becomes one
**length-prefixed frame** on a TCP stream.

Frame layout (pinned by ``tests/exec/test_wire.py`` — it cannot drift
silently)::

    offset  size  field
    0       4     magic  b"RPRW"
    4       1     wire version (currently 1)
    5       1     frame type (HELLO..FAULT, below)
    6       2     reserved, must be zero
    8       4     payload length N, unsigned big-endian
    12      N     payload (pickled message envelope)

Everything is big-endian (network byte order).  The payload of a typed
frame is the pickled :func:`dataclasses.dataclass` envelope for that
frame type; :func:`decode_message` re-checks that the unpickled object
matches the frame type byte, so a frame can never smuggle a foreign
message.  Malformed input — bad magic, wrong version, nonzero reserved
bytes, oversized or truncated frames, undecodable payloads — raises a
typed :class:`WireError` naming the stream offset, never a bare
``struct`` or ``pickle`` error.

TCP gives the same FIFO guarantee the pool's queues did, which is what
keeps the sync-before-task correctness argument intact across machines:
a TASK frame written after a SYNC frame is read after it.
"""

from __future__ import annotations

import pickle
import socket as socket_module
import struct
import threading
from dataclasses import dataclass, field
from typing import Any, Callable

from ..exceptions import ExecutionError

#: First bytes of every frame; anything else on the stream is garbage.
MAGIC: bytes = b"RPRW"

#: Protocol version carried in every frame header.  A peer speaking a
#: different version is rejected at the first frame, not mid-batch.
WIRE_VERSION: int = 1

#: ``!`` = network byte order: 4s magic, B version, B frame type,
#: H reserved (zero), I payload length.
HEADER = struct.Struct("!4sBBHI")

#: Bytes of the fixed frame header.
HEADER_SIZE: int = HEADER.size

#: Default ceiling on one frame's payload, a defence against a
#: corrupted (or hostile) length prefix allocating unbounded memory.
#: 256 MiB comfortably covers a full dataset ship.
DEFAULT_MAX_FRAME_BYTES: int = 256 * 1024 * 1024

# -- frame types -------------------------------------------------------------

FRAME_HELLO = 1  #: worker -> parent: handshake, carries the fingerprint
FRAME_WELCOME = 2  #: parent -> worker: handshake accept + worker id
FRAME_BOOT = 3  #: parent -> worker: build/rebuild the resident state
FRAME_SYNC = 4  #: parent -> worker: broadcast delta packet (pool "sync")
FRAME_TASK = 5  #: parent -> worker: one task chunk (pool "tasks")
FRAME_RESULT = 6  #: worker -> parent: one task result (pool "ok"/"err")
FRAME_HEARTBEAT = 7  #: worker -> parent: liveness beacon
FRAME_STOP = 8  #: parent -> worker: orderly shutdown (pool "stop")
FRAME_FAULT = 9  #: either way: typed protocol-level rejection

#: Human-readable frame-type names, for error messages and tooling.
FRAME_NAMES: dict[int, str] = {
    FRAME_HELLO: "HELLO",
    FRAME_WELCOME: "WELCOME",
    FRAME_BOOT: "BOOT",
    FRAME_SYNC: "SYNC",
    FRAME_TASK: "TASK",
    FRAME_RESULT: "RESULT",
    FRAME_HEARTBEAT: "HEARTBEAT",
    FRAME_STOP: "STOP",
    FRAME_FAULT: "FAULT",
}


class WireError(ExecutionError):
    """A malformed, truncated or protocol-violating frame.

    Subclasses :class:`~repro.exceptions.ExecutionError` so every
    existing catch site that treats execution failures as loud, typed
    errors covers wire faults too — the chaos contract ("bit-identical
    or loud typed error") holds without new handling.
    """


class PeerDisconnected(WireError):
    """The peer's socket died mid-send (broken pipe / connection reset).

    Raised by :meth:`FrameConnection.send` instead of letting the raw
    ``OSError`` escape — a worker's heartbeat thread and the parent's
    dispatch path both catch :class:`WireError`, so a peer that
    vanishes mid-write surfaces as a typed, peer-naming wire fault on
    every existing handling path.
    """


class TruncatedFrameError(WireError):
    """A frame that ends before its declared length.

    Raised by :func:`decode_frame` when the buffer holds the *prefix* of
    a frame; stream readers treat it as "need more bytes" while at
    end-of-stream it is the torn-frame error itself.  ``offset`` is the
    stream offset of the frame's first byte, ``needed`` how many more
    bytes the frame requires.
    """

    def __init__(self, message: str, offset: int, needed: int) -> None:
        super().__init__(message)
        self.offset = offset
        self.needed = needed


def encode_frame(
    frame_type: int,
    payload: bytes,
    max_bytes: int = DEFAULT_MAX_FRAME_BYTES,
) -> bytes:
    """Wrap ``payload`` in one wire frame of ``frame_type``.

    >>> frame = encode_frame(FRAME_HEARTBEAT, b"x")
    >>> frame[:4], frame[4], frame[5], len(frame)
    (b'RPRW', 1, 7, 13)
    """
    if frame_type not in FRAME_NAMES:
        raise WireError(f"unknown frame type {frame_type!r}")
    if len(payload) > max_bytes:
        raise WireError(
            f"refusing to encode a {FRAME_NAMES[frame_type]} frame of "
            f"{len(payload)} payload bytes (max {max_bytes})"
        )
    return HEADER.pack(MAGIC, WIRE_VERSION, frame_type, 0, len(payload)) + payload


def decode_frame(
    data: bytes | bytearray | memoryview,
    offset: int = 0,
    max_bytes: int = DEFAULT_MAX_FRAME_BYTES,
) -> tuple[int, bytes, int]:
    """Decode one frame starting at ``offset`` of ``data``.

    Returns ``(frame_type, payload, next_offset)``.  ``offset`` is the
    *stream* offset of the frame's first byte — it appears verbatim in
    every error message so a fault on a long-lived connection names
    where on the stream it happened.  Raises
    :class:`TruncatedFrameError` when ``data`` ends mid-frame and
    :class:`WireError` for bad magic, a version or reserved-bytes
    mismatch, an unknown frame type, or an oversized length prefix.
    """
    view = memoryview(data)[offset:]
    if len(view) < HEADER_SIZE:
        raise TruncatedFrameError(
            f"truncated frame header at stream offset {offset}: have "
            f"{len(view)} of {HEADER_SIZE} header bytes",
            offset=offset,
            needed=HEADER_SIZE - len(view),
        )
    magic, version, frame_type, reserved, length = HEADER.unpack_from(view)
    if magic != MAGIC:
        raise WireError(
            f"bad frame magic {bytes(magic)!r} at stream offset {offset} "
            f"(expected {MAGIC!r}); the stream is not speaking the repro "
            f"wire protocol"
        )
    if version != WIRE_VERSION:
        raise WireError(
            f"unsupported wire version {version} at stream offset {offset} "
            f"(this side speaks version {WIRE_VERSION})"
        )
    if reserved != 0:
        raise WireError(
            f"nonzero reserved header bytes ({reserved:#06x}) at stream "
            f"offset {offset}; frame corrupt or from a future protocol"
        )
    if frame_type not in FRAME_NAMES:
        raise WireError(
            f"unknown frame type {frame_type} at stream offset {offset}"
        )
    if length > max_bytes:
        raise WireError(
            f"oversized {FRAME_NAMES[frame_type]} frame at stream offset "
            f"{offset}: declared payload of {length} bytes exceeds the "
            f"{max_bytes}-byte limit"
        )
    if len(view) < HEADER_SIZE + length:
        raise TruncatedFrameError(
            f"truncated {FRAME_NAMES[frame_type]} frame at stream offset "
            f"{offset}: have {len(view) - HEADER_SIZE} of {length} payload "
            f"bytes",
            offset=offset,
            needed=HEADER_SIZE + length - len(view),
        )
    payload = bytes(view[HEADER_SIZE : HEADER_SIZE + length])
    return frame_type, payload, offset + HEADER_SIZE + length


# -- message envelopes -------------------------------------------------------


@dataclass(frozen=True)
class Hello:
    """Worker -> parent handshake: who I am, what state I expect.

    ``fingerprint`` is the worker's expected config fingerprint
    (:meth:`repro.config.RecommenderConfig.fingerprint`) or ``None``
    when the worker takes whatever the parent ships (the loopback
    workers the backend spawns itself).  A mismatch is answered with a
    :class:`Fault` and the connection is closed — a worker built for
    different recommendation semantics must never receive tasks.
    """

    fingerprint: str | None = None


@dataclass(frozen=True)
class Welcome:
    """Parent -> worker handshake accept: assigned id + parent fingerprint."""

    worker_id: int
    fingerprint: str | None = None


@dataclass(frozen=True)
class Boot:
    """Parent -> worker: (re)build the resident state.

    The remote analogue of a pool restart: instead of killing and
    respawning processes, the parent re-sends a ``BOOT`` and the worker
    rebuilds in place.  Carries the same ``initializer``/``initargs``
    the pool ships through fork, the epoch the state is current at, the
    delta ``applier`` for later ``SYNC`` frames, and the sync mode.
    """

    initializer: Callable[..., None] | None
    initargs: tuple[Any, ...]
    epoch: int
    applier: Callable[[Any], None] | None
    sync: str = "delta"


@dataclass(frozen=True)
class Sync:
    """Parent -> worker: one broadcast delta packet (pool ``sync``)."""

    epoch: int
    entries: tuple[tuple[int, Any], ...]


@dataclass(frozen=True)
class Task:
    """Parent -> worker: one chunk of tagged task items (pool ``tasks``)."""

    chunk_id: int
    fn: Callable[..., Any]
    pairs: tuple[tuple[int, Any], ...]
    epoch: int


@dataclass(frozen=True)
class TaskResult:
    """Worker -> parent: one task's outcome (pool ``ok``/``err``).

    ``delta`` is the piggybacked worker metrics payload
    ``(worker_id, drained_delta)`` attached to the last result of each
    chunk, exactly as on the pool's result queue.
    """

    chunk_id: int
    index: int
    ok: bool
    value: Any = None
    exc_bytes: bytes | None = None
    summary: str = ""
    traceback: str = ""
    delta: Any = None


@dataclass(frozen=True)
class Heartbeat:
    """Worker -> parent liveness beacon; ``epoch`` is the resident epoch."""

    epoch: int = -1


@dataclass(frozen=True)
class Stop:
    """Parent -> worker: orderly shutdown (pool ``stop``)."""


@dataclass(frozen=True)
class Fault:
    """Typed protocol-level rejection (e.g. a fingerprint mismatch)."""

    message: str
    details: dict[str, Any] = field(default_factory=dict)


#: Frame type -> envelope class; the decode side's single source of truth.
MESSAGE_CLASSES: dict[int, type] = {
    FRAME_HELLO: Hello,
    FRAME_WELCOME: Welcome,
    FRAME_BOOT: Boot,
    FRAME_SYNC: Sync,
    FRAME_TASK: Task,
    FRAME_RESULT: TaskResult,
    FRAME_HEARTBEAT: Heartbeat,
    FRAME_STOP: Stop,
    FRAME_FAULT: Fault,
}

#: Envelope class -> frame type (the encode-side inverse).
FRAME_TYPES: dict[type, int] = {cls: ft for ft, cls in MESSAGE_CLASSES.items()}


def encode_message(
    message: Any, max_bytes: int = DEFAULT_MAX_FRAME_BYTES
) -> bytes:
    """Serialise one message envelope to its complete wire frame."""
    frame_type = FRAME_TYPES.get(type(message))
    if frame_type is None:
        raise WireError(
            f"not a wire message: {message!r} (expected one of "
            f"{sorted(cls.__name__ for cls in FRAME_TYPES)})"
        )
    try:
        payload = pickle.dumps(message)
    except Exception as exc:
        raise WireError(
            f"cannot serialise {FRAME_NAMES[frame_type]} message for the "
            f"wire: {exc}. Use module-level functions and plain-data "
            f"arguments (see repro.exec)."
        ) from exc
    return encode_frame(frame_type, payload, max_bytes)


def decode_message(frame_type: int, payload: bytes, offset: int = 0) -> Any:
    """Deserialise one frame's payload back into its typed envelope.

    Verifies that the unpickled object is exactly the envelope class
    the frame-type byte declares — a frame cannot smuggle a message of
    a different type past a handler that switched on the header.
    """
    expected = MESSAGE_CLASSES.get(frame_type)
    if expected is None:
        raise WireError(
            f"unknown frame type {frame_type} at stream offset {offset}"
        )
    try:
        message = pickle.loads(payload)
    except Exception as exc:
        raise WireError(
            f"undecodable {FRAME_NAMES[frame_type]} payload at stream "
            f"offset {offset}: {exc}"
        ) from exc
    if type(message) is not expected:
        raise WireError(
            f"frame type {FRAME_NAMES[frame_type]} at stream offset "
            f"{offset} carried a {type(message).__name__} payload; "
            f"expected {expected.__name__}"
        )
    return message


# -- stream transport --------------------------------------------------------


class FrameConnection:
    """One framed, message-typed TCP connection.

    Wraps a connected socket with buffered frame reassembly and
    thread-safe sends.  Two read styles, matching the two sides of the
    protocol:

    * :meth:`recv` — blocking; the worker's message loop.
    * :meth:`poll` — non-blocking drain; the parent's ``selectors``
      collect loop calls it once per readiness event.

    The connection tracks its cumulative stream offset so any decode
    error names where on the (possibly long-lived) stream the fault
    sits, plus frame/byte counters in both directions for the metrics
    registry.
    """

    def __init__(
        self,
        sock: Any,
        max_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        injector: Any = None,
    ) -> None:
        self._sock = sock
        self._max_bytes = max_bytes
        self._injector = injector
        self._buffer = bytearray()
        self._offset = 0  # stream offset of _buffer[0]
        self._peer_cache: str | None = None
        self._send_lock = threading.Lock()
        self._eof = False
        self._pending: list[Any] = []
        #: Bytes written to the socket so far.
        self.bytes_sent = 0
        #: Bytes consumed from the socket so far.
        self.bytes_received = 0
        #: Complete frames written so far.
        self.frames_sent = 0
        #: Complete frames decoded so far.
        self.frames_received = 0
        try:
            sock.setsockopt(
                socket_module.IPPROTO_TCP, socket_module.TCP_NODELAY, 1
            )
        except OSError:  # pragma: no cover - non-TCP test doubles
            pass

    def fileno(self) -> int:
        """The socket's file descriptor (for ``selectors`` registration)."""
        return self._sock.fileno()

    @property
    def peer(self) -> str:
        """``host:port`` of the remote end (best effort).

        The last successfully resolved name is cached, so a connection
        whose peer already vanished still *names* that peer in error
        messages instead of reporting ``<closed>``.
        """
        try:
            name = self._sock.getpeername()
        except OSError:
            return self._peer_cache or "<closed>"
        if isinstance(name, tuple) and len(name) >= 2:
            self._peer_cache = f"{name[0]}:{name[1]}"
        else:
            # AF_UNIX (socketpair test rigs) reports a bare, often
            # empty, path string rather than a (host, port) tuple.
            self._peer_cache = str(name) or "<unnamed>"
        return self._peer_cache

    def send(self, message: Any) -> int:
        """Frame and write one message; returns the bytes written.

        Thread-safe: the worker's heartbeat thread and its result path
        (and the parent's dispatch and requeue paths) interleave whole
        frames, never partial ones.  A peer that dies mid-write
        (broken pipe / connection reset) raises the typed
        :class:`PeerDisconnected` naming the peer, never a raw
        ``OSError``.  A configured fault injector
        (:class:`~repro.resilience.faults.FaultInjector`) is consulted
        per frame and may swallow or tear the write.
        """
        frame = encode_message(message, self._max_bytes)
        frame_name = FRAME_NAMES[FRAME_TYPES[type(message)]]
        peer = self.peer  # resolve (and cache) while the socket lives
        with self._send_lock:
            if self._injector is not None:
                verdict = self._injector.on_send(frame_name)
                if verdict == "drop":
                    # Scripted loss: count the frame as sent so the
                    # caller's accounting matches a real lost packet.
                    self.frames_sent += 1
                    return len(frame)
                if verdict == "tear":
                    # FIN right after the torn bytes, then drain inbound
                    # until the peer closes: hard-closing with unread
                    # frames still queued would turn the close into an
                    # RST, flushing the very torn bytes the peer must
                    # observe to classify this as a truncated frame.
                    try:
                        self._sock.sendall(frame[: max(1, len(frame) - 7)])
                        self._sock.shutdown(socket_module.SHUT_WR)
                        self._sock.settimeout(2.0)
                        while self._sock.recv(65536):
                            pass
                    except OSError:
                        pass
                    self.close()
                    raise PeerDisconnected(
                        f"fault injection tore a {frame_name} frame to "
                        f"{peer} mid-write"
                    )
            try:
                self._sock.sendall(frame)
            except (BrokenPipeError, ConnectionResetError) as exc:
                raise PeerDisconnected(
                    f"connection to {peer} died while sending a "
                    f"{frame_name} frame: {exc}"
                ) from exc
            self.bytes_sent += len(frame)
            self.frames_sent += 1
        return len(frame)

    def _drain_buffer(self) -> list[Any]:
        """Decode every complete frame currently buffered."""
        messages: list[Any] = []
        while True:
            try:
                frame_type, payload, next_offset = decode_frame(
                    self._buffer, 0, self._max_bytes
                )
            except TruncatedFrameError:
                break
            except WireError as exc:
                # Re-raise with the true stream offset (the buffer
                # always starts at self._offset on the stream).
                raise WireError(f"{exc} [stream offset {self._offset}]") from exc
            messages.append(decode_message(frame_type, payload, self._offset))
            del self._buffer[:next_offset]
            self._offset += next_offset
            self.frames_received += 1
        return messages

    def poll(self) -> tuple[list[Any], bool]:
        """Non-blocking read: ``(complete messages, eof)``.

        Call after a readiness event.  Raises :class:`WireError` on
        garbage, and a :class:`TruncatedFrameError` when the peer
        closed the stream mid-frame (a *torn frame* — the remote
        analogue of the pool's torn journal tail).
        """
        if not self._eof:
            try:
                self._sock.setblocking(False)
                try:
                    data = self._sock.recv(1 << 16)
                finally:
                    self._sock.setblocking(True)
            except (BlockingIOError, InterruptedError):
                data = None
            except OSError:
                data = b""
            if data == b"":
                self._eof = True
            elif data:
                self._buffer.extend(data)
                self.bytes_received += len(data)
        messages = self._drain_buffer()
        if self._eof and self._buffer:
            raise TruncatedFrameError(
                f"connection closed mid-frame at stream offset "
                f"{self._offset}: {len(self._buffer)} byte(s) of a partial "
                f"frame from {self.peer}",
                offset=self._offset,
                needed=1,
            )
        return messages, self._eof and not self._buffer

    def recv(self, timeout: float | None = None) -> Any | None:
        """Blocking read of the next message; ``None`` on clean EOF.

        A stream that ends mid-frame raises
        :class:`TruncatedFrameError`; ``timeout`` (seconds) raises
        :class:`TimeoutError` — the worker's handshake uses it so a
        silent parent cannot hang a connecting worker forever.
        """
        while True:
            if self._pending:
                return self._pending.pop(0)
            messages = self._drain_buffer()
            if messages:
                self._pending.extend(messages[1:])
                return messages[0]
            if self._eof:
                if self._buffer:
                    raise TruncatedFrameError(
                        f"connection closed mid-frame at stream offset "
                        f"{self._offset}: {len(self._buffer)} byte(s) of a "
                        f"partial frame from {self.peer}",
                        offset=self._offset,
                        needed=1,
                    )
                return None
            self._sock.settimeout(timeout)
            try:
                data = self._sock.recv(1 << 16)
            except TimeoutError as exc:
                raise TimeoutError(
                    f"no frame from {self.peer} within {timeout}s"
                ) from exc
            except OSError:
                data = b""
            finally:
                try:
                    self._sock.settimeout(None)
                except OSError:  # pragma: no cover - peer closed the fd
                    pass
            if data == b"":
                self._eof = True
            else:
                self._buffer.extend(data)
                self.bytes_received += len(data)

    def close(self) -> None:
        """Close the underlying socket (idempotent)."""
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - already closed
            pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FrameConnection(peer={self.peer}, sent={self.frames_sent}, "
            f"received={self.frames_received})"
        )
