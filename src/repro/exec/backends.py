"""Pluggable execution backends (serial / thread / process / pool).

The paper frames the recommender as three MapReduce jobs precisely
because peer-set and relevance computation dominate at scale — yet the
engine, the similarity batch builds, the serving fan-out and the eval
grids each hand-rolled their own (mostly serial) execution.  This
module is the single substrate they all share:

* :class:`SerialBackend` — a plain loop; the reference semantics.
* :class:`ThreadBackend` — a persistent thread pool; parallelises
  workloads that release the GIL or block, and batch request fan-out.
* :class:`ProcessBackend` — a process pool created per call, for the
  CPU-bound workloads (Pearson over co-rated items) where threads are
  GIL-bound.  Task functions and arguments must be picklable; per-call
  pools mean workers observe the parent's state *as of each call*, so
  an in-place data update between calls can never leave this backend
  serving stale data.  The freshness is paid for on every call (fork +
  state re-ship), even when nothing changed.
* :class:`~repro.exec.pool.PoolBackend` — a *long-lived*, autoscaling
  process pool whose workers keep resident state between calls and
  re-sync through broadcast per-epoch delta packets — one control
  message per worker, never per task (:mod:`repro.exec.pool`).
  Steady-state batches ship only task arguments; the freshness
  guarantee then depends on the state owner reporting every mutation
  via :meth:`ExecutionBackend.notify_state_change`.

Every backend maps a function over items **in input order** and returns
a list — results are bit-identical across backends by construction,
which is what lets the compute layers treat the backend as a pure
performance knob.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
from abc import ABC, abstractmethod
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from contextlib import contextmanager
from typing import Any, Callable, Iterable, Iterator, Sequence, TypeVar

from ..exceptions import ConfigurationError, ExecutionError
from ..resilience import Deadline

T = TypeVar("T")
R = TypeVar("R")

#: Backend names accepted by :func:`get_backend` (and the CLI/config).
BACKEND_NAMES: tuple[str, ...] = (
    "serial",
    "thread",
    "process",
    "pool",
    "remote",
)


def ensure_picklable(fn: Callable[..., Any]) -> None:
    """Fail fast, with a useful message, before crossing a process boundary.

    Only the task function is checked: module-level functions pickle by
    reference (cheap), while closures/lambdas fail here with a readable
    error instead of a cryptic pool crash.  Initializer arguments are
    deliberately not pre-pickled — under the fork start method they are
    inherited, never serialised, and eagerly dumping a large dataset per
    call would double the dispatch cost.
    """
    try:
        pickle.dumps(fn)
    except Exception as exc:
        raise ExecutionError(
            f"process backend requires picklable tasks; cannot pickle "
            f"{fn!r}: {exc}. Use a module-level function and plain-data "
            f"arguments (see repro.exec)."
        ) from exc


def default_workers() -> int:
    """Number of workers to use when none is configured.

    Prefers the scheduler affinity mask (honours container CPU limits)
    over the raw core count.
    """
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return max(1, os.cpu_count() or 1)


def chunk_evenly(items: Sequence[T], num_chunks: int) -> list[list[T]]:
    """Split ``items`` into at most ``num_chunks`` contiguous chunks.

    Chunk sizes differ by at most one and concatenating the chunks
    reproduces ``items`` exactly — chunked execution therefore cannot
    change result ordering.  Empty chunks are never returned.

    >>> chunk_evenly([1, 2, 3, 4, 5], 2)
    [[1, 2, 3], [4, 5]]
    >>> chunk_evenly([], 3)
    []
    """
    if num_chunks < 1:
        raise ValueError("num_chunks must be >= 1")
    items = list(items)
    if not items:
        return []
    num_chunks = min(num_chunks, len(items))
    base, extra = divmod(len(items), num_chunks)
    chunks: list[list[T]] = []
    start = 0
    for index in range(num_chunks):
        size = base + (1 if index < extra else 0)
        chunks.append(items[start : start + size])
        start += size
    return chunks


class ExecutionBackend(ABC):
    """Maps functions over items with deterministic result ordering.

    Parameters
    ----------
    workers:
        Degree of parallelism; ``None`` selects :func:`default_workers`.
        The serial backend ignores it.
    """

    #: Human-readable backend name (also the CLI/config spelling).
    name: str = "backend"

    #: Whether task functions and their arguments cross a process
    #: boundary and therefore must be picklable.  Call sites use this to
    #: select a module-level task spec instead of a closure.
    requires_pickling: bool = False

    def __init__(self, workers: int | None = None) -> None:
        if workers is not None and workers < 1:
            raise ConfigurationError("workers must be >= 1 or None")
        self.workers = workers or default_workers()

    @abstractmethod
    def map_items(
        self,
        fn: Callable[[T], R],
        items: Iterable[T],
        *,
        initializer: Callable[..., None] | None = None,
        initargs: tuple[Any, ...] = (),
        deadline: Deadline | None = None,
    ) -> list[R]:
        """``[fn(item) for item in items]`` — possibly in parallel.

        Results are returned in input order regardless of completion
        order.  ``initializer``/``initargs`` set up per-worker state
        (the process backend runs it once in every worker; the in-process
        backends run it once before mapping, so the same task function
        works everywhere).  ``deadline`` is an optional
        :class:`~repro.resilience.Deadline`; when the budget runs out a
        backend raises :class:`~repro.exceptions.DeadlineExceeded`
        between tasks — never mid-task — so no partial result is ever
        recorded.
        """

    def map_partitions(
        self,
        fn: Callable[[T], R],
        partitions: Sequence[T],
        *,
        initializer: Callable[..., None] | None = None,
        initargs: tuple[Any, ...] = (),
        deadline: Deadline | None = None,
    ) -> list[R]:
        """Apply ``fn`` to whole partitions, one task per partition."""
        if deadline is not None:
            return self.map_items(
                fn,
                partitions,
                initializer=initializer,
                initargs=initargs,
                deadline=deadline,
            )
        return self.map_items(
            fn, partitions, initializer=initializer, initargs=initargs
        )

    def notify_state_change(self, delta: Any = None) -> int:
        """Report that per-worker state mutated since the last dispatch.

        Backends without resident worker state (serial, thread, and the
        per-call process pool) re-read the parent's state on every call,
        so this is a no-op for them.  The long-lived
        :class:`~repro.exec.pool.PoolBackend` overrides it to bump its
        sync epoch (and, when ``delta`` is given, log the mutation for
        replay).  State owners should call it unconditionally after
        every mutation — it is how the backend family keeps the
        bit-identity contract under updates.
        """
        return 0

    def close(self) -> None:
        """Release any pooled workers (idempotent)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(workers={self.workers})"


class SerialBackend(ExecutionBackend):
    """The reference backend: a plain, in-order loop."""

    name = "serial"

    def __init__(self, workers: int | None = None) -> None:
        super().__init__(workers=1 if workers is None else workers)

    def map_items(
        self,
        fn: Callable[[T], R],
        items: Iterable[T],
        *,
        initializer: Callable[..., None] | None = None,
        initargs: tuple[Any, ...] = (),
        deadline: Deadline | None = None,
    ) -> list[R]:
        """A literal ``[fn(item) for item in items]`` — the reference.

        With a ``deadline`` the budget is checked between items, so a
        timed-out serial batch stops at a task boundary.

        >>> SerialBackend().map_items(abs, [-2, 3])
        [2, 3]
        """
        if initializer is not None:
            initializer(*initargs)
        if deadline is None:
            return [fn(item) for item in items]
        results: list[R] = []
        for position, item in enumerate(items):
            deadline.check(f"serial task {position}")
            results.append(fn(item))
        return results


class ThreadBackend(ExecutionBackend):
    """A persistent thread pool (created lazily, reused across calls).

    Right for I/O-bound or lock-releasing tasks and for fan-out whose
    per-task state lives in the parent process (no pickling).  The
    CPU-bound inner loops of this library are GIL-bound under threads —
    use :class:`ProcessBackend` for those.
    """

    name = "thread"

    def __init__(self, workers: int | None = None) -> None:
        super().__init__(workers)
        self._pool: ThreadPoolExecutor | None = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-exec"
            )
        return self._pool

    def map_items(
        self,
        fn: Callable[[T], R],
        items: Iterable[T],
        *,
        initializer: Callable[..., None] | None = None,
        initargs: tuple[Any, ...] = (),
        deadline: Deadline | None = None,
    ) -> list[R]:
        """Map on the (lazily created, reused) thread pool, in order.

        A ``deadline`` is checked before dispatch — once tasks are on
        the pool the batch drains (threads share the parent's state, so
        tasks are typically fast and abandoning futures would leak
        running work).
        """
        if deadline is not None:
            deadline.check("thread dispatch")
        if initializer is not None:
            initializer(*initargs)
        items = list(items)
        if len(items) <= 1:
            return [fn(item) for item in items]
        return list(self._ensure_pool().map(fn, items))

    def close(self) -> None:
        """Shut the thread pool down (idempotent; recreated on next use)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


class ProcessBackend(ExecutionBackend):
    """A process pool created per ``map_items`` call.

    Task functions must be defined at module level and every argument
    and result must be picklable — hand it a *chunked task spec*
    (module-level function + plain-data chunks, per-worker state shipped
    once through ``initializer``/``initargs``), not a closure.

    A fresh pool per call costs fork overhead plus a full state re-ship
    on *every* call, and buys a structural property: workers see the
    parent's state **as of each call** (pinned by regression test), so
    an ``ingest_rating`` between two batches can never be served stale.
    :class:`~repro.exec.pool.PoolBackend` deliberately trades that
    always-fresh-by-construction property for resident workers plus an
    explicit epoch protocol — same freshness, provided every mutation
    is reported through :meth:`ExecutionBackend.notify_state_change`.
    """

    name = "process"
    requires_pickling = True

    def __init__(self, workers: int | None = None) -> None:
        super().__init__(workers)
        methods = multiprocessing.get_all_start_methods()
        # fork is substantially cheaper than spawn and inherits the
        # parent's imports; fall back to the platform default elsewhere.
        self._context = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )

    def map_items(
        self,
        fn: Callable[[T], R],
        items: Iterable[T],
        *,
        initializer: Callable[..., None] | None = None,
        initargs: tuple[Any, ...] = (),
        deadline: Deadline | None = None,
    ) -> list[R]:
        """Map on a fresh process pool; workers see state as of this call.

        A ``deadline`` is checked before the pool is built — forking
        workers for a batch whose budget already ran out wastes a full
        state ship.
        """
        items = list(items)
        if not items:
            return []
        self._check_picklable(fn)
        if deadline is not None:
            deadline.check(f"process dispatch of {len(items)} task item(s)")
        workers = min(self.workers, len(items))
        chunksize = max(1, len(items) // (workers * 4))
        with ProcessPoolExecutor(
            max_workers=workers,
            mp_context=self._context,
            initializer=initializer,
            initargs=initargs,
        ) as pool:
            return list(pool.map(fn, items, chunksize=chunksize))

    _check_picklable = staticmethod(ensure_picklable)


def get_backend(
    name: str | None,
    workers: int | None = None,
    *,
    pool_sync: str = "delta",
    pool_min_workers: int | None = None,
    pool_max_workers: int | None = None,
    pool_idle_ttl: float | None = None,
    pool_target_p99_ms: float | None = None,
    remote_workers: int | None = None,
    remote_heartbeat_interval: float | None = None,
    remote_heartbeat_timeout: float | None = None,
    remote_connect_timeout: float | None = None,
    remote_fingerprint: str | None = None,
    degraded_mode: str = "off",
    metrics: Any = None,
) -> ExecutionBackend:
    """Instantiate a backend by name (``None`` means serial).

    The ``pool_*`` keywords configure the
    :class:`~repro.exec.pool.PoolBackend` (state-sync strategy,
    autoscaling bounds and the p99 latency target), the ``remote_*``
    keywords plus ``degraded_mode`` the
    :class:`~repro.exec.remote.RemoteBackend` (fleet width, heartbeat
    cadence/timeout, the worker-connect deadline, the config
    fingerprint its handshake enforces, and whether total fleet loss
    degrades to serial execution instead of raising), and ``metrics``
    is the :class:`~repro.obs.MetricsRegistry` the stateful backends
    report into; all are ignored by the other backends.

    >>> get_backend("serial").name
    'serial'
    >>> get_backend(None).name
    'serial'
    >>> with get_backend("thread", workers=2) as backend:
    ...     backend.map_items(len, ["ab", "abc"])
    [2, 3]
    """
    if name is None:
        name = "serial"
    if name == "serial":
        return SerialBackend(workers)
    if name == "thread":
        return ThreadBackend(workers)
    if name == "process":
        return ProcessBackend(workers)
    if name == "pool":
        from .pool import PoolBackend

        return PoolBackend(
            workers,
            sync=pool_sync,
            min_workers=pool_min_workers,
            max_workers=pool_max_workers,
            idle_ttl=pool_idle_ttl,
            target_p99_ms=pool_target_p99_ms,
            metrics=metrics,
        )
    if name == "remote":
        from .remote import (
            DEFAULT_CONNECT_TIMEOUT,
            DEFAULT_HEARTBEAT_INTERVAL,
            DEFAULT_HEARTBEAT_TIMEOUT,
            RemoteBackend,
        )

        return RemoteBackend(
            remote_workers or workers,
            sync=pool_sync,
            heartbeat_interval=(
                remote_heartbeat_interval
                if remote_heartbeat_interval is not None
                else DEFAULT_HEARTBEAT_INTERVAL
            ),
            heartbeat_timeout=(
                remote_heartbeat_timeout
                if remote_heartbeat_timeout is not None
                else DEFAULT_HEARTBEAT_TIMEOUT
            ),
            connect_timeout=(
                remote_connect_timeout
                if remote_connect_timeout is not None
                else DEFAULT_CONNECT_TIMEOUT
            ),
            fingerprint=remote_fingerprint,
            degraded_mode=degraded_mode,
            metrics=metrics,
        )
    raise ConfigurationError(
        f"unknown execution backend {name!r}; expected one of {BACKEND_NAMES}"
    )


def resolve_backend(
    backend: "ExecutionBackend | str | None",
    workers: int | None = None,
    *,
    pool_sync: str = "delta",
    pool_min_workers: int | None = None,
    pool_max_workers: int | None = None,
    pool_idle_ttl: float | None = None,
    pool_target_p99_ms: float | None = None,
    remote_workers: int | None = None,
    remote_heartbeat_interval: float | None = None,
    remote_heartbeat_timeout: float | None = None,
    remote_connect_timeout: float | None = None,
    remote_fingerprint: str | None = None,
    degraded_mode: str = "off",
    metrics: Any = None,
) -> ExecutionBackend:
    """Coerce a backend spec (instance, name or ``None``) to an instance.

    ``None`` resolves to the serial backend, keeping every refactored
    call site backward compatible by default.

    >>> resolve_backend(None).name
    'serial'
    >>> backend = SerialBackend()
    >>> resolve_backend(backend) is backend
    True
    """
    if backend is None:
        return SerialBackend()
    if isinstance(backend, ExecutionBackend):
        return backend
    return get_backend(
        backend,
        workers,
        pool_sync=pool_sync,
        pool_min_workers=pool_min_workers,
        pool_max_workers=pool_max_workers,
        pool_idle_ttl=pool_idle_ttl,
        pool_target_p99_ms=pool_target_p99_ms,
        remote_workers=remote_workers,
        remote_heartbeat_interval=remote_heartbeat_interval,
        remote_heartbeat_timeout=remote_heartbeat_timeout,
        remote_connect_timeout=remote_connect_timeout,
        remote_fingerprint=remote_fingerprint,
        degraded_mode=degraded_mode,
        metrics=metrics,
    )


@contextmanager
def backend_scope(
    backend: "ExecutionBackend | str | None", workers: int | None = None
) -> "Iterator[ExecutionBackend]":
    """Resolve a backend spec, closing it on exit if this scope made it.

    A caller-provided instance is passed through untouched (its owner
    closes it); a name or ``None`` is instantiated here and its pooled
    workers are released when the block ends — per-call fan-out sites
    use this so a ``backend="thread"`` sweep cannot leak idle threads.
    """
    owned = not isinstance(backend, ExecutionBackend)
    resolved = resolve_backend(backend, workers)
    try:
        yield resolved
    finally:
        if owned:
            resolved.close()
