"""The pool's inbox protocol over TCP: a multi-host execution backend.

:class:`RemoteBackend` is :class:`~repro.exec.pool.PoolBackend` with the
``mp.Queue`` transport swapped for sockets — the swap the pool's
message-shaped sync protocol was designed for.  Workers are separate
processes (same host or not) that connect to the parent's listener and
speak length-prefixed frames (:mod:`repro.exec.wire`):

* the **handshake** (``HELLO``/``WELCOME``) carries the config
  fingerprint; a worker built for different recommendation semantics is
  rejected with a typed ``FAULT`` before it can ever receive a task;
* a **``BOOT``** frame ships ``initializer``/``initargs`` and rebuilds
  the worker's resident state in place — the remote analogue of a pool
  restart, without killing the process (with a packed spill configured
  the initargs carry ``None`` sentinels and the worker bootstraps from
  the spill directory, exactly like pool workers);
* **``SYNC``** broadcasts the per-epoch delta packet, one frame per
  worker; TCP's in-order delivery gives the same FIFO guarantee the
  pool's inboxes did, so a ``TASK`` written after a ``SYNC`` can only
  be served by a worker that already applied it — the parent still
  clears its log at broadcast time, with no acknowledgements;
* **task chunks are placed by consistent hashing** (:class:`HashRing`)
  over the worker set — ``map_partitions`` keys by partition (so index
  shards stick to workers across batches) and ``map_items`` by chunk;
* workers send **``HEARTBEAT``** beacons; a worker that goes silent
  past ``heartbeat_timeout`` (or whose socket dies, or that tears a
  frame mid-write) is declared dead and its unanswered task items are
  **requeued onto the surviving workers** — re-placed by the ring, so
  the batch completes bit-identical as long as one worker survives.

By default the backend spawns ``workers`` loopback worker processes
that connect back over ``127.0.0.1`` — the full codec, real sockets and
real partial-failure paths, runnable in CI.  External workers started
with ``repro worker --connect HOST:PORT`` join the same fleet.
"""

from __future__ import annotations

import bisect
import hashlib
import multiprocessing
import pickle
import selectors
import socket
import threading
import time
import traceback
from typing import Any, Callable, Iterable, Sequence, TypeVar

from ..exceptions import ConfigurationError, ExecutionError
from ..obs import MetricsRegistry, get_registry
from ..resilience import CircuitBreaker, Deadline, FaultInjector, RetryPolicy
from .backends import ExecutionBackend, chunk_evenly, ensure_picklable
from .pool import DEFAULT_MAX_DELTA_LOG, POOL_SYNC_MODES, join_with_escalation
from .wire import (
    DEFAULT_MAX_FRAME_BYTES,
    Boot,
    Fault,
    FrameConnection,
    Heartbeat,
    Hello,
    PeerDisconnected,
    Stop,
    Sync,
    Task,
    TaskResult,
    TruncatedFrameError,
    Welcome,
    WireError,
)

T = TypeVar("T")
R = TypeVar("R")

#: Default seconds between a worker's heartbeat beacons.
DEFAULT_HEARTBEAT_INTERVAL = 2.0

#: Default seconds of silence after which the parent declares a worker
#: dead mid-batch and requeues its in-flight tasks.
DEFAULT_HEARTBEAT_TIMEOUT = 10.0

#: Default seconds the parent waits for spawned workers to connect back
#: (and a spawn-less backend waits for any external worker) before
#: failing the dispatch loudly.  Overridable per backend via the
#: ``connect_timeout`` parameter / ``remote_connect_timeout`` config knob.
DEFAULT_CONNECT_TIMEOUT = 30.0

#: Degraded-mode policies for total fleet loss: ``"off"`` raises
#: :class:`FleetLossError`, ``"serial"`` falls back to bit-identical
#: in-process serial execution.
DEGRADED_MODES: tuple[str, ...] = ("off", "serial")

#: Rejoin policy the spawned loopback workers use: a worker whose
#: connection dies reconnects through the normal handshake with
#: exponential backoff instead of exiting.
LOOPBACK_REJOIN = RetryPolicy(
    max_attempts=5, base_delay=0.05, multiplier=2.0, max_delay=1.0
)

#: Seconds each side of the handshake waits for the other's frame.
_HANDSHAKE_TIMEOUT_SECONDS = 30.0

#: Seconds between liveness re-checks while waiting for results.
_RESULT_POLL_SECONDS = 0.1

#: Seconds a stopping loopback worker process gets per escalation step
#: (join after STOP, join after terminate, join after kill).
_JOIN_TIMEOUT_SECONDS = 5.0

#: Task chunks dispatched per worker per ``map_items`` batch.
_CHUNKS_PER_WORKER = 4


class FleetLossError(ExecutionError):
    """The entire remote fleet is gone and the batch cannot complete.

    Raised when no worker connects within the connect timeout, when the
    last worker dies mid-batch with task items still unanswered, or when
    fleet preparation ends with zero live workers.  The degraded-mode
    fallback (``degraded_mode="serial"``) catches exactly this type —
    single-worker failures with survivors requeue instead and are never
    degraded.
    """


class HashRing:
    """Consistent hashing over a mutable set of node names.

    Each node is mapped to ``replicas`` pseudo-random points on a ring
    (MD5 of ``"node#i"`` — stable across processes and Python hash
    seeds); a key is owned by the first node point at or after the
    key's own point.  Removing a node re-homes only that node's keys —
    which is exactly the requeue story: when a worker dies, its chunks
    move to their next ring owner while every other placement is
    untouched.

    >>> ring = HashRing()
    >>> ring.add("w0"); ring.add("w1")
    >>> owner = ring.lookup("chunk-3")
    >>> owner in ("w0", "w1")
    True
    """

    def __init__(self, replicas: int = 64) -> None:
        if replicas < 1:
            raise ConfigurationError("replicas must be >= 1")
        self._replicas = replicas
        self._points: list[int] = []
        self._owners: dict[int, str] = {}
        self._nodes: set[str] = set()

    @staticmethod
    def _hash(data: str) -> int:
        return int.from_bytes(
            hashlib.md5(data.encode("utf-8")).digest()[:8], "big"
        )

    @property
    def nodes(self) -> frozenset[str]:
        """The current node names."""
        return frozenset(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def add(self, node: str) -> None:
        """Add ``node`` (idempotent)."""
        if node in self._nodes:
            return
        self._nodes.add(node)
        for replica in range(self._replicas):
            point = self._hash(f"{node}#{replica}")
            # Ties between distinct nodes are astronomically unlikely
            # (64-bit points); first-added keeps the point.
            if point not in self._owners:
                bisect.insort(self._points, point)
                self._owners[point] = node

    def remove(self, node: str) -> None:
        """Remove ``node`` (idempotent); its keys re-home to successors."""
        if node not in self._nodes:
            return
        self._nodes.discard(node)
        self._points = [
            point for point in self._points if self._owners[point] != node
        ]
        self._owners = {
            point: owner
            for point, owner in self._owners.items()
            if owner != node
        }

    def lookup(self, key: str) -> str | None:
        """The node owning ``key``, or ``None`` on an empty ring."""
        if not self._points:
            return None
        point = self._hash(key)
        index = bisect.bisect_left(self._points, point)
        if index == len(self._points):
            index = 0
        return self._owners[self._points[index]]


# -- worker side -------------------------------------------------------------
#
# Mirrors the pool's worker-side resident state: one copy per process,
# advanced by SYNC frames, rebuilt in place by BOOT frames.

_EPOCH: int = -1
_APPLIER: Callable[[Any], None] | None = None


def _drain_worker_delta(worker_id: int) -> Any:
    """This worker's metrics increments since the last drain (or None)."""
    delta = get_registry().drain_delta()
    if delta is None:
        return None
    return (worker_id, delta)


def _apply_remote_sync(packet: Sync) -> None:
    """Replay the unseen suffix of one broadcast delta packet.

    Identical semantics (and metric names: ``worker_sync_ms`` /
    ``worker_syncs`` / ``worker_deltas_applied``) to the pool's
    worker-side sync replay — parity tests compare the two transports'
    results directly.
    """
    global _EPOCH
    started = time.perf_counter()
    applied = 0
    for delta_epoch, delta in packet.entries:
        if delta_epoch > _EPOCH:
            if _APPLIER is None:
                raise ExecutionError(
                    "remote worker received a SYNC frame but no delta "
                    "applier is bound; the parent should have sent a BOOT "
                    "instead of broadcasting"
                )
            _APPLIER(delta)
            applied += 1
    _EPOCH = max(_EPOCH, packet.epoch)
    registry = get_registry()
    registry.observe(
        "worker_sync_ms", (time.perf_counter() - started) * 1000.0
    )
    registry.inc("worker_syncs")
    if applied:
        registry.inc("worker_deltas_applied", applied)


def _apply_boot(boot: Boot) -> None:
    """(Re)build this process's resident state from a BOOT frame."""
    global _EPOCH, _APPLIER
    if boot.initializer is not None:
        boot.initializer(*boot.initargs)
    _EPOCH = boot.epoch
    _APPLIER = boot.applier
    # Baseline the registry: anything the initializer recorded while
    # rebuilding (journal replay, repacks) must not ship back as this
    # worker's task-time activity.
    get_registry().drain_delta()


def _execute_task(conn: FrameConnection, worker_id: int, task: Task) -> int:
    """Run one task chunk, streaming per-item RESULT frames back.

    Same per-item semantics as the pool's worker loop: an epoch-ahead
    task is a protocol violation answered with typed errors, a task
    exception becomes an error result carrying the pickled original,
    and the last result of the chunk piggybacks the drained worker
    metrics delta.  Returns the number of items served.
    """
    if task.epoch > _EPOCH:
        violation = ExecutionError(
            f"remote sync protocol violation: task epoch {task.epoch} is "
            f"ahead of resident epoch {_EPOCH} with no SYNC frame on the "
            f"stream"
        )
        for position, (index, _item) in enumerate(task.pairs):
            delta = (
                _drain_worker_delta(worker_id)
                if position == len(task.pairs) - 1
                else None
            )
            conn.send(
                TaskResult(
                    task.chunk_id,
                    index,
                    False,
                    exc_bytes=pickle.dumps(violation),
                    summary=repr(violation),
                    traceback="",
                    delta=delta,
                )
            )
        return len(task.pairs)
    for position, (index, item) in enumerate(task.pairs):
        last = position == len(task.pairs) - 1
        delta: Any = None
        try:
            value = task.fn(item)
            if last:
                delta = _drain_worker_delta(worker_id)
            try:
                conn.send(
                    TaskResult(task.chunk_id, index, True, value, delta=delta)
                )
                continue
            except PeerDisconnected:
                # The connection itself died (or a scripted tear fired):
                # not a payload problem — propagate to the session loop.
                raise
            except WireError as exc:
                # Encoding failed before any bytes hit the wire: report
                # the unpicklable result as a typed task error instead.
                raise ExecutionError(
                    f"remote task result for index {index} is not "
                    f"picklable: {exc}"
                ) from exc
        except KeyboardInterrupt:  # pragma: no cover - interactive
            raise
        except BaseException as exc:
            if last and delta is None:
                delta = _drain_worker_delta(worker_id)
            try:
                exc_bytes: bytes | None = pickle.dumps(exc)
            except Exception:
                exc_bytes = None
            conn.send(
                TaskResult(
                    task.chunk_id,
                    index,
                    False,
                    exc_bytes=exc_bytes,
                    summary=repr(exc),
                    traceback=traceback.format_exc(),
                    delta=delta,
                )
            )
    return len(task.pairs)


class _ScriptedDeath(Exception):
    """Control-flow signal: a plan's ``die_after_tasks`` trigger fired."""


def _serve_session(
    host: str,
    port: int,
    *,
    fingerprint: str | None,
    heartbeat_interval: float,
    max_frame_bytes: int,
    handshake_timeout: float,
    injector: FaultInjector | None,
    progress: list[int],
) -> bool:
    """One connect/handshake/serve cycle; ``True`` on a clean STOP.

    ``progress[0]`` accumulates served task items as they complete, so
    the caller still knows the count when the session dies mid-stream.
    Returns ``False`` when the parent closes the stream without a STOP
    frame — the rejoin-eligible outcome; connection faults raise.
    """
    if injector is not None:
        injector.session_started()
    sock = socket.create_connection((host, port), timeout=handshake_timeout)
    sock.settimeout(None)
    conn = FrameConnection(sock, max_frame_bytes, injector=injector)
    stop_beacon = threading.Event()
    try:
        conn.send(Hello(fingerprint=fingerprint))
        reply = conn.recv(timeout=handshake_timeout)
        if isinstance(reply, Fault):
            raise WireError(
                f"parent at {host}:{port} rejected this worker: "
                f"{reply.message}"
            )
        if not isinstance(reply, Welcome):
            raise WireError(
                f"expected WELCOME from {host}:{port}, got "
                f"{type(reply).__name__ if reply is not None else 'EOF'}"
            )
        if (
            fingerprint is not None
            and reply.fingerprint is not None
            and reply.fingerprint != fingerprint
        ):
            raise WireError(
                f"config fingerprint mismatch: this worker expects "
                f"{fingerprint}, parent at {host}:{port} serves "
                f"{reply.fingerprint}"
            )
        worker_id = reply.worker_id

        def _beat() -> None:
            period = heartbeat_interval
            if injector is not None:
                period += injector.heartbeat_delay()
            while not stop_beacon.wait(period):
                try:
                    conn.send(Heartbeat(epoch=_EPOCH))
                except (WireError, OSError):  # parent gone; main loop exits
                    return

        beacon = threading.Thread(
            target=_beat, name=f"repro-remote-beat-{worker_id}", daemon=True
        )
        beacon.start()
        while True:
            message = conn.recv()
            if message is None:
                return False
            if isinstance(message, Stop):
                return True
            if isinstance(message, Boot):
                _apply_boot(message)
            elif isinstance(message, Sync):
                _apply_remote_sync(message)
            elif isinstance(message, Task):
                served = _execute_task(conn, worker_id, message)
                progress[0] += served
                if injector is not None:
                    injector.note_served(served)
                    if injector.should_die():
                        raise _ScriptedDeath()
            elif isinstance(message, Fault):
                raise WireError(
                    f"parent faulted this worker: {message.message}"
                )
            else:  # pragma: no cover - guards future frame types
                raise WireError(
                    f"unexpected {type(message).__name__} frame in the "
                    f"worker message loop"
                )
    finally:
        stop_beacon.set()
        conn.close()


def run_worker(
    host: str,
    port: int,
    *,
    fingerprint: str | None = None,
    heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    handshake_timeout: float = _HANDSHAKE_TIMEOUT_SECONDS,
    rejoin: RetryPolicy | None = None,
    fault_injector: FaultInjector | None = None,
) -> int:
    """Connect to a :class:`RemoteBackend` parent and serve until stopped.

    The ``repro worker --connect HOST:PORT`` entry point.  Performs the
    fingerprint handshake, then serves BOOT/SYNC/TASK frames in stream
    order until a STOP frame or the parent closes the connection.  A
    background thread sends a HEARTBEAT every ``heartbeat_interval``
    seconds.  Returns the number of task items served; raises
    :class:`~repro.exec.wire.WireError` when the parent rejects the
    handshake (e.g. a config-fingerprint mismatch).

    With a ``rejoin`` policy, a dropped connection (parent closed the
    stream without STOP, socket error, torn frame) is transient: the
    worker backs off per the policy and reconnects through the normal
    handshake, getting a fresh worker id and a full BOOT at the
    parent's current epoch.  A session that served at least one task
    item resets the attempt budget — only *consecutive* dead sessions
    exhaust it.  Fingerprint rejection stays permanent.

    ``fault_injector`` wires a scripted :class:`~repro.resilience.FaultPlan`
    into the send path and the serve loop (chaos tests only): dropped or
    torn RESULT frames, delayed heartbeats, and a one-shot scripted
    death after N served items — rejoined afterwards only when the plan
    sets ``rejoin_after_death``.
    """
    if heartbeat_interval <= 0:
        raise ConfigurationError("heartbeat_interval must be positive")
    total = 0
    attempt = 0
    while True:
        attempt += 1
        progress = [0]
        rejoinable = rejoin is not None and attempt < rejoin.max_attempts
        try:
            stopped = _serve_session(
                host,
                port,
                fingerprint=fingerprint,
                heartbeat_interval=heartbeat_interval,
                max_frame_bytes=max_frame_bytes,
                handshake_timeout=handshake_timeout,
                injector=fault_injector,
                progress=progress,
            )
        except _ScriptedDeath:
            total += progress[0]
            if not (
                rejoinable
                and fault_injector is not None
                and fault_injector.plan.rejoin_after_death
            ):
                return total
        except (PeerDisconnected, TruncatedFrameError, OSError):
            total += progress[0]
            if not rejoinable:
                raise
        else:
            total += progress[0]
            if stopped or not rejoinable:
                return total
        if progress[0] > 0:
            attempt = 1  # a productive session refreshes the rejoin budget
        assert rejoin is not None
        time.sleep(rejoin.delay(attempt))


def _loopback_worker_main(
    host: str,
    port: int,
    heartbeat_interval: float,
    max_frame_bytes: int,
) -> None:
    """Process target of the backend's self-spawned loopback workers."""
    try:
        run_worker(
            host,
            port,
            fingerprint=None,
            heartbeat_interval=heartbeat_interval,
            max_frame_bytes=max_frame_bytes,
            rejoin=LOOPBACK_REJOIN,
        )
    except (OSError, PeerDisconnected, TruncatedFrameError):
        # Rejoin budget exhausted and the parent is gone for good:
        # exit quietly instead of spraying a traceback into CI logs.
        pass


# -- parent side -------------------------------------------------------------


class _Chunk:
    """One in-flight task chunk: its ring key and unanswered pairs."""

    __slots__ = ("key", "pairs", "epoch")

    def __init__(
        self, key: str, pairs: Iterable[tuple[int, Any]], epoch: int
    ) -> None:
        self.key = key
        self.pairs: dict[int, Any] = dict(pairs)
        self.epoch = epoch


class _RemoteWorker:
    """Parent-side handle of one connected worker."""

    __slots__ = (
        "worker_id", "conn", "host", "last_seen", "chunks", "counted_rx"
    )

    def __init__(
        self, worker_id: int, conn: FrameConnection, host: str = "?"
    ) -> None:
        self.worker_id = worker_id
        self.conn = conn
        #: Peer address string — the circuit breaker's accounting key, so
        #: fault history survives the fresh worker_id a rejoin gets.
        self.host = host
        self.last_seen = 0.0
        #: chunk_id -> :class:`_Chunk` with result-pending pairs.
        self.chunks: dict[int, _Chunk] = {}
        self.counted_rx = 0

    @property
    def node(self) -> str:
        """This worker's ring node name."""
        return f"worker-{self.worker_id}"


class RemoteBackend(ExecutionBackend):
    """TCP-transported pool backend with heartbeats and dead-peer requeue.

    Parameters
    ----------
    workers:
        Fleet width: how many loopback worker processes the backend
        spawns (``spawn_workers=True``).  External ``repro worker``
        processes join on top of (or, with ``spawn_workers=False``,
        instead of) the spawned fleet.
    sync / max_delta_log:
        Exactly the pool's knobs: ``"delta"`` broadcasts per-epoch
        mutation packets (one SYNC frame per worker), ``"full"`` (or an
        overgrown log) re-sends BOOT frames instead.
    host / port:
        Listener bind address; port ``0`` (default) picks a free port —
        read it back from :attr:`address`.
    spawn_workers:
        Spawn ``workers`` loopback processes on first dispatch (and
        respawn after total fleet loss).  ``False`` serves only
        externally connected workers.
    heartbeat_interval / heartbeat_timeout:
        Beacon period passed to spawned workers, and the silence
        window after which the parent declares any worker dead
        mid-batch.  The timeout must exceed the interval.
    connect_timeout:
        Seconds the parent waits for workers to connect before a
        dispatch fails with :class:`FleetLossError`.
    degraded_mode:
        Total-fleet-loss policy: ``"off"`` (default) raises
        :class:`FleetLossError`; ``"serial"`` re-runs the lost batch
        in-process on the parent's own state — bit-identical results,
        no parallelism, counted as ``remote_degraded_dispatches``.
    breaker_threshold / breaker_cooldown:
        Per-host circuit breaker: after ``breaker_threshold``
        consecutive faults from one peer host, its reconnecting
        workers are deferred for ``breaker_cooldown`` seconds (default
        the heartbeat interval), then one probe is re-admitted.
        ``breaker_threshold=0`` disables the breaker.  The breaker
        never empties the fleet — with no admissible worker left,
        open-circuit hosts are probed anyway.
    fingerprint:
        This parent's config fingerprint, offered in WELCOME frames and
        checked against each HELLO: a worker expecting a different
        fingerprint is rejected with a FAULT before it can serve tasks.
    max_frame_bytes:
        Per-frame payload ceiling on every connection.
    metrics:
        Registry for the backend's counters (``remote_*``) and merged
        worker deltas.
    """

    name = "remote"
    requires_pickling = True

    def __init__(
        self,
        workers: int | None = None,
        sync: str = "delta",
        max_delta_log: int = DEFAULT_MAX_DELTA_LOG,
        host: str = "127.0.0.1",
        port: int = 0,
        spawn_workers: bool = True,
        heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
        heartbeat_timeout: float = DEFAULT_HEARTBEAT_TIMEOUT,
        connect_timeout: float = DEFAULT_CONNECT_TIMEOUT,
        degraded_mode: str = "off",
        breaker_threshold: int = 3,
        breaker_cooldown: float | None = None,
        fingerprint: str | None = None,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        metrics: MetricsRegistry | None = None,
        clock: Callable[[], float] | None = None,
    ) -> None:
        super().__init__(workers)
        if sync not in POOL_SYNC_MODES:
            raise ConfigurationError(
                f"unknown remote sync mode {sync!r}; "
                f"expected one of {POOL_SYNC_MODES}"
            )
        if max_delta_log < 0:
            raise ConfigurationError("max_delta_log must be >= 0")
        if heartbeat_interval <= 0:
            raise ConfigurationError("heartbeat_interval must be positive")
        if heartbeat_timeout <= heartbeat_interval:
            raise ConfigurationError(
                f"heartbeat_timeout ({heartbeat_timeout}) must exceed "
                f"heartbeat_interval ({heartbeat_interval}); a timeout "
                f"inside one beacon period declares healthy workers dead"
            )
        if connect_timeout <= 0:
            raise ConfigurationError("connect_timeout must be positive")
        if degraded_mode not in DEGRADED_MODES:
            raise ConfigurationError(
                f"unknown degraded_mode {degraded_mode!r}; "
                f"expected one of {DEGRADED_MODES}"
            )
        self.sync = sync
        self.max_delta_log = max_delta_log
        self.host = host
        self.port = port
        self.spawn_workers = spawn_workers
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.connect_timeout = connect_timeout
        self.degraded_mode = degraded_mode
        self.fingerprint = fingerprint
        self.max_frame_bytes = max_frame_bytes
        self._clock = clock or time.monotonic
        self._breaker = CircuitBreaker(
            threshold=breaker_threshold,
            cooldown=(
                breaker_cooldown
                if breaker_cooldown is not None
                else heartbeat_interval
            ),
            clock=self._clock,
        )
        #: Peer hosts that have ever faulted — a reconnect from one of
        #: these is a rejoin, not a first join.
        self._faulted_hosts: set[str] = set()
        # Degraded-mode cache: which (initializer, initargs, epoch) the
        # parent process last ran in-line, so serial fallbacks only
        # rebuild parent-resident state when it is actually stale.
        self._degraded_init: Callable[..., None] | None = None
        self._degraded_initargs: tuple[Any, ...] = ()
        self._degraded_epoch = -1
        self._chunk_seq = 0
        methods = multiprocessing.get_all_start_methods()
        self._context = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )
        # _lock guards protocol state (shared with the accept thread;
        # _cond signals new pending workers); _dispatch_lock serialises
        # whole batches, exactly as in the pool.
        self._lock = threading.RLock()
        self._cond = threading.Condition(self._lock)
        self._dispatch_lock = threading.Lock()
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._closing = False
        self._pending: list[_RemoteWorker] = []
        self._workers: list[_RemoteWorker] = []
        self._ring = HashRing()
        self._spawned: list[Any] = []
        self._next_worker_id = 0
        self._bound_init: Callable[..., None] | None = None
        self._bound_initargs: tuple[Any, ...] = ()
        self._applier: Callable[[Any], None] | None = None
        self._applier_init: Callable[..., None] | None = None
        self._fleet_applier: Callable[[Any], None] | None = None
        self._epoch = 0
        self._fleet_epoch = -1
        self._deltas: list[tuple[int, Any]] = []
        self._log_complete = True
        self._booted = False
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._boots = self.metrics.counter("remote_boots")
        self._delta_syncs = self.metrics.counter("remote_delta_syncs")
        self._sync_messages = self.metrics.counter("remote_sync_messages")
        self._sync_bytes = self.metrics.counter("remote_sync_bytes")
        self._frames_sent = self.metrics.counter("remote_frames_sent")
        self._frames_received = self.metrics.counter("remote_frames_received")
        self._bytes_sent = self.metrics.counter("remote_bytes_sent")
        self._bytes_received = self.metrics.counter("remote_bytes_received")
        self._heartbeats = self.metrics.counter("remote_heartbeats")
        self._requeues = self.metrics.counter("remote_requeues")
        self._dead_workers = self.metrics.counter("remote_dead_workers")
        self._torn_frames = self.metrics.counter("remote_torn_frames")
        self._handshake_rejects = self.metrics.counter(
            "remote_handshake_rejects"
        )
        self._spawns = self.metrics.counter("remote_spawns")
        self._degraded_dispatches = self.metrics.counter(
            "remote_degraded_dispatches"
        )
        self._rejoins = self.metrics.counter("remote_rejoins")
        self._breaker_deferrals = self.metrics.counter(
            "remote_breaker_deferrals"
        )
        self._deadline_aborts = self.metrics.counter("remote_deadline_aborts")
        self._stale_results = self.metrics.counter("remote_stale_results")

    # -- listener / handshake ------------------------------------------------

    def listen(self) -> tuple[str, int]:
        """Start the listener (idempotent); returns ``(host, port)``.

        The CLI's ``serve --listen`` front end calls this before
        printing the address external ``repro worker`` processes should
        connect to; dispatches start it lazily otherwise.
        """
        with self._lock:
            self._ensure_listener()
            assert self._listener is not None
            return self._listener.getsockname()[:2]

    @property
    def address(self) -> tuple[str, int] | None:
        """``(host, port)`` of the live listener, or ``None``."""
        with self._lock:
            if self._listener is None:
                return None
            return self._listener.getsockname()[:2]

    def _ensure_listener(self) -> None:
        """Bind the listener and start the accept thread (under _lock)."""
        if self._listener is not None:
            return
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(128)
        self._listener = listener
        self._closing = False
        self._accept_thread = threading.Thread(
            target=self._accept_loop,
            args=(listener,),
            name="repro-remote-accept",
            daemon=True,
        )
        self._accept_thread.start()

    def _accept_loop(self, listener: socket.socket) -> None:
        """Admit connecting workers: handshake, then park them as pending."""
        while True:
            try:
                sock, _addr = listener.accept()
            except OSError:  # listener closed: shutdown
                return
            try:
                self._handshake(sock)
            except Exception:  # never let one bad client kill admission
                try:
                    sock.close()
                except OSError:
                    pass

    def _handshake(self, sock: socket.socket) -> None:
        """Validate one connecting worker's HELLO and park it as pending."""
        conn = FrameConnection(sock, self.max_frame_bytes)
        try:
            hello = conn.recv(timeout=_HANDSHAKE_TIMEOUT_SECONDS)
        except (WireError, TimeoutError, OSError):
            self._handshake_rejects.inc()
            conn.close()
            return
        if not isinstance(hello, Hello):
            self._handshake_rejects.inc()
            conn.close()
            return
        if (
            self.fingerprint is not None
            and hello.fingerprint is not None
            and hello.fingerprint != self.fingerprint
        ):
            self._handshake_rejects.inc()
            try:
                conn.send(
                    Fault(
                        f"config fingerprint mismatch: worker expects "
                        f"{hello.fingerprint}, this parent serves "
                        f"{self.fingerprint}",
                        details={
                            "expected": hello.fingerprint,
                            "serving": self.fingerprint,
                        },
                    )
                )
            except (WireError, OSError):
                pass
            conn.close()
            return
        with self._lock:
            worker_id = self._next_worker_id
            self._next_worker_id += 1
        try:
            sent = conn.send(
                Welcome(worker_id=worker_id, fingerprint=self.fingerprint)
            )
        except (WireError, OSError):
            conn.close()
            return
        self._frames_sent.inc()
        self._bytes_sent.inc(sent)
        # The breaker keys on the bare peer host (ephemeral source
        # ports change every reconnect, worker ids are never reused).
        peer_host = conn.peer.rsplit(":", 1)[0]
        worker = _RemoteWorker(worker_id, conn, host=peer_host)
        worker.last_seen = self._clock()
        with self._cond:
            if peer_host in self._faulted_hosts:
                self._rejoins.inc()
            self._pending.append(worker)
            self._cond.notify_all()

    # -- state registration (pool-identical semantics) -----------------------

    def bind_delta_applier(
        self,
        applier: Callable[[Any], None],
        initializer: Callable[..., None],
    ) -> None:
        """Register the worker-side mutation applier for delta sync."""
        with self._lock:
            self._applier = applier
            self._applier_init = initializer

    def notify_state_change(self, delta: Any = None) -> int:
        """Record one mutation of the state behind the remote workers."""
        with self._lock:
            self._epoch += 1
            if delta is not None and self.sync == "delta":
                self._deltas.append((self._epoch, delta))
            else:
                self._deltas.clear()
                self._log_complete = False
            return self._epoch

    # -- introspection -------------------------------------------------------

    @property
    def epoch(self) -> int:
        """The parent-side state epoch (mutations seen so far)."""
        with self._lock:
            return self._epoch

    @property
    def resident_epoch(self) -> int:
        """Epoch every connected worker is guaranteed to have reached."""
        with self._lock:
            return self._fleet_epoch

    @property
    def pending_deltas(self) -> int:
        """Logged mutations not yet broadcast to the fleet."""
        with self._lock:
            return len(self._deltas)

    @property
    def live_workers(self) -> int:
        """Connected, booted workers currently serving tasks."""
        with self._lock:
            return len(self._workers)

    def remote_stats(self) -> dict[str, Any]:
        """Operational counters for service/CLI statistics output.

        The remote analogue of the pool's ``pool_stats()``: sync mode
        and epochs, BOOT re-ships and SYNC broadcasts with their
        control-plane volume, total frame/byte traffic both ways,
        heartbeats seen, and the fault-path counters (dead workers,
        requeued task items, torn frames, handshake rejects).
        """
        with self._lock:
            address = (
                self._listener.getsockname()[:2] if self._listener else None
            )
            return {
                "sync": self.sync,
                "epoch": self._epoch,
                "resident_epoch": self._fleet_epoch,
                "address": list(address) if address else None,
                "live_workers": len(self._workers),
                "pending_workers": len(self._pending),
                "spawned_workers": len(self._spawned),
                "pending_deltas": len(self._deltas),
                "boots": int(self._boots.value),
                "delta_syncs": int(self._delta_syncs.value),
                "sync_messages": int(self._sync_messages.value),
                "sync_bytes": int(self._sync_bytes.value),
                "frames_sent": int(self._frames_sent.value),
                "frames_received": int(self._frames_received.value),
                "bytes_sent": int(self._bytes_sent.value),
                "bytes_received": int(self._bytes_received.value),
                "heartbeats": int(self._heartbeats.value),
                "requeues": int(self._requeues.value),
                "dead_workers": int(self._dead_workers.value),
                "torn_frames": int(self._torn_frames.value),
                "handshake_rejects": int(self._handshake_rejects.value),
                "degraded_dispatches": int(self._degraded_dispatches.value),
                "rejoins": int(self._rejoins.value),
                "breaker_deferrals": int(self._breaker_deferrals.value),
                "deadline_aborts": int(self._deadline_aborts.value),
                "stale_results": int(self._stale_results.value),
                "heartbeat_interval": self.heartbeat_interval,
                "heartbeat_timeout": self.heartbeat_timeout,
                "connect_timeout": self.connect_timeout,
                "degraded_mode": self.degraded_mode,
            }

    # -- fleet management ----------------------------------------------------

    def _spawn_loopback(self, count: int) -> None:
        """Fork ``count`` loopback worker processes (under _lock)."""
        assert self._listener is not None
        host, port = self._listener.getsockname()[:2]
        for _ in range(count):
            process = self._context.Process(
                target=_loopback_worker_main,
                args=(
                    host,
                    port,
                    self.heartbeat_interval,
                    self.max_frame_bytes,
                ),
                daemon=True,
            )
            process.start()
            self._spawned.append(process)
            self._spawns.inc()

    def _ensure_fleet(self) -> None:
        """Spawn/await workers until the fleet is usable (under _lock).

        With ``spawn_workers`` the backend tops the fleet up to
        ``workers`` loopback processes and waits for every spawn to
        connect (local connects are fast; waiting removes the
        spawn-count race).  Without it, it waits for at least one
        external worker.  Raises :class:`ExecutionError` when the
        deadline passes with an empty fleet.
        """
        deadline = self._clock() + self.connect_timeout
        if self.spawn_workers:
            self._spawned = [p for p in self._spawned if p.is_alive()]
            connected = len(self._workers) + len(self._pending)
            deficit = self.workers - connected
            if deficit > 0:
                self._spawn_loopback(deficit)
                target = min(self.workers, connected + deficit)
                while len(self._workers) + len(self._pending) < target:
                    remaining = deadline - self._clock()
                    if remaining <= 0 or not any(
                        p.is_alive() for p in self._spawned
                    ):
                        break
                    self._cond.wait(timeout=min(remaining, 0.05))
        while not self._workers and not self._pending:
            remaining = deadline - self._clock()
            if remaining <= 0:
                raise FleetLossError(
                    f"no remote workers connected within "
                    f"{self.connect_timeout:.0f}s (listener "
                    f"{self.address}); start workers with "
                    f"'repro worker --connect HOST:PORT' or enable "
                    f"spawn_workers"
                )
            self._cond.wait(timeout=min(remaining, 0.25))

    def _send_tracked(self, worker: _RemoteWorker, message: Any) -> None:
        """Send one frame to ``worker``, counting traffic; raises on failure."""
        sent = worker.conn.send(message)
        self._frames_sent.inc()
        self._bytes_sent.inc(sent)

    def _boot_message(self) -> Boot:
        return Boot(
            initializer=self._bound_init,
            initargs=self._bound_initargs,
            epoch=self._epoch,
            applier=self._fleet_applier,
            sync=self.sync,
        )

    def _boot_pending(self, worker: _RemoteWorker) -> None:
        """Boot one parked worker into the live fleet (under _lock)."""
        try:
            self._send_tracked(worker, self._boot_message())
        except (WireError, OSError):
            worker.conn.close()
            return
        self._boots.inc()
        worker.last_seen = self._clock()
        self._workers.append(worker)
        self._ring.add(worker.node)

    def _admit_pending(self) -> None:
        """Boot parked pending workers into the live fleet (under _lock).

        A worker from a host whose circuit is open stays parked
        (counted as a ``remote_breaker_deferrals``) — unless admitting
        open-circuit hosts is the only way to have a fleet at all: the
        breaker sheds suspect peers, it never refuses the last hope.
        """
        deferred: list[_RemoteWorker] = []
        while self._pending:
            worker = self._pending.pop(0)
            if not self._breaker.allow(worker.host):
                self._breaker_deferrals.inc()
                deferred.append(worker)
                continue
            self._boot_pending(worker)
        while deferred and not self._workers:
            self._boot_pending(deferred.pop(0))
        self._pending.extend(deferred)

    def _reboot_fleet(self) -> None:
        """Re-send BOOT to every live worker — the remote 'restart'."""
        for worker in list(self._workers):
            try:
                self._send_tracked(worker, self._boot_message())
            except (WireError, OSError):
                self._discard_worker(worker)
                continue
            self._boots.inc()
            worker.last_seen = self._clock()

    def _broadcast_sync(self) -> None:
        """Fan the pending delta packet out: one SYNC frame per worker.

        The pool's tentpole invariant carries over: TCP preserves the
        per-connection FIFO, so after the fan-out the parent clears its
        log — any TASK written later is read after the SYNC.
        """
        packet = Sync(epoch=self._epoch, entries=tuple(self._deltas))
        for worker in list(self._workers):
            try:
                sent = worker.conn.send(packet)
            except (WireError, OSError):
                self._discard_worker(worker)
                continue
            self._frames_sent.inc()
            self._bytes_sent.inc(sent)
            self._sync_messages.inc()
            self._sync_bytes.inc(sent)
        self._delta_syncs.inc()

    def _discard_worker(self, worker: _RemoteWorker) -> None:
        """Drop a worker outside a batch (no in-flight chunks to requeue)."""
        if worker in self._workers:
            self._workers.remove(worker)
        self._ring.remove(worker.node)
        worker.conn.close()
        self._dead_workers.inc()

    def _can_delta_sync(self, initializer: Callable[..., None] | None) -> bool:
        if self.sync != "delta" or not self._log_complete:
            return False
        if self._applier is None or initializer is not self._applier_init:
            return False
        if self._applier is not self._fleet_applier:
            return False
        return len(self._deltas) <= self.max_delta_log

    def _prepare_dispatch(
        self,
        initializer: Callable[..., None] | None,
        initargs: tuple[Any, ...],
    ) -> tuple[list[_RemoteWorker], int]:
        """Bring the fleet to the current epoch; returns (workers, epoch).

        Must run under :attr:`_lock`.  Mirrors the pool's dispatch
        preparation with one twist: a "restart" re-sends BOOT frames in
        place instead of killing processes, and newly connected workers
        (pending) are booted directly at the current epoch.
        """
        from .pool import _same_elements

        self._ensure_listener()
        rebind = (
            not self._booted
            or initializer is not self._bound_init
            or not _same_elements(initargs, self._bound_initargs)
        )
        stale = self._epoch > self._fleet_epoch
        if rebind or (stale and not self._can_delta_sync(initializer)):
            self._bound_init = initializer
            self._bound_initargs = initargs
            self._fleet_applier = (
                self._applier
                if initializer is self._applier_init
                else None
            )
            self._reboot_fleet()
            self._booted = True
        elif stale:
            self._broadcast_sync()
        self._fleet_epoch = self._epoch
        self._deltas.clear()
        self._log_complete = True
        self._ensure_fleet()
        self._admit_pending()
        if not self._workers:
            raise FleetLossError(
                "remote backend has no live workers after fleet preparation"
            )
        for worker in self._workers:
            worker.last_seen = self._clock()
        return list(self._workers), self._fleet_epoch

    # -- dispatch ------------------------------------------------------------

    def map_items(
        self,
        fn: Callable[[T], R],
        items: Iterable[T],
        *,
        initializer: Callable[..., None] | None = None,
        initargs: tuple[Any, ...] = (),
        deadline: Deadline | None = None,
    ) -> list[R]:
        """``[fn(item) for item in items]`` on the remote fleet.

        Tasks are chunked (a few chunks per worker), placed by the
        consistent-hash ring, and streamed back as tagged RESULT
        frames; output order and content are bit-identical to the
        serial backend.  A worker lost mid-batch has its unanswered
        items requeued onto the ring's surviving owners; with
        ``degraded_mode="serial"`` a *total* fleet loss falls back to
        in-process serial execution instead of raising.
        """
        items = list(items)
        if not items:
            return []
        ensure_picklable(fn)
        if deadline is not None:
            deadline.check(f"remote dispatch of {len(items)} task item(s)")
        with self._dispatch_lock:
            try:
                with self._lock:
                    workers, epoch = self._prepare_dispatch(
                        initializer, initargs
                    )
                chunks = chunk_evenly(
                    list(enumerate(items)),
                    min(len(items), len(workers) * _CHUNKS_PER_WORKER),
                )
                keyed = [
                    (f"chunk-{position}", chunk)
                    for position, chunk in enumerate(chunks)
                ]
                return self._run_batch(fn, keyed, epoch, len(items), deadline)
            except FleetLossError:
                if self.degraded_mode != "serial":
                    raise
                return self._degraded_batch(
                    fn, items, initializer, initargs, deadline
                )

    def map_partitions(
        self,
        fn: Callable[[T], R],
        partitions: Sequence[T],
        *,
        initializer: Callable[..., None] | None = None,
        initargs: tuple[Any, ...] = (),
        deadline: Deadline | None = None,
    ) -> list[R]:
        """One task per partition, placed by ``shard-N`` ring keys.

        Stable keys mean partition ``N`` lands on the same worker for
        every batch while the fleet is unchanged — index shards stick
        to workers (warm shard state stays warm), and a fleet change
        re-homes only the dead worker's shards.
        """
        partitions = list(partitions)
        if not partitions:
            return []
        ensure_picklable(fn)
        if deadline is not None:
            deadline.check(
                f"remote dispatch of {len(partitions)} partition(s)"
            )
        with self._dispatch_lock:
            try:
                with self._lock:
                    _workers, epoch = self._prepare_dispatch(
                        initializer, initargs
                    )
                keyed = [
                    (f"shard-{position}", [(position, partition)])
                    for position, partition in enumerate(partitions)
                ]
                return self._run_batch(
                    fn, keyed, epoch, len(partitions), deadline
                )
            except FleetLossError:
                if self.degraded_mode != "serial":
                    raise
                return self._degraded_batch(
                    fn, partitions, initializer, initargs, deadline
                )

    def _degraded_batch(
        self,
        fn: Callable[..., Any],
        items: Sequence[Any],
        initializer: Callable[..., None] | None,
        initargs: tuple[Any, ...],
        deadline: Deadline | None = None,
    ) -> list[Any]:
        """Serve one batch in-process after total fleet loss.

        The serial fallback runs ``fn`` on the parent's own resident
        state, so results are bit-identical to the serial backend (and
        to what the fleet would have produced) — the price is losing
        parallelism, not correctness.  The worker initializer (already
        required to be idempotent by the pool/remote restart contract)
        reruns in the parent process only when the bound state or
        epoch changed since the last degraded run; the whole batch is
        recomputed even if the fleet answered part of it before dying,
        which is safe because task functions are pure.
        """
        from .pool import _same_elements

        self._degraded_dispatches.inc()
        with self._lock:
            epoch = self._epoch
            stale = (
                initializer is not self._degraded_init
                or not _same_elements(initargs, self._degraded_initargs)
                or epoch != self._degraded_epoch
            )
        if stale and initializer is not None:
            initializer(*initargs)
        with self._lock:
            self._degraded_init = initializer
            self._degraded_initargs = initargs
            self._degraded_epoch = epoch
        results: list[Any] = []
        for position, item in enumerate(items):
            if deadline is not None:
                deadline.check(f"degraded serial task {position}")
            results.append(fn(item))
        return results

    def _worker_for(self, key: str) -> _RemoteWorker:
        """The live worker owning ``key`` on the ring (under _lock)."""
        node = self._ring.lookup(key)
        for worker in self._workers:
            if worker.node == node:
                return worker
        raise ExecutionError(
            f"hash ring owner {node!r} for key {key!r} has no live worker"
        )

    def _run_batch(
        self,
        fn: Callable[..., Any],
        keyed_chunks: list[tuple[str, list[tuple[int, Any]]]],
        epoch: int,
        expected: int,
        deadline: Deadline | None = None,
    ) -> list[Any]:
        """Place, dispatch and collect one batch (under _dispatch_lock)."""
        with self._lock:
            sends: list[tuple[_RemoteWorker, Task, _Chunk]] = []
            # Chunk ids are globally monotonic, never per-batch: a
            # result frame that straggles in after its batch was
            # abandoned (deadline abort) can then never alias a chunk
            # of the next batch — it is counted stale and dropped.
            for key, pairs in keyed_chunks:
                worker = self._worker_for(key)
                chunk_id = self._chunk_seq
                self._chunk_seq += 1
                task = Task(
                    chunk_id=chunk_id,
                    fn=fn,
                    pairs=tuple(pairs),
                    epoch=epoch,
                )
                chunk = _Chunk(key, pairs, epoch)
                worker.chunks[chunk_id] = chunk
                sends.append((worker, task, chunk))
        failed: list[_RemoteWorker] = []
        for worker, task, _chunk in sends:
            if worker in failed:
                continue  # its chunks requeue through the failure path
            try:
                self._send_tracked(worker, task)
            except (WireError, OSError):
                failed.append(worker)
        values: dict[int, Any] = {}
        failures: dict[int, tuple[bytes | None, str, str]] = {}
        try:
            self._collect(
                fn, expected, epoch, values, failures,
                initially_failed=failed, deadline=deadline,
            )
        finally:
            with self._lock:
                for worker in self._workers:
                    worker.chunks.clear()
        with self._lock:
            for worker in self._workers:
                self._breaker.record_success(worker.host)
        if failures:
            index = min(failures)
            exc_bytes, summary, tb = failures[index]
            original: BaseException | None = None
            if exc_bytes is not None:
                try:
                    loaded = pickle.loads(exc_bytes)
                except Exception:  # pragma: no cover - defensive
                    loaded = None
                if isinstance(loaded, BaseException):
                    original = loaded
            if original is not None:
                raise original from ExecutionError(
                    f"remote task {fn!r} failed in a worker process; "
                    f"worker traceback:\n{tb}"
                )
            raise ExecutionError(
                f"remote task {fn!r} failed with an unpicklable exception "
                f"{summary}; worker traceback:\n{tb}"
            )
        return [values[index] for index in range(expected)]

    def _collect(
        self,
        fn: Callable[..., Any],
        expected: int,
        epoch: int,
        values: dict[int, Any],
        failures: dict[int, tuple[bytes | None, str, str]],
        *,
        initially_failed: list[_RemoteWorker],
        deadline: Deadline | None = None,
    ) -> None:
        """Drain results, policing liveness and requeuing onto survivors.

        A ``deadline`` is checked between selector rounds, never inside
        one: an aborted batch leaves no half-recorded results, and any
        straggler frames from its abandoned chunks are dropped as stale
        by :meth:`_handle_message` in later batches.
        """
        selector = selectors.DefaultSelector()
        with self._lock:
            for worker in self._workers:
                selector.register(worker.conn, selectors.EVENT_READ, worker)
        try:
            for worker in initially_failed:
                self._fail_worker(
                    worker, "send failed at dispatch", fn, epoch,
                    selector, values, failures,
                )
            while len(values) + len(failures) < expected:
                if deadline is not None and deadline.expired():
                    self._deadline_aborts.inc()
                    deadline.check(
                        f"remote batch for {fn!r} "
                        f"({expected - len(values) - len(failures)} of "
                        f"{expected} task item(s) unanswered)"
                    )
                events = selector.select(timeout=_RESULT_POLL_SECONDS)
                now = self._clock()
                for key, _mask in events:
                    worker = key.data
                    try:
                        messages, eof = worker.conn.poll()
                    except TruncatedFrameError as exc:
                        self._torn_frames.inc()
                        self._fail_worker(
                            worker, f"torn frame: {exc}", fn, epoch,
                            selector, values, failures,
                        )
                        continue
                    except WireError as exc:
                        self._fail_worker(
                            worker, f"wire fault: {exc}", fn, epoch,
                            selector, values, failures,
                        )
                        continue
                    worker.last_seen = now
                    rx = worker.conn.bytes_received
                    self._bytes_received.inc(rx - worker.counted_rx)
                    worker.counted_rx = rx
                    for message in messages:
                        self._frames_received.inc()
                        self._handle_message(worker, message, values, failures)
                    if eof:
                        self._fail_worker(
                            worker, "connection closed", fn, epoch,
                            selector, values, failures,
                        )
                if len(values) + len(failures) >= expected:
                    return
                silence_cutoff = self._clock() - self.heartbeat_timeout
                with self._lock:
                    silent = [
                        worker
                        for worker in self._workers
                        if worker.last_seen < silence_cutoff
                    ]
                for worker in silent:
                    self._fail_worker(
                        worker,
                        f"no heartbeat for {self.heartbeat_timeout:.1f}s "
                        f"(partitioned or hung)",
                        fn, epoch, selector, values, failures,
                    )
        finally:
            selector.close()

    def _handle_message(
        self,
        worker: _RemoteWorker,
        message: Any,
        values: dict[int, Any],
        failures: dict[int, tuple[bytes | None, str, str]],
    ) -> None:
        """Process one frame from a live worker during collection."""
        if isinstance(message, TaskResult):
            chunk = worker.chunks.get(message.chunk_id)
            if chunk is not None:
                chunk.pairs.pop(message.index, None)
                if not chunk.pairs:
                    del worker.chunks[message.chunk_id]
                if (
                    message.index not in values
                    and message.index not in failures
                ):
                    if message.ok:
                        values[message.index] = message.value
                    else:
                        failures[message.index] = (
                            message.exc_bytes,
                            message.summary,
                            message.traceback,
                        )
            else:
                # A straggler from an abandoned batch (deadline abort):
                # chunk ids are globally monotonic, so it can't alias a
                # live chunk — count it, keep only its metrics delta.
                self._stale_results.inc()
            if message.delta is not None:
                worker_id, payload = message.delta
                self.metrics.merge_delta(
                    payload, extra_labels={"worker": str(worker_id)}
                )
        elif isinstance(message, Heartbeat):
            self._heartbeats.inc()
        # Any other frame type from a worker is unexpected but harmless
        # liveness; the type check in decode_message already rejected
        # malformed payloads.

    def _fail_worker(
        self,
        worker: _RemoteWorker,
        reason: str,
        fn: Callable[..., Any],
        epoch: int,
        selector: selectors.BaseSelector,
        values: dict[int, Any],
        failures: dict[int, tuple[bytes | None, str, str]],
    ) -> None:
        """Declare ``worker`` dead mid-batch and requeue its task items.

        The dead worker leaves the ring, each of its in-flight chunks
        re-resolves through its original ring key (landing on the
        chunk's new consistent-hash owner), and the unanswered pairs
        are re-sent at the same epoch — survivors share the broadcast
        state, so requeued results are bit-identical.  With no
        survivors left the batch fails loudly with
        :class:`FleetLossError` (which degraded mode may absorb).
        """
        with self._lock:
            if worker not in self._workers:
                return
            self._workers.remove(worker)
            self._ring.remove(worker.node)
            self._breaker.record_failure(worker.host)
            self._faulted_hosts.add(worker.host)
        try:
            selector.unregister(worker.conn)
        except (KeyError, ValueError):
            pass
        worker.conn.close()
        self._dead_workers.inc()
        orphans = list(worker.chunks.values())
        worker.chunks.clear()
        pending = sum(
            1
            for chunk in orphans
            for index in chunk.pairs
            if index not in values and index not in failures
        )
        if not orphans or pending == 0:
            return
        queue = list(orphans)
        while queue:
            chunk = queue.pop(0)
            remaining = [
                (index, item)
                for index, item in chunk.pairs.items()
                if index not in values and index not in failures
            ]
            if not remaining:
                continue
            with self._lock:
                if not self._workers:
                    raise FleetLossError(
                        f"remote worker {worker.worker_id} died mid-batch "
                        f"({reason}) and no workers survive to requeue "
                        f"{pending} task item(s) for {fn!r}"
                    )
                target = self._worker_for(chunk.key)
                chunk_id = self._chunk_seq
                self._chunk_seq += 1
                requeued = _Chunk(chunk.key, remaining, epoch)
                target.chunks[chunk_id] = requeued
            try:
                self._send_tracked(
                    target,
                    Task(
                        chunk_id=chunk_id,
                        fn=fn,
                        pairs=tuple(remaining),
                        epoch=epoch,
                    ),
                )
            except (WireError, OSError):
                # The survivor died while absorbing the requeue: recurse
                # through the same failure path (its own chunks included).
                self._fail_worker(
                    target, "send failed during requeue", fn, epoch,
                    selector, values, failures,
                )
                queue.append(requeued)
                continue
            self._requeues.inc(len(remaining))

    # -- lifecycle -----------------------------------------------------------

    def _stop_spawned(self) -> None:
        """Join loopback processes, escalating terminate -> kill.

        Same shared escalation policy as the pool's worker stop; the
        remote listener is already closed at this point, so a stopping
        worker cannot rejoin mid-escalation.
        """
        for process in self._spawned:
            join_with_escalation(process)
        self._spawned = []

    def close(self) -> None:
        """Stop every worker, the listener and the accept thread (idempotent)."""
        with self._dispatch_lock:
            with self._lock:
                self._closing = True
                for worker in self._workers + self._pending:
                    try:
                        worker.conn.send(Stop())
                    except (WireError, OSError):
                        pass
                    worker.conn.close()
                self._workers = []
                self._pending = []
                self._ring = HashRing()
                if self._listener is not None:
                    try:
                        self._listener.close()
                    except OSError:  # pragma: no cover - already closed
                        pass
                    self._listener = None
                accept_thread = self._accept_thread
                self._accept_thread = None
                self._booted = False
                self._fleet_epoch = -1
                self._bound_init = None
                self._bound_initargs = ()
            self._stop_spawned()
        if accept_thread is not None:
            accept_thread.join(timeout=_JOIN_TIMEOUT_SECONDS)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RemoteBackend(workers={self.workers}, sync={self.sync!r}, "
            f"address={self.address}, live={self.live_workers})"
        )
