"""TF-IDF corpus model (Definition 4 of the paper).

Section V.B flattens every user profile into one document, computes term
frequency (tf) and inverse document frequency (idf) scores and compares
the resulting vectors with cosine similarity.  :class:`TfIdfModel`
implements exactly that:

* ``tf(t, d)`` — raw term count, optionally normalised by document length;
* ``idf(t, D) = log(N / |{d ∈ D : t ∈ d}|)`` — Definition 4;
* the vector of a document multiplies the two.

The model is fitted once on a corpus and can then transform unseen
documents (terms never seen in the corpus receive idf 0, i.e. they are
ignored — the standard convention and the behaviour Definition 4
implies, since the ratio inside the log is undefined for them).
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Iterable, Mapping, Sequence

from .tokenizer import DEFAULT_TOKENIZER, Tokenizer
from .vectors import SparseVector


class TfIdfModel:
    """Fit/transform TF-IDF vectorizer over a corpus of text documents.

    Parameters
    ----------
    tokenizer:
        The :class:`~repro.text.tokenizer.Tokenizer` used to split
        documents into terms.
    sublinear_tf:
        When true, use ``1 + log(tf)`` instead of the raw count — a
        common refinement; the paper uses raw counts, so it defaults to
        ``False``.
    normalize_length:
        When true, divide term counts by the document length so long
        profiles do not dominate.  Cosine similarity is scale-invariant,
        so this does not change similarities; it only changes the
        absolute weights reported by :meth:`transform`.
    smooth_idf:
        When true, use ``log((1 + N) / (1 + df)) + 1`` which never
        produces zero or negative idf.  Defaults to ``False`` to follow
        Definition 4 literally.
    """

    def __init__(
        self,
        tokenizer: Tokenizer = DEFAULT_TOKENIZER,
        sublinear_tf: bool = False,
        normalize_length: bool = False,
        smooth_idf: bool = False,
    ) -> None:
        self.tokenizer = tokenizer
        self.sublinear_tf = sublinear_tf
        self.normalize_length = normalize_length
        self.smooth_idf = smooth_idf
        self._idf: dict[str, float] = {}
        self._num_documents = 0
        self._fitted = False

    # -- fitting ---------------------------------------------------------------

    def fit(self, documents: Sequence[str]) -> "TfIdfModel":
        """Learn idf weights from ``documents``; returns ``self``."""
        document_frequency: Counter[str] = Counter()
        self._num_documents = len(documents)
        for document in documents:
            terms = set(self.tokenizer.tokenize(document))
            document_frequency.update(terms)
        self._idf = {
            term: self._idf_value(df)
            for term, df in document_frequency.items()
        }
        self._fitted = True
        return self

    def _idf_value(self, document_frequency: int) -> float:
        if self.smooth_idf:
            return (
                math.log((1 + self._num_documents) / (1 + document_frequency)) + 1.0
            )
        if document_frequency == 0:
            return 0.0
        return math.log(self._num_documents / document_frequency)

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self._fitted

    @property
    def vocabulary(self) -> list[str]:
        """Sorted corpus vocabulary (terms with a learned idf)."""
        return sorted(self._idf)

    @property
    def num_documents(self) -> int:
        """Number of documents the model was fitted on."""
        return self._num_documents

    def idf(self, term: str) -> float:
        """The learned idf of ``term`` (0 for out-of-vocabulary terms)."""
        return self._idf.get(term, 0.0)

    def document_frequency(self, term: str) -> int:
        """Reconstructed document frequency of ``term`` (0 when unseen)."""
        idf_value = self._idf.get(term)
        if idf_value is None:
            return 0
        if self.smooth_idf:
            return round((1 + self._num_documents) / math.exp(idf_value - 1.0) - 1)
        return round(self._num_documents / math.exp(idf_value))

    # -- transformation ------------------------------------------------------------

    def term_frequencies(self, document: str) -> dict[str, float]:
        """Raw (or length-normalised) term frequencies of ``document``."""
        tokens = self.tokenizer.tokenize(document)
        counts = Counter(tokens)
        if not tokens:
            return {}
        frequencies: dict[str, float] = {}
        for term, count in counts.items():
            tf = float(count)
            if self.sublinear_tf:
                tf = 1.0 + math.log(count)
            if self.normalize_length:
                tf = tf / len(tokens)
            frequencies[term] = tf
        return frequencies

    def transform(self, document: str) -> SparseVector:
        """TF-IDF vector of ``document`` (requires :meth:`fit`)."""
        if not self._fitted:
            raise RuntimeError("TfIdfModel.transform called before fit")
        frequencies = self.term_frequencies(document)
        return SparseVector(
            {
                term: tf * self._idf.get(term, 0.0)
                for term, tf in frequencies.items()
                if self._idf.get(term, 0.0) != 0.0
            }
        )

    def fit_transform(self, documents: Sequence[str]) -> list[SparseVector]:
        """Fit on ``documents`` and return their vectors in order."""
        self.fit(documents)
        return [self.transform(document) for document in documents]

    def similarity(self, document_a: str, document_b: str) -> float:
        """Cosine similarity between the vectors of two documents."""
        return self.transform(document_a).cosine(self.transform(document_b))


def corpus_tfidf(
    documents: Iterable[str],
    tokenizer: Tokenizer = DEFAULT_TOKENIZER,
) -> tuple[TfIdfModel, list[SparseVector]]:
    """Convenience helper: fit a model on ``documents`` and vectorise them."""
    documents = list(documents)
    model = TfIdfModel(tokenizer=tokenizer)
    vectors = model.fit_transform(documents)
    return model, vectors
