"""Text substrate: tokenisation, TF-IDF and sparse vectors."""

from .tokenizer import DEFAULT_STOPWORDS, DEFAULT_TOKENIZER, Tokenizer, simple_stem
from .tfidf import TfIdfModel, corpus_tfidf
from .vectors import SparseVector, cosine_similarity

__all__ = [
    "DEFAULT_STOPWORDS",
    "DEFAULT_TOKENIZER",
    "SparseVector",
    "TfIdfModel",
    "Tokenizer",
    "corpus_tfidf",
    "cosine_similarity",
    "simple_stem",
]
