"""Sparse vector arithmetic used by the TF-IDF profile similarity.

Profile vectors are sparse (a patient profile mentions a handful of
terms out of the whole vocabulary), so they are represented as plain
``dict[str, float]`` wrapped in :class:`SparseVector` which adds the
operations Equation 3 needs: dot product, Euclidean norm and cosine
similarity, plus the small conveniences (addition, scaling, top terms)
the examples and tests use.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator, Mapping


class SparseVector:
    """An immutable sparse mapping of term → weight.

    Zero weights are dropped on construction so that two vectors with
    the same non-zero entries compare equal regardless of explicit
    zeros.
    """

    __slots__ = ("_data",)

    def __init__(self, data: Mapping[str, float] | None = None) -> None:
        self._data: dict[str, float] = {
            key: float(value)
            for key, value in (data or {}).items()
            if value != 0.0
        }

    # -- mapping interface -------------------------------------------------

    def __getitem__(self, key: str) -> float:
        return self._data.get(key, 0.0)

    def get(self, key: str, default: float = 0.0) -> float:
        """Weight of ``key`` or ``default`` when absent."""
        return self._data.get(key, default)

    def __contains__(self, key: object) -> bool:
        return key in self._data

    def __iter__(self) -> Iterator[str]:
        return iter(self._data)

    def __len__(self) -> int:
        return len(self._data)

    def keys(self) -> Iterable[str]:
        """Terms with non-zero weight."""
        return self._data.keys()

    def items(self) -> Iterable[tuple[str, float]]:
        """``(term, weight)`` pairs with non-zero weight."""
        return self._data.items()

    def to_dict(self) -> dict[str, float]:
        """Plain-dict copy of the vector."""
        return dict(self._data)

    # -- equality -----------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SparseVector):
            return NotImplemented
        return self._data == other._data

    def __hash__(self) -> int:  # immutable by convention
        return hash(frozenset(self._data.items()))

    # -- arithmetic -----------------------------------------------------------

    def dot(self, other: "SparseVector") -> float:
        """Dot product; iterates over the smaller vector."""
        if len(other) < len(self):
            return other.dot(self)
        return sum(weight * other[term] for term, weight in self.items())

    def norm(self) -> float:
        """Euclidean (L2) norm."""
        return math.sqrt(sum(weight * weight for weight in self._data.values()))

    def cosine(self, other: "SparseVector") -> float:
        """Cosine similarity (Equation 3); 0 when either vector is empty."""
        denominator = self.norm() * other.norm()
        if denominator == 0.0:
            return 0.0
        return self.dot(other) / denominator

    def scale(self, factor: float) -> "SparseVector":
        """Return a new vector with every weight multiplied by ``factor``."""
        return SparseVector({term: weight * factor for term, weight in self.items()})

    def add(self, other: "SparseVector") -> "SparseVector":
        """Element-wise sum of two vectors."""
        result = dict(self._data)
        for term, weight in other.items():
            result[term] = result.get(term, 0.0) + weight
        return SparseVector(result)

    def normalized(self) -> "SparseVector":
        """Return the unit-norm version of the vector (self when empty)."""
        norm = self.norm()
        if norm == 0.0:
            return SparseVector()
        return self.scale(1.0 / norm)

    def top_terms(self, n: int = 10) -> list[tuple[str, float]]:
        """The ``n`` highest-weighted terms, sorted by weight then term."""
        return sorted(self.items(), key=lambda pair: (-pair[1], pair[0]))[:n]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        preview = ", ".join(
            f"{term}={weight:.3f}" for term, weight in self.top_terms(3)
        )
        return f"SparseVector({len(self)} terms: {preview})"


def cosine_similarity(a: Mapping[str, float], b: Mapping[str, float]) -> float:
    """Cosine similarity between two plain term-weight mappings."""
    return SparseVector(a).cosine(SparseVector(b))
