"""Tokenisation utilities for profile and document text.

The TF-IDF based profile similarity (Section V.B) treats each user
profile as a single document.  This module provides the small text
pipeline that feeds it: lowercasing, alphanumeric token extraction,
optional stop-word removal and a light suffix stemmer.  Keeping the
pipeline dependency-free (no NLTK) keeps the reproduction hermetic.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterable

_TOKEN_RE = re.compile(r"[a-z0-9]+")

#: A compact English stop-word list covering the function words that occur
#: in PHR free text and document titles.  Deliberately small: removing too
#: many words would change the TF-IDF vectors more than the paper intends.
DEFAULT_STOPWORDS: frozenset[str] = frozenset(
    """
    a an and are as at be but by for from has have he her his i if in into is
    it its of on or s she that the their them they this to was were will with
    you your not no nor so than then there these those
    """.split()
)

_SUFFIXES: tuple[str, ...] = ("ingly", "edly", "ing", "edly", "ed", "es", "s", "ly")


def simple_stem(token: str) -> str:
    """Strip one common English suffix from ``token``.

    This is intentionally a very light stemmer (far lighter than Porter):
    it merges obvious inflections ("rating"/"ratings", "treated"/
    "treats") without the aggressive conflation that would distort the
    medical vocabulary (e.g. it never reduces a token below 4 chars).
    """
    for suffix in _SUFFIXES:
        if token.endswith(suffix) and len(token) - len(suffix) >= 4:
            return token[: -len(suffix)]
    return token


@dataclass(frozen=True)
class Tokenizer:
    """Configurable text → token-list transformer.

    Parameters
    ----------
    lowercase:
        Whether to lowercase the text first.
    remove_stopwords:
        Whether to drop tokens in :data:`DEFAULT_STOPWORDS` (or the
        custom ``stopwords`` set).
    stem:
        Whether to apply :func:`simple_stem` to each token.
    min_length:
        Tokens shorter than this are dropped.
    stopwords:
        Custom stop-word set; defaults to :data:`DEFAULT_STOPWORDS`.
    """

    lowercase: bool = True
    remove_stopwords: bool = True
    stem: bool = False
    min_length: int = 2
    stopwords: frozenset[str] = field(default=DEFAULT_STOPWORDS)

    def tokenize(self, text: str) -> list[str]:
        """Split ``text`` into the configured token stream."""
        if self.lowercase:
            text = text.lower()
        tokens = _TOKEN_RE.findall(text)
        result: list[str] = []
        for token in tokens:
            if len(token) < self.min_length:
                continue
            if self.remove_stopwords and token in self.stopwords:
                continue
            if self.stem:
                token = simple_stem(token)
            result.append(token)
        return result

    def __call__(self, text: str) -> list[str]:
        return self.tokenize(text)

    def vocabulary(self, texts: Iterable[str]) -> list[str]:
        """Sorted distinct tokens over an iterable of texts."""
        vocab: set[str] = set()
        for text in texts:
            vocab.update(self.tokenize(text))
        return sorted(vocab)


#: A ready-to-use tokenizer with the library defaults.
DEFAULT_TOKENIZER = Tokenizer()
