"""Data substrate: users, items, ratings, PHRs, groups and generators."""

from .groups import Group, diverse_group, random_group, similar_group
from .items import HealthDocument, ItemCatalog
from .phr import (
    Allergy,
    HealthProblem,
    Measurement,
    Medication,
    PersonalHealthRecord,
    Procedure,
)
from .ratings import Rating, RatingMatrix
from .users import User, UserRegistry
from .datasets import (
    DatasetConfig,
    HealthDataset,
    SyntheticHealthDataSource,
    generate_dataset,
    paper_example_users,
)
from .nutrition import (
    NutritionConfig,
    NutritionDataSource,
    Recipe,
    generate_nutrition_dataset,
)
from .scale import ScaleConfig, generate_scale_dataset, sample_scale_groups
from .serialization import (
    load_dataset,
    load_json,
    load_ratings_csv,
    save_dataset,
    save_json,
    save_ratings_csv,
)

__all__ = [
    "Allergy",
    "DatasetConfig",
    "Group",
    "HealthDataset",
    "HealthDocument",
    "HealthProblem",
    "ItemCatalog",
    "Measurement",
    "Medication",
    "NutritionConfig",
    "NutritionDataSource",
    "PersonalHealthRecord",
    "Procedure",
    "Rating",
    "RatingMatrix",
    "Recipe",
    "ScaleConfig",
    "SyntheticHealthDataSource",
    "User",
    "UserRegistry",
    "diverse_group",
    "generate_dataset",
    "generate_nutrition_dataset",
    "generate_scale_dataset",
    "load_dataset",
    "load_json",
    "load_ratings_csv",
    "paper_example_users",
    "random_group",
    "sample_scale_groups",
    "save_dataset",
    "save_json",
    "save_ratings_csv",
    "similar_group",
]
