"""Personal Health Record (PHR) substrate.

The paper's recommender reads patient profiles from the iPHR system,
which stores "problems, medication, allergies, procedures, laboratory
results etc." (Section II).  That system is proprietary, so this module
provides an equivalent in-memory record with the fields the similarity
functions actually consume:

* **problems** carry a SNOMED-like concept id → used by the semantic
  similarity (Section V.C);
* every field contributes text to the flattened profile document → used
  by the TF-IDF profile similarity (Section V.B);
* demographics (age, gender) mirror Table I.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping


@dataclass(frozen=True)
class HealthProblem:
    """A diagnosed condition, optionally linked to an ontology concept.

    Parameters
    ----------
    name:
        Human readable problem name, e.g. ``"Acute bronchitis"``.
    concept_id:
        Identifier of the matching concept in the health ontology
        (:mod:`repro.ontology`).  Empty when the problem is free-text.
    onset_year:
        Optional year of onset; purely descriptive.
    active:
        Whether the patient still suffers from the problem.
    """

    name: str
    concept_id: str = ""
    onset_year: int | None = None
    active: bool = True

    def as_text(self) -> str:
        """Textual form used when flattening the profile into a document."""
        return self.name

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "concept_id": self.concept_id,
            "onset_year": self.onset_year,
            "active": self.active,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "HealthProblem":
        return cls(
            name=payload["name"],
            concept_id=payload.get("concept_id", ""),
            onset_year=payload.get("onset_year"),
            active=payload.get("active", True),
        )


@dataclass(frozen=True)
class Medication:
    """A prescribed medication (e.g. ``"Ramipril 10 MG Oral Capsule"``)."""

    name: str
    dosage: str = ""
    frequency: str = ""

    def as_text(self) -> str:
        parts = [self.name]
        if self.dosage:
            parts.append(self.dosage)
        if self.frequency:
            parts.append(self.frequency)
        return " ".join(parts)

    def to_dict(self) -> dict[str, Any]:
        return {"name": self.name, "dosage": self.dosage, "frequency": self.frequency}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Medication":
        return cls(
            name=payload["name"],
            dosage=payload.get("dosage", ""),
            frequency=payload.get("frequency", ""),
        )


@dataclass(frozen=True)
class Procedure:
    """A medical procedure the patient underwent."""

    name: str
    year: int | None = None

    def as_text(self) -> str:
        return self.name

    def to_dict(self) -> dict[str, Any]:
        return {"name": self.name, "year": self.year}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Procedure":
        return cls(name=payload["name"], year=payload.get("year"))


@dataclass(frozen=True)
class Measurement:
    """A laboratory result or other quantitative measurement."""

    name: str
    value: float
    unit: str = ""

    def as_text(self) -> str:
        return f"{self.name} {self.value} {self.unit}".strip()

    def to_dict(self) -> dict[str, Any]:
        return {"name": self.name, "value": self.value, "unit": self.unit}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Measurement":
        return cls(
            name=payload["name"],
            value=payload["value"],
            unit=payload.get("unit", ""),
        )


@dataclass(frozen=True)
class Allergy:
    """A recorded allergy (substance plus optional reaction)."""

    substance: str
    reaction: str = ""

    def as_text(self) -> str:
        return f"{self.substance} {self.reaction}".strip()

    def to_dict(self) -> dict[str, Any]:
        return {"substance": self.substance, "reaction": self.reaction}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Allergy":
        return cls(
            substance=payload["substance"],
            reaction=payload.get("reaction", ""),
        )


@dataclass
class PersonalHealthRecord:
    """The structured health profile of a patient.

    Mirrors the iPHR fields that the paper's similarity functions read.
    All collections are plain lists; the record is a value object owned
    by a :class:`repro.data.users.User`.
    """

    problems: list[HealthProblem] = field(default_factory=list)
    medications: list[Medication] = field(default_factory=list)
    procedures: list[Procedure] = field(default_factory=list)
    measurements: list[Measurement] = field(default_factory=list)
    allergies: list[Allergy] = field(default_factory=list)
    notes: str = ""

    # -- mutation helpers --------------------------------------------------

    def add_problem(self, problem: HealthProblem) -> None:
        """Append a health problem to the record."""
        self.problems.append(problem)

    def add_medication(self, medication: Medication) -> None:
        """Append a medication to the record."""
        self.medications.append(medication)

    def add_procedure(self, procedure: Procedure) -> None:
        """Append a procedure to the record."""
        self.procedures.append(procedure)

    def add_measurement(self, measurement: Measurement) -> None:
        """Append a measurement to the record."""
        self.measurements.append(measurement)

    def add_allergy(self, allergy: Allergy) -> None:
        """Append an allergy to the record."""
        self.allergies.append(allergy)

    # -- views ---------------------------------------------------------------

    def active_problems(self) -> list[HealthProblem]:
        """Problems the patient still suffers from."""
        return [p for p in self.problems if p.active]

    def problem_concept_ids(self) -> list[str]:
        """Ontology concept ids of all problems that carry one."""
        return [p.concept_id for p in self.problems if p.concept_id]

    def as_text(self) -> str:
        """Flatten the record into one document (Section V.B).

        The order is deterministic: problems, medications, procedures,
        measurements, allergies, then free-text notes.
        """
        parts: list[str] = []
        parts.extend(p.as_text() for p in self.problems)
        parts.extend(m.as_text() for m in self.medications)
        parts.extend(p.as_text() for p in self.procedures)
        parts.extend(m.as_text() for m in self.measurements)
        parts.extend(a.as_text() for a in self.allergies)
        if self.notes:
            parts.append(self.notes)
        return " ".join(parts)

    def is_empty(self) -> bool:
        """Whether the record carries no information at all."""
        return not (
            self.problems
            or self.medications
            or self.procedures
            or self.measurements
            or self.allergies
            or self.notes
        )

    # -- serialization --------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Serialise the record to plain JSON-friendly types."""
        return {
            "problems": [p.to_dict() for p in self.problems],
            "medications": [m.to_dict() for m in self.medications],
            "procedures": [p.to_dict() for p in self.procedures],
            "measurements": [m.to_dict() for m in self.measurements],
            "allergies": [a.to_dict() for a in self.allergies],
            "notes": self.notes,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "PersonalHealthRecord":
        """Rebuild a record from :meth:`to_dict` output."""
        return cls(
            problems=[
                HealthProblem.from_dict(p) for p in payload.get("problems", [])
            ],
            medications=[
                Medication.from_dict(m) for m in payload.get("medications", [])
            ],
            procedures=[
                Procedure.from_dict(p) for p in payload.get("procedures", [])
            ],
            measurements=[
                Measurement.from_dict(m) for m in payload.get("measurements", [])
            ],
            allergies=[Allergy.from_dict(a) for a in payload.get("allergies", [])],
            notes=payload.get("notes", ""),
        )

    @classmethod
    def from_problems(
        cls, problems: Iterable[tuple[str, str]]
    ) -> "PersonalHealthRecord":
        """Build a record from ``(problem_name, concept_id)`` pairs."""
        return cls(
            problems=[
                HealthProblem(name=name, concept_id=concept_id)
                for name, concept_id in problems
            ]
        )
