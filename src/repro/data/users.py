"""User model and registry.

A *user* in the paper is a patient of the iPHR system.  Each user has a
stable identifier, light demographic data and (optionally) an attached
personal health record (:mod:`repro.data.phr`).  The registry offers
dictionary-like access plus the bulk operations that the dataset
generators and the recommenders need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Mapping

from ..exceptions import UnknownUserError
from .phr import PersonalHealthRecord


@dataclass
class User:
    """A patient known to the recommender.

    Parameters
    ----------
    user_id:
        Stable unique identifier (e.g. ``"u0042"``).
    name:
        Optional display name.
    age:
        Optional age in years.
    gender:
        Optional free-form gender string (the paper's Table I uses
        ``"Male"`` / ``"Female"``).
    record:
        The personal health record attached to the user, if any.
    attributes:
        Free-form extra attributes (e.g. language, literacy preference).
    """

    user_id: str
    name: str = ""
    age: int | None = None
    gender: str | None = None
    record: PersonalHealthRecord | None = None
    attributes: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.user_id:
            raise ValueError("user_id must be a non-empty string")
        if self.age is not None and self.age < 0:
            raise ValueError(f"age must be non-negative, got {self.age}")

    @property
    def has_record(self) -> bool:
        """Whether a personal health record is attached."""
        return self.record is not None

    def profile_text(self) -> str:
        """Flatten the user into a single text document.

        Section V.B treats "all the information contained in a profile as
        a single document" before computing TF-IDF.  This method performs
        that flattening: demographics plus every PHR field.
        """
        parts: list[str] = []
        if self.name:
            parts.append(self.name)
        if self.gender:
            parts.append(self.gender)
        if self.age is not None:
            parts.append(f"age {self.age}")
        for key, value in sorted(self.attributes.items()):
            parts.append(f"{key} {value}")
        if self.record is not None:
            parts.append(self.record.as_text())
        return " ".join(parts)

    def problem_concepts(self) -> list[str]:
        """Return the SNOMED-like concept ids of the user's problems."""
        if self.record is None:
            return []
        return [p.concept_id for p in self.record.problems if p.concept_id]

    def to_dict(self) -> dict[str, Any]:
        """Serialise the user (and record, if present) to plain types."""
        return {
            "user_id": self.user_id,
            "name": self.name,
            "age": self.age,
            "gender": self.gender,
            "record": self.record.to_dict() if self.record else None,
            "attributes": dict(self.attributes),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "User":
        """Rebuild a user from :meth:`to_dict` output."""
        record_payload = payload.get("record")
        record = (
            PersonalHealthRecord.from_dict(record_payload)
            if record_payload
            else None
        )
        return cls(
            user_id=payload["user_id"],
            name=payload.get("name", ""),
            age=payload.get("age"),
            gender=payload.get("gender"),
            record=record,
            attributes=dict(payload.get("attributes", {})),
        )


class UserRegistry:
    """A mapping of user ids to :class:`User` objects.

    The registry preserves insertion order, which keeps synthetic dataset
    generation and the MapReduce runner deterministic.
    """

    def __init__(self, users: Iterable[User] = ()) -> None:
        self._users: dict[str, User] = {}
        for user in users:
            self.add(user)

    # -- mutation ---------------------------------------------------------

    def add(self, user: User) -> None:
        """Register ``user``; replaces any existing user with the same id."""
        self._users[user.user_id] = user

    def remove(self, user_id: str) -> None:
        """Remove a user; raise :class:`UnknownUserError` when absent."""
        try:
            del self._users[user_id]
        except KeyError:
            raise UnknownUserError(user_id) from None

    # -- access -----------------------------------------------------------

    def get(self, user_id: str) -> User:
        """Return the user with ``user_id`` or raise UnknownUserError."""
        try:
            return self._users[user_id]
        except KeyError:
            raise UnknownUserError(user_id) from None

    def __getitem__(self, user_id: str) -> User:
        return self.get(user_id)

    def __contains__(self, user_id: object) -> bool:
        return user_id in self._users

    def __iter__(self) -> Iterator[User]:
        return iter(self._users.values())

    def __len__(self) -> int:
        return len(self._users)

    def ids(self) -> list[str]:
        """All user ids in insertion order."""
        return list(self._users.keys())

    def users(self) -> list[User]:
        """All users in insertion order."""
        return list(self._users.values())

    # -- serialization ----------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Serialise the registry to plain types."""
        return {"users": [user.to_dict() for user in self]}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "UserRegistry":
        """Rebuild a registry from :meth:`to_dict` output."""
        return cls(User.from_dict(entry) for entry in payload.get("users", []))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"UserRegistry({len(self)} users)"
