"""Sparse user-item rating matrix.

This is the central data structure of the collaborative-filtering model
in Section III.A of the paper:

* ``rating(u, i)`` — the score (1..5) a user gave to an item;
* ``U(i)`` — the set of users that rated item ``i``;
* ``I(u)`` — the set of items rated by user ``u``;
* ``μ_u`` — the mean of the ratings of ``u`` (used by Pearson, Eq. 2).

The matrix is stored as a dict-of-dicts keyed by user id and item id,
with an inverted index by item for fast ``U(i)`` queries.  Everything is
kept in insertion order so that iteration (and hence the MapReduce input
triples) is deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Mapping

from ..exceptions import InvalidRatingError, UnknownItemError, UnknownUserError


@dataclass(frozen=True)
class Rating:
    """A single rating triple ``(user_id, item_id, value)``."""

    user_id: str
    item_id: str
    value: float

    def as_triple(self) -> tuple[str, str, float]:
        """Return the ``(user, item, value)`` tuple used by MapReduce."""
        return (self.user_id, self.item_id, self.value)


class RatingMatrix:
    """Sparse rating matrix with the access paths the paper needs.

    Parameters
    ----------
    scale:
        Inclusive ``(low, high)`` bounds of a valid rating.  Ratings
        outside the scale raise :class:`InvalidRatingError`.
    """

    def __init__(
        self,
        ratings: Iterable[Rating | tuple[str, str, float]] = (),
        scale: tuple[float, float] = (1.0, 5.0),
    ) -> None:
        low, high = scale
        if low >= high:
            raise ValueError(f"invalid rating scale ({low}, {high})")
        self._scale = (float(low), float(high))
        self._by_user: dict[str, dict[str, float]] = {}
        self._by_item: dict[str, dict[str, float]] = {}
        self._num_ratings = 0
        self._version = 0
        self._removals = 0
        for rating in ratings:
            if isinstance(rating, Rating):
                self.add(rating.user_id, rating.item_id, rating.value)
            else:
                user_id, item_id, value = rating
                self.add(user_id, item_id, value)

    # -- basic properties ---------------------------------------------------

    @property
    def scale(self) -> tuple[float, float]:
        """Inclusive rating bounds ``(low, high)``."""
        return self._scale

    @property
    def num_users(self) -> int:
        """Number of distinct users with at least one rating."""
        return len(self._by_user)

    @property
    def num_items(self) -> int:
        """Number of distinct items with at least one rating."""
        return len(self._by_item)

    @property
    def num_ratings(self) -> int:
        """Total number of stored ratings."""
        return self._num_ratings

    @property
    def version(self) -> int:
        """Monotonic mutation counter (bumped by :meth:`add` / :meth:`remove`).

        Derived views (cached means, the packed CSR representation in
        :mod:`repro.kernels`) compare the version they were built at
        against the current one to detect staleness in O(1).
        """
        return self._version

    @property
    def removals(self) -> int:
        """How many :meth:`remove` calls the matrix has seen.

        Removals can delete a user or item outright, which invalidates
        any interning table built over the matrix (a later re-add lands
        at the *end* of the insertion order).  The packed representation
        downgrades from incremental repack to a full rebuild whenever
        this counter moved.
        """
        return self._removals

    def density(self) -> float:
        """Fraction of the user × item grid that is filled (0 when empty)."""
        cells = self.num_users * self.num_items
        if cells == 0:
            return 0.0
        return self.num_ratings / cells

    # -- mutation -------------------------------------------------------------

    def add(self, user_id: str, item_id: str, value: float) -> None:
        """Store ``rating(user, item) = value``; overwrites earlier ratings."""
        low, high = self._scale
        if not low <= value <= high:
            raise InvalidRatingError(value, low, high)
        row = self._by_user.setdefault(user_id, {})
        if item_id not in row:
            self._num_ratings += 1
        row[item_id] = float(value)
        self._by_item.setdefault(item_id, {})[user_id] = float(value)
        self._version += 1

    def remove(self, user_id: str, item_id: str) -> None:
        """Delete a rating; raise when the user, item or rating is missing."""
        if user_id not in self._by_user:
            raise UnknownUserError(user_id)
        if item_id not in self._by_user[user_id]:
            raise UnknownItemError(item_id)
        del self._by_user[user_id][item_id]
        del self._by_item[item_id][user_id]
        if not self._by_user[user_id]:
            del self._by_user[user_id]
        if not self._by_item[item_id]:
            del self._by_item[item_id]
        self._num_ratings -= 1
        self._version += 1
        self._removals += 1

    # -- access ----------------------------------------------------------------

    def get(self, user_id: str, item_id: str) -> float | None:
        """Return ``rating(user, item)`` or ``None`` when unrated."""
        return self._by_user.get(user_id, {}).get(item_id)

    def has_rating(self, user_id: str, item_id: str) -> bool:
        """Whether the user has rated the item."""
        return item_id in self._by_user.get(user_id, {})

    def items_of(self, user_id: str) -> dict[str, float]:
        """``I(u)`` with the scores: mapping item id → rating for ``user_id``."""
        return dict(self._by_user.get(user_id, {}))

    def users_of(self, item_id: str) -> dict[str, float]:
        """``U(i)`` with the scores: mapping user id → rating for ``item_id``."""
        return dict(self._by_item.get(item_id, {}))

    def item_ids_of(self, user_id: str) -> set[str]:
        """``I(u)`` — the set of item ids rated by ``user_id``."""
        return set(self._by_user.get(user_id, {}))

    def user_ids_of(self, item_id: str) -> set[str]:
        """``U(i)`` — the set of user ids that rated ``item_id``."""
        return set(self._by_item.get(item_id, {}))

    def iter_raters(self, item_id: str) -> Iterator[str]:
        """Iterate over ``U(i)`` without copying the inverted index row.

        The batched similarity implementations walk the inverted index
        once per caller; the copying :meth:`users_of` accessor would
        allocate a dict per item there.
        """
        return iter(self._by_item.get(item_id, ()))

    def user_ids(self) -> list[str]:
        """All user ids with at least one rating, in insertion order."""
        return list(self._by_user.keys())

    def item_ids(self) -> list[str]:
        """All item ids with at least one rating, in insertion order."""
        return list(self._by_item.keys())

    def iter_user_ids(self) -> Iterator[str]:
        """Iterate user ids in insertion order without copying the list."""
        return iter(self._by_user)

    def iter_item_ids(self) -> Iterator[str]:
        """Iterate item ids in insertion order without copying the list.

        The packed representation extends its interning tables from a
        slice of this iterator; :meth:`item_ids` would copy every id on
        each incremental repack.
        """
        return iter(self._by_item)

    def mean_rating(self, user_id: str) -> float:
        """``μ_u`` — the mean of the ratings of ``user_id``.

        Raises :class:`UnknownUserError` when the user has no ratings,
        because the Pearson correlation (Eq. 2) is undefined then.
        """
        ratings = self._by_user.get(user_id)
        if not ratings:
            raise UnknownUserError(user_id)
        return sum(ratings.values()) / len(ratings)

    def co_rated_items(self, user_a: str, user_b: str) -> set[str]:
        """``I(u) ∩ I(u')`` — the items rated by both users."""
        return self.item_ids_of(user_a) & self.item_ids_of(user_b)

    def unrated_items(self, user_id: str, candidate_items: Iterable[str]) -> list[str]:
        """Subset of ``candidate_items`` the user has not rated (order kept)."""
        rated = self._by_user.get(user_id, {})
        return [item_id for item_id in candidate_items if item_id not in rated]

    def items_unrated_by_all(self, user_ids: Iterable[str]) -> list[str]:
        """Items in the matrix that *no* user in ``user_ids`` has rated.

        This is the candidate set of Definition 2 (``∀u ∈ G,
        ∄rating(u, i)``) and of MapReduce Job 1.

        **Ordering contract**: the result is in matrix item-insertion
        order (the order of :meth:`item_ids`), which is also the packed
        intern order of :class:`~repro.kernels.PackedRatings`.  Ranking
        tie-breaks downstream consume this order, and the packed
        candidate scan (:func:`~repro.kernels.items_unrated_by_all_packed`)
        is bit-identical to this method by construction.
        """
        rated: set[str] = set()
        for user_id in user_ids:
            rated.update(self._by_user.get(user_id, ()))
        return [item_id for item_id in self._by_item if item_id not in rated]

    # -- iteration -----------------------------------------------------------------

    def __iter__(self) -> Iterator[Rating]:
        for user_id, items in self._by_user.items():
            for item_id, value in items.items():
                yield Rating(user_id, item_id, value)

    def triples(self) -> list[tuple[str, str, float]]:
        """All ratings as ``(user, item, value)`` triples (MapReduce input)."""
        return [rating.as_triple() for rating in self]

    def __len__(self) -> int:
        return self.num_ratings

    def __contains__(self, key: object) -> bool:
        if not isinstance(key, tuple) or len(key) != 2:
            return False
        user_id, item_id = key
        return self.has_rating(user_id, item_id)

    # -- serialization ----------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Serialise the matrix to plain JSON-friendly types."""
        return {
            "scale": list(self._scale),
            "ratings": [list(triple) for triple in self.triples()],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RatingMatrix":
        """Rebuild a matrix from :meth:`to_dict` output.

        The payload may carry optional ``user_order`` / ``item_order``
        id lists (the packed-spill publisher adds them): replaying the
        user-grouped triples reproduces the user insertion order but
        not the *item* first-occurrence order, and the packed interning
        tables — hence the mmap'd spill validation — are defined by
        both.  When present, the dicts are pre-seeded in those orders
        so insertion order survives the JSON round-trip bit-for-bit.
        """
        scale = tuple(payload.get("scale", (1.0, 5.0)))
        matrix = cls(scale=scale)  # type: ignore[arg-type]
        for user_id in payload.get("user_order", ()):
            matrix._by_user.setdefault(user_id, {})
        for item_id in payload.get("item_order", ()):
            matrix._by_item.setdefault(item_id, {})
        for user_id, item_id, value in payload.get("ratings", []):
            matrix.add(user_id, item_id, value)
        # Drop any seeded entry the ratings never filled (a stale order
        # list must not fabricate empty users/items).
        for user_id in [u for u, row in matrix._by_user.items() if not row]:
            del matrix._by_user[user_id]
        for item_id in [i for i, col in matrix._by_item.items() if not col]:
            del matrix._by_item[item_id]
        return matrix

    def copy(self) -> "RatingMatrix":
        """Deep copy of the matrix."""
        return RatingMatrix(self.triples(), scale=self._scale)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RatingMatrix(users={self.num_users}, items={self.num_items}, "
            f"ratings={self.num_ratings})"
        )
