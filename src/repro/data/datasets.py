"""Synthetic health dataset generation.

The paper evaluates on private data from the iManageCancer project: an
expert-curated corpus of health documents and the ratings that patients
of the iPHR system gave them.  Neither is publicly available, so this
module generates a *synthetic equivalent* that exercises exactly the
same code paths:

* an :class:`~repro.data.items.ItemCatalog` of health documents, each
  labelled with topics drawn from a realistic health vocabulary and
  linked to ontology concepts;
* a :class:`~repro.data.users.UserRegistry` of patients with personal
  health records whose problems are drawn from the SNOMED-like ontology;
* a :class:`~repro.data.ratings.RatingMatrix` produced by a latent
  topic-preference model: every user has a preference vector over
  topics, the expected rating of a document is an affine function of
  the preference for its topics, and Gaussian noise plus rounding to
  the 1..5 scale is applied.

Everything is deterministic for a fixed seed, so tests and benchmarks
are reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from ..ontology.ontology import HealthOntology
from ..ontology.snomed import build_snomed_like_ontology
from .groups import Group
from .items import HealthDocument, ItemCatalog
from .phr import HealthProblem, Medication, PersonalHealthRecord
from .ratings import RatingMatrix
from .users import User, UserRegistry

#: Health content topics used to label synthetic documents.
DEFAULT_TOPICS: tuple[str, ...] = (
    "nutrition",
    "exercise",
    "chemotherapy",
    "radiotherapy",
    "pain management",
    "mental health",
    "sleep",
    "medication safety",
    "side effects",
    "cardiology",
    "diabetes",
    "respiratory care",
    "physiotherapy",
    "palliative care",
    "clinical trials",
)

#: Words used to build synthetic document bodies, grouped per topic.
_TOPIC_VOCABULARY: dict[str, tuple[str, ...]] = {
    "nutrition": ("diet", "protein", "vitamin", "meal", "fiber", "appetite"),
    "exercise": ("walking", "strength", "aerobic", "stretching", "activity"),
    "chemotherapy": ("cycle", "infusion", "dose", "cytotoxic", "regimen"),
    "radiotherapy": ("radiation", "fraction", "beam", "skin", "fatigue"),
    "pain management": ("analgesic", "opioid", "relief", "chronic", "dosage"),
    "mental health": ("anxiety", "depression", "coping", "support", "therapy"),
    "sleep": ("insomnia", "rest", "melatonin", "routine", "apnea"),
    "medication safety": ("interaction", "adverse", "pharmacist", "label"),
    "side effects": ("nausea", "fatigue", "hairloss", "neuropathy", "rash"),
    "cardiology": ("blood", "pressure", "cholesterol", "heart", "statin"),
    "diabetes": ("glucose", "insulin", "sugar", "carbohydrate", "monitor"),
    "respiratory care": ("breathing", "inhaler", "oxygen", "cough", "airway"),
    "physiotherapy": ("mobility", "rehabilitation", "posture", "balance"),
    "palliative care": ("comfort", "hospice", "quality", "symptom", "family"),
    "clinical trials": ("enrollment", "placebo", "protocol", "consent"),
}

#: Medication names used to populate synthetic PHRs.
_MEDICATIONS: tuple[str, ...] = (
    "Ramipril 10 MG Oral Capsule",
    "Niacin 500 MG Extended Release Tablet",
    "Metformin 850 MG Tablet",
    "Atorvastatin 20 MG Tablet",
    "Salbutamol 100 MCG Inhaler",
    "Omeprazole 20 MG Capsule",
    "Levothyroxine 50 MCG Tablet",
    "Paracetamol 500 MG Tablet",
    "Ibuprofen 400 MG Tablet",
    "Amoxicillin 500 MG Capsule",
)


@dataclass
class DatasetConfig:
    """Parameters of the synthetic dataset generator.

    Parameters
    ----------
    num_users:
        Number of patients to generate.
    num_items:
        Number of health documents to generate.
    ratings_per_user:
        Average number of ratings each patient contributes.
    num_topics_per_user:
        Number of topics each patient is interested in.
    num_problems_per_user:
        Number of health problems recorded per patient PHR.
    rating_noise:
        Standard deviation of the Gaussian noise added to the expected
        rating before clamping/rounding.
    integer_ratings:
        When true ratings are rounded to whole stars (the paper's 1..5
        scale); otherwise they stay fractional inside the scale.
    topics:
        Topic vocabulary; defaults to :data:`DEFAULT_TOPICS`.
    seed:
        Seed of the deterministic random generator.
    """

    num_users: int = 100
    num_items: int = 200
    ratings_per_user: int = 25
    num_topics_per_user: int = 3
    num_problems_per_user: int = 2
    rating_noise: float = 0.5
    integer_ratings: bool = True
    topics: Sequence[str] = DEFAULT_TOPICS
    seed: int = 7

    def __post_init__(self) -> None:
        if self.num_users <= 0:
            raise ValueError("num_users must be positive")
        if self.num_items <= 0:
            raise ValueError("num_items must be positive")
        if self.ratings_per_user <= 0:
            raise ValueError("ratings_per_user must be positive")
        if self.num_topics_per_user <= 0:
            raise ValueError("num_topics_per_user must be positive")
        if self.rating_noise < 0:
            raise ValueError("rating_noise must be non-negative")
        if not self.topics:
            raise ValueError("topics must not be empty")


@dataclass
class HealthDataset:
    """A bundle of everything the recommender pipeline consumes."""

    users: UserRegistry
    items: ItemCatalog
    ratings: RatingMatrix
    ontology: HealthOntology
    config: DatasetConfig = field(default_factory=DatasetConfig)

    @property
    def num_users(self) -> int:
        """Number of generated patients."""
        return len(self.users)

    @property
    def num_items(self) -> int:
        """Number of generated documents."""
        return len(self.items)

    @property
    def num_ratings(self) -> int:
        """Number of generated ratings."""
        return self.ratings.num_ratings

    def random_group(self, size: int, seed: int = 0) -> Group:
        """Sample a caregiver group of ``size`` patients."""
        from .groups import random_group as _random_group

        return _random_group(self.users.ids(), size, seed=seed)

    def to_dict(self) -> dict[str, Any]:
        """Serialise the dataset (users, items, ratings, ontology)."""
        return {
            "users": self.users.to_dict(),
            "items": self.items.to_dict(),
            "ratings": self.ratings.to_dict(),
            "ontology": self.ontology.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "HealthDataset":
        """Rebuild a dataset from :meth:`to_dict` output."""
        return cls(
            users=UserRegistry.from_dict(payload["users"]),
            items=ItemCatalog.from_dict(payload["items"]),
            ratings=RatingMatrix.from_dict(payload["ratings"]),
            ontology=HealthOntology.from_dict(payload["ontology"]),
        )


class SyntheticHealthDataSource:
    """Deterministic generator of :class:`HealthDataset` instances."""

    def __init__(self, config: DatasetConfig | None = None) -> None:
        self.config = config or DatasetConfig()

    # -- public API -----------------------------------------------------------

    def generate(self) -> HealthDataset:
        """Generate users, items, ratings and the ontology."""
        rng = random.Random(self.config.seed)
        ontology = build_snomed_like_ontology()
        items = self._generate_items(rng)
        users, preferences = self._generate_users(rng, ontology)
        ratings = self._generate_ratings(rng, users, items, preferences)
        return HealthDataset(
            users=users,
            items=items,
            ratings=ratings,
            ontology=ontology,
            config=self.config,
        )

    # -- items ---------------------------------------------------------------------

    def _generate_items(self, rng: random.Random) -> ItemCatalog:
        catalog = ItemCatalog()
        topics = list(self.config.topics)
        for index in range(self.config.num_items):
            primary = topics[index % len(topics)]
            secondary = rng.choice(topics)
            item_topics = [primary] if primary == secondary else [primary, secondary]
            vocabulary = list(_TOPIC_VOCABULARY.get(primary, (primary,)))
            vocabulary += list(_TOPIC_VOCABULARY.get(secondary, ()))
            words = [rng.choice(vocabulary) for _ in range(30)]
            title = f"{primary.title()} guidance {index}"
            catalog.add(
                HealthDocument(
                    item_id=f"d{index:04d}",
                    title=title,
                    text=" ".join(words),
                    topics=item_topics,
                    source=f"expert-{index % 7}",
                    quality=round(rng.uniform(0.6, 1.0), 3),
                )
            )
        return catalog

    # -- users -------------------------------------------------------------------------

    def _generate_users(
        self, rng: random.Random, ontology: HealthOntology
    ) -> tuple[UserRegistry, dict[str, dict[str, float]]]:
        registry = UserRegistry()
        preferences: dict[str, dict[str, float]] = {}
        topics = list(self.config.topics)
        leaves = ontology.leaves()
        for index in range(self.config.num_users):
            user_id = f"u{index:04d}"
            liked = rng.sample(topics, min(self.config.num_topics_per_user, len(topics)))
            preference = {topic: 0.15 for topic in topics}
            for topic in liked:
                preference[topic] = rng.uniform(0.7, 1.0)
            preferences[user_id] = preference

            record = PersonalHealthRecord()
            problem_count = min(self.config.num_problems_per_user, len(leaves))
            for concept_id in rng.sample(leaves, problem_count):
                concept = ontology.get(concept_id)
                record.add_problem(
                    HealthProblem(name=concept.name, concept_id=concept_id)
                )
            record.add_medication(Medication(name=rng.choice(_MEDICATIONS)))

            registry.add(
                User(
                    user_id=user_id,
                    name=f"Patient {index}",
                    age=rng.randint(18, 90),
                    gender=rng.choice(["Female", "Male"]),
                    record=record,
                )
            )
        return registry, preferences

    # -- ratings -------------------------------------------------------------------------

    def _generate_ratings(
        self,
        rng: random.Random,
        users: UserRegistry,
        items: ItemCatalog,
        preferences: Mapping[str, Mapping[str, float]],
    ) -> RatingMatrix:
        matrix = RatingMatrix(scale=(1.0, 5.0))
        item_ids = items.ids()
        for user in users:
            count = min(self.config.ratings_per_user, len(item_ids))
            rated_items = rng.sample(item_ids, count)
            for item_id in rated_items:
                value = self._expected_rating(
                    rng, preferences[user.user_id], items.get(item_id)
                )
                matrix.add(user.user_id, item_id, value)
        return matrix

    def _expected_rating(
        self,
        rng: random.Random,
        preference: Mapping[str, float],
        item: HealthDocument,
    ) -> float:
        if item.topics:
            affinity = sum(preference.get(topic, 0.15) for topic in item.topics)
            affinity /= len(item.topics)
        else:
            affinity = 0.5
        expected = 1.0 + 4.0 * affinity
        noisy = expected + rng.gauss(0.0, self.config.rating_noise)
        clamped = min(5.0, max(1.0, noisy))
        if self.config.integer_ratings:
            return float(round(clamped))
        return round(clamped, 3)


def generate_dataset(
    num_users: int = 100,
    num_items: int = 200,
    ratings_per_user: int = 25,
    seed: int = 7,
    **overrides: Any,
) -> HealthDataset:
    """Convenience wrapper around :class:`SyntheticHealthDataSource`."""
    config = DatasetConfig(
        num_users=num_users,
        num_items=num_items,
        ratings_per_user=ratings_per_user,
        seed=seed,
        **overrides,
    )
    return SyntheticHealthDataSource(config).generate()


def paper_example_users(ontology: HealthOntology | None = None) -> UserRegistry:
    """The three example patients of Table I.

    Patient 1: acute bronchitis, Ramipril, female, 40.
    Patient 2: chest pains, Niacin, male, 53.
    Patient 3: tracheobronchitis + broken arm, Ramipril, male, 34.
    """
    from ..ontology.snomed import (
        ACUTE_BRONCHITIS,
        BROKEN_ARM,
        CHEST_PAIN,
        TRACHEOBRONCHITIS,
    )

    registry = UserRegistry()
    patient1 = User(
        user_id="patient-1",
        name="Patient 1",
        age=40,
        gender="Female",
        record=PersonalHealthRecord(
            problems=[
                HealthProblem(name="Acute bronchitis", concept_id=ACUTE_BRONCHITIS)
            ],
            medications=[Medication(name="Ramipril 10 MG Oral Capsule")],
        ),
    )
    patient2 = User(
        user_id="patient-2",
        name="Patient 2",
        age=53,
        gender="Male",
        record=PersonalHealthRecord(
            problems=[HealthProblem(name="Chest pains", concept_id=CHEST_PAIN)],
            medications=[
                Medication(name="Niacin 500 MG Extended Release Tablet")
            ],
        ),
    )
    patient3 = User(
        user_id="patient-3",
        name="Patient 3",
        age=34,
        gender="Male",
        record=PersonalHealthRecord(
            problems=[
                HealthProblem(
                    name="Tracheobronchitis", concept_id=TRACHEOBRONCHITIS
                ),
                HealthProblem(name="Broken arm", concept_id=BROKEN_ARM),
            ],
            medications=[Medication(name="Ramipril 10 MG Oral Capsule")],
        ),
    )
    registry.add(patient1)
    registry.add(patient2)
    registry.add(patient3)
    return registry
