"""Persistence helpers (JSON and CSV).

Every data object in :mod:`repro.data` exposes ``to_dict``/``from_dict``;
this module adds the small amount of glue needed to round-trip those
payloads through files, plus CSV import/export for rating triples (the
natural interchange format with external recommender datasets).
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any

from ..exceptions import SerializationError
from .datasets import HealthDataset
from .ratings import RatingMatrix


def save_json(payload: Any, path: str | Path, indent: int = 2) -> Path:
    """Write ``payload`` as JSON to ``path`` and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    try:
        with path.open("w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=indent, sort_keys=False)
    except TypeError as exc:
        raise SerializationError(f"payload is not JSON serialisable: {exc}") from exc
    return path


def load_json(path: str | Path) -> Any:
    """Load JSON from ``path``; raise :class:`SerializationError` on failure."""
    path = Path(path)
    try:
        with path.open("r", encoding="utf-8") as handle:
            return json.load(handle)
    except FileNotFoundError:
        raise SerializationError(f"file not found: {path}") from None
    except json.JSONDecodeError as exc:
        raise SerializationError(f"invalid JSON in {path}: {exc}") from exc


def save_dataset(dataset: HealthDataset, path: str | Path) -> Path:
    """Persist a full :class:`HealthDataset` to one JSON file."""
    return save_json(dataset.to_dict(), path)


def load_dataset(path: str | Path) -> HealthDataset:
    """Load a :class:`HealthDataset` previously saved with :func:`save_dataset`."""
    payload = load_json(path)
    try:
        return HealthDataset.from_dict(payload)
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"malformed dataset file {path}: {exc}") from exc


def save_ratings_csv(matrix: RatingMatrix, path: str | Path) -> Path:
    """Write rating triples as ``user_id,item_id,rating`` CSV rows."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["user_id", "item_id", "rating"])
        for user_id, item_id, value in matrix.triples():
            writer.writerow([user_id, item_id, value])
    return path


def load_ratings_csv(
    path: str | Path, scale: tuple[float, float] = (1.0, 5.0)
) -> RatingMatrix:
    """Read a rating-triple CSV produced by :func:`save_ratings_csv`.

    The header row is optional; malformed rows raise
    :class:`SerializationError` with the offending line number.
    """
    path = Path(path)
    matrix = RatingMatrix(scale=scale)
    try:
        with path.open("r", encoding="utf-8", newline="") as handle:
            reader = csv.reader(handle)
            for line_number, row in enumerate(reader, start=1):
                if not row:
                    continue
                if line_number == 1 and row[:3] == ["user_id", "item_id", "rating"]:
                    continue
                if len(row) < 3:
                    raise SerializationError(
                        f"{path}:{line_number}: expected 3 columns, got {len(row)}"
                    )
                user_id, item_id, value = row[0], row[1], row[2]
                try:
                    matrix.add(user_id, item_id, float(value))
                except ValueError as exc:
                    raise SerializationError(
                        f"{path}:{line_number}: invalid rating {value!r}: {exc}"
                    ) from exc
    except FileNotFoundError:
        raise SerializationError(f"file not found: {path}") from None
    return matrix
