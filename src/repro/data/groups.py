"""Caregiver groups.

The paper's central use case is a *caregiver responsible for a group of
patients* (Section III.C).  A :class:`Group` is an ordered collection of
member user ids plus an optional caregiver id and label.  Helper
constructors build groups of controllable coherence from a rating
matrix, which the evaluation harness uses for the aggregation and
fairness ablations.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Mapping, Sequence

from ..exceptions import EmptyGroupError
from .ratings import RatingMatrix


@dataclass
class Group:
    """A caregiver group of patients.

    Parameters
    ----------
    member_ids:
        Ordered list of member user ids.  Duplicates are removed while
        preserving the first occurrence.
    caregiver_id:
        Optional id of the caregiver who owns the group.
    name:
        Optional display name.
    """

    member_ids: list[str]
    caregiver_id: str = ""
    name: str = ""
    attributes: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        deduped: list[str] = []
        seen: set[str] = set()
        for member_id in self.member_ids:
            if member_id not in seen:
                deduped.append(member_id)
                seen.add(member_id)
        if not deduped:
            raise EmptyGroupError("a group must contain at least one member")
        self.member_ids = deduped

    def __iter__(self) -> Iterator[str]:
        return iter(self.member_ids)

    def __len__(self) -> int:
        return len(self.member_ids)

    def __contains__(self, user_id: object) -> bool:
        return user_id in set(self.member_ids)

    @property
    def size(self) -> int:
        """Number of members (``|G|``)."""
        return len(self.member_ids)

    def to_dict(self) -> dict[str, Any]:
        """Serialise the group to plain JSON-friendly types."""
        return {
            "member_ids": list(self.member_ids),
            "caregiver_id": self.caregiver_id,
            "name": self.name,
            "attributes": dict(self.attributes),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Group":
        """Rebuild a group from :meth:`to_dict` output."""
        return cls(
            member_ids=list(payload["member_ids"]),
            caregiver_id=payload.get("caregiver_id", ""),
            name=payload.get("name", ""),
            attributes=dict(payload.get("attributes", {})),
        )


def random_group(
    user_ids: Sequence[str],
    size: int,
    seed: int = 0,
    caregiver_id: str = "caregiver",
    name: str = "random group",
) -> Group:
    """Sample a group of ``size`` members uniformly from ``user_ids``."""
    if size <= 0:
        raise EmptyGroupError("group size must be positive")
    if size > len(user_ids):
        raise ValueError(
            f"cannot sample a group of {size} from {len(user_ids)} users"
        )
    rng = random.Random(seed)
    members = rng.sample(list(user_ids), size)
    return Group(member_ids=members, caregiver_id=caregiver_id, name=name)


def similar_group(
    matrix: RatingMatrix,
    anchor_user: str,
    size: int,
    seed: int = 0,
    caregiver_id: str = "caregiver",
) -> Group:
    """Build a *coherent* group around ``anchor_user``.

    Members are the users with the largest rating overlap with the
    anchor (ties broken deterministically, then randomly with ``seed``).
    Coherent groups are the easy case for group recommendation; the
    evaluation harness contrasts them with :func:`diverse_group`.
    """
    if size <= 0:
        raise EmptyGroupError("group size must be positive")
    anchor_items = matrix.item_ids_of(anchor_user)
    overlaps: list[tuple[int, str]] = []
    for user_id in matrix.user_ids():
        if user_id == anchor_user:
            continue
        overlap = len(anchor_items & matrix.item_ids_of(user_id))
        overlaps.append((overlap, user_id))
    rng = random.Random(seed)
    rng.shuffle(overlaps)
    overlaps.sort(key=lambda pair: pair[0], reverse=True)
    members = [anchor_user] + [user_id for _, user_id in overlaps[: size - 1]]
    if len(members) < size:
        raise ValueError(
            f"not enough users to build a group of {size} around {anchor_user!r}"
        )
    return Group(member_ids=members, caregiver_id=caregiver_id, name="similar group")


def diverse_group(
    matrix: RatingMatrix,
    anchor_user: str,
    size: int,
    seed: int = 0,
    caregiver_id: str = "caregiver",
) -> Group:
    """Build a *divergent* group around ``anchor_user``.

    Members are the users with the smallest rating overlap with the
    anchor.  Divergent groups stress the fairness-aware selection: the
    average aggregation tends to leave the anchor unsatisfied, which is
    exactly the scenario motivating Definition 3.
    """
    if size <= 0:
        raise EmptyGroupError("group size must be positive")
    anchor_items = matrix.item_ids_of(anchor_user)
    overlaps: list[tuple[int, str]] = []
    for user_id in matrix.user_ids():
        if user_id == anchor_user:
            continue
        overlap = len(anchor_items & matrix.item_ids_of(user_id))
        overlaps.append((overlap, user_id))
    rng = random.Random(seed)
    rng.shuffle(overlaps)
    overlaps.sort(key=lambda pair: pair[0])
    members = [anchor_user] + [user_id for _, user_id in overlaps[: size - 1]]
    if len(members) < size:
        raise ValueError(
            f"not enough users to build a group of {size} around {anchor_user!r}"
        )
    return Group(member_ids=members, caregiver_id=caregiver_id, name="diverse group")
