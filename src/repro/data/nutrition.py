"""Nutrition workload generator.

The published demonstrator behind the paper was evaluated with
food/nutrition content (patients rating recipes and dietary guidance).
That data is not public, so this module synthesises a nutrition-flavoured
workload with the same structure: *recipes* with nutrient profiles and
dietary tags, and patients whose ratings follow their dietary needs
(e.g. a diabetic patient prefers low-sugar recipes, a hypertensive
patient prefers low-sodium ones).

The output plugs into the exact same :class:`~repro.data.ratings.RatingMatrix`
/ :class:`~repro.data.items.ItemCatalog` interfaces as the generic health
dataset, so the recommender code path is identical; only the workload
semantics change.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Mapping, Sequence

from ..ontology.snomed import build_snomed_like_ontology
from .datasets import DatasetConfig, HealthDataset
from .items import HealthDocument, ItemCatalog
from .phr import HealthProblem, PersonalHealthRecord
from .ratings import RatingMatrix
from .users import User, UserRegistry

#: Dietary conditions with the nutrient each one is sensitive to.
#: ``(condition name, ontology concept id, nutrient, preferred_low)``
DIETARY_CONDITIONS: tuple[tuple[str, str, str, bool], ...] = (
    ("Diabetes mellitus type 2", "SCT-ENDO-0004", "sugar", True),
    ("Hypertensive disorder", "SCT-CARD-0003", "sodium", True),
    ("Obesity", "SCT-ENDO-0008", "calories", True),
    ("Malignant neoplastic disease", "SCT-NEOP-0002", "protein", False),
    ("Osteoporosis", "SCT-MUSC-0030", "calcium", False),
    ("Heart failure", "SCT-CARD-0009", "saturated_fat", True),
)

#: Recipe categories used to label the generated items.
RECIPE_CATEGORIES: tuple[str, ...] = (
    "breakfast",
    "soup",
    "salad",
    "main course",
    "dessert",
    "smoothie",
    "snack",
)

#: Base ingredient words per category used to synthesise recipe text.
_CATEGORY_INGREDIENTS: dict[str, tuple[str, ...]] = {
    "breakfast": ("oats", "yogurt", "banana", "eggs", "wholegrain", "berries"),
    "soup": ("lentil", "tomato", "carrot", "broth", "celery", "onion"),
    "salad": ("spinach", "quinoa", "avocado", "cucumber", "feta", "olive"),
    "main course": ("salmon", "chicken", "brown rice", "broccoli", "tofu"),
    "dessert": ("dark chocolate", "honey", "almond", "apple", "cinnamon"),
    "smoothie": ("kale", "mango", "protein powder", "chia", "soy milk"),
    "snack": ("walnut", "hummus", "carrot sticks", "rice cakes", "cheese"),
}

#: Nutrients tracked per recipe.
NUTRIENTS: tuple[str, ...] = (
    "calories",
    "sugar",
    "sodium",
    "protein",
    "calcium",
    "saturated_fat",
    "fiber",
)


@dataclass(frozen=True)
class Recipe:
    """A nutrition item before conversion to :class:`HealthDocument`.

    Nutrient amounts are normalised to ``[0, 1]`` where 1 means "high in
    this nutrient relative to the catalog".
    """

    item_id: str
    name: str
    category: str
    nutrients: Mapping[str, float]

    def to_document(self) -> HealthDocument:
        """Convert the recipe into a recommendable health document."""
        nutrient_tags = [
            f"{'high' if amount >= 0.5 else 'low'} {nutrient}"
            for nutrient, amount in sorted(self.nutrients.items())
        ]
        ingredients = _CATEGORY_INGREDIENTS.get(self.category, ())
        text = " ".join(list(ingredients) + nutrient_tags)
        return HealthDocument(
            item_id=self.item_id,
            title=self.name,
            text=text,
            topics=["nutrition", self.category],
            source="nutrition-db",
            quality=1.0,
        )


@dataclass
class NutritionConfig:
    """Parameters of the nutrition workload generator."""

    num_users: int = 80
    num_recipes: int = 150
    ratings_per_user: int = 20
    rating_noise: float = 0.4
    integer_ratings: bool = True
    seed: int = 11

    def __post_init__(self) -> None:
        if self.num_users <= 0:
            raise ValueError("num_users must be positive")
        if self.num_recipes <= 0:
            raise ValueError("num_recipes must be positive")
        if self.ratings_per_user <= 0:
            raise ValueError("ratings_per_user must be positive")
        if self.rating_noise < 0:
            raise ValueError("rating_noise must be non-negative")


class NutritionDataSource:
    """Deterministic generator of nutrition-flavoured datasets."""

    def __init__(self, config: NutritionConfig | None = None) -> None:
        self.config = config or NutritionConfig()

    def generate(self) -> HealthDataset:
        """Generate recipes, patients with dietary conditions, and ratings."""
        rng = random.Random(self.config.seed)
        ontology = build_snomed_like_ontology()
        recipes = self.generate_recipes(rng)
        catalog = ItemCatalog(recipe.to_document() for recipe in recipes)
        users, conditions = self._generate_users(rng)
        ratings = self._generate_ratings(rng, users, recipes, conditions)
        dataset_config = DatasetConfig(
            num_users=self.config.num_users,
            num_items=self.config.num_recipes,
            ratings_per_user=self.config.ratings_per_user,
            rating_noise=self.config.rating_noise,
            integer_ratings=self.config.integer_ratings,
            seed=self.config.seed,
        )
        return HealthDataset(
            users=users,
            items=catalog,
            ratings=ratings,
            ontology=ontology,
            config=dataset_config,
        )

    # -- recipes ---------------------------------------------------------------

    def generate_recipes(self, rng: random.Random | None = None) -> list[Recipe]:
        """Generate the synthetic recipe catalog."""
        rng = rng or random.Random(self.config.seed)
        recipes: list[Recipe] = []
        for index in range(self.config.num_recipes):
            category = RECIPE_CATEGORIES[index % len(RECIPE_CATEGORIES)]
            nutrients = {
                nutrient: round(rng.random(), 3) for nutrient in NUTRIENTS
            }
            recipes.append(
                Recipe(
                    item_id=f"r{index:04d}",
                    name=f"{category.title()} recipe {index}",
                    category=category,
                    nutrients=nutrients,
                )
            )
        return recipes

    # -- users ---------------------------------------------------------------------

    def _generate_users(
        self, rng: random.Random
    ) -> tuple[UserRegistry, dict[str, list[tuple[str, bool]]]]:
        registry = UserRegistry()
        conditions: dict[str, list[tuple[str, bool]]] = {}
        for index in range(self.config.num_users):
            user_id = f"n{index:04d}"
            count = rng.choice([1, 1, 2])
            assigned = rng.sample(list(DIETARY_CONDITIONS), count)
            record = PersonalHealthRecord()
            sensitivities: list[tuple[str, bool]] = []
            for name, concept_id, nutrient, preferred_low in assigned:
                record.add_problem(HealthProblem(name=name, concept_id=concept_id))
                sensitivities.append((nutrient, preferred_low))
            conditions[user_id] = sensitivities
            registry.add(
                User(
                    user_id=user_id,
                    name=f"Nutrition patient {index}",
                    age=rng.randint(25, 85),
                    gender=rng.choice(["Female", "Male"]),
                    record=record,
                )
            )
        return registry, conditions

    # -- ratings -------------------------------------------------------------------------

    def _generate_ratings(
        self,
        rng: random.Random,
        users: UserRegistry,
        recipes: Sequence[Recipe],
        conditions: Mapping[str, Sequence[tuple[str, bool]]],
    ) -> RatingMatrix:
        matrix = RatingMatrix(scale=(1.0, 5.0))
        recipe_list = list(recipes)
        for user in users:
            count = min(self.config.ratings_per_user, len(recipe_list))
            sampled = rng.sample(recipe_list, count)
            for recipe in sampled:
                value = self._recipe_rating(
                    rng, recipe, conditions.get(user.user_id, ())
                )
                matrix.add(user.user_id, recipe.item_id, value)
        return matrix

    def _recipe_rating(
        self,
        rng: random.Random,
        recipe: Recipe,
        sensitivities: Sequence[tuple[str, bool]],
    ) -> float:
        """Expected rating given the patient's dietary sensitivities.

        A recipe scores high when its sensitive nutrients go in the
        preferred direction (low for restricted nutrients, high for
        recommended ones); without conditions the patient is neutral.
        """
        if sensitivities:
            satisfaction = 0.0
            for nutrient, preferred_low in sensitivities:
                amount = recipe.nutrients.get(nutrient, 0.5)
                satisfaction += (1.0 - amount) if preferred_low else amount
            satisfaction /= len(sensitivities)
        else:
            satisfaction = 0.5
        expected = 1.0 + 4.0 * satisfaction
        noisy = expected + rng.gauss(0.0, self.config.rating_noise)
        clamped = min(5.0, max(1.0, noisy))
        if self.config.integer_ratings:
            return float(round(clamped))
        return round(clamped, 3)


def generate_nutrition_dataset(
    num_users: int = 80,
    num_recipes: int = 150,
    ratings_per_user: int = 20,
    seed: int = 11,
) -> HealthDataset:
    """Convenience wrapper around :class:`NutritionDataSource`."""
    config = NutritionConfig(
        num_users=num_users,
        num_recipes=num_recipes,
        ratings_per_user=ratings_per_user,
        seed=seed,
    )
    return NutritionDataSource(config).generate()
