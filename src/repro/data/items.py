"""Health document items and catalog.

The items recommended by the paper's system are expert-curated health
documents that patients rate through the iPHR search interface.  An item
here carries an identifier, a title, body text, a topic label, and
optional quality / provenance metadata (mirroring the paper's concern for
expert-controlled quality).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Mapping

from ..exceptions import UnknownItemError


@dataclass
class HealthDocument:
    """A recommendable item (an online health document).

    Parameters
    ----------
    item_id:
        Stable unique identifier (e.g. ``"d0031"``).
    title:
        Document title.
    text:
        Body text; used by content-oriented extensions and examples.
    topics:
        Topic labels (e.g. ``["nutrition", "chemotherapy"]``) used by the
        synthetic rating generator to give users coherent tastes.
    source:
        Provenance of the document (site or expert who curated it).
    quality:
        Expert quality score in ``[0, 1]``; purely descriptive metadata.
    concept_ids:
        Health ontology concepts the document is about, enabling
        semantic-aware workloads.
    """

    item_id: str
    title: str = ""
    text: str = ""
    topics: list[str] = field(default_factory=list)
    source: str = ""
    quality: float = 1.0
    concept_ids: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.item_id:
            raise ValueError("item_id must be a non-empty string")
        if not 0.0 <= self.quality <= 1.0:
            raise ValueError(f"quality must be in [0, 1], got {self.quality}")

    def full_text(self) -> str:
        """Title plus body, used by TF-IDF based content extensions."""
        return f"{self.title} {self.text}".strip()

    def to_dict(self) -> dict[str, Any]:
        """Serialise the document to plain JSON-friendly types."""
        return {
            "item_id": self.item_id,
            "title": self.title,
            "text": self.text,
            "topics": list(self.topics),
            "source": self.source,
            "quality": self.quality,
            "concept_ids": list(self.concept_ids),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "HealthDocument":
        """Rebuild a document from :meth:`to_dict` output."""
        return cls(
            item_id=payload["item_id"],
            title=payload.get("title", ""),
            text=payload.get("text", ""),
            topics=list(payload.get("topics", [])),
            source=payload.get("source", ""),
            quality=payload.get("quality", 1.0),
            concept_ids=list(payload.get("concept_ids", [])),
        )


class ItemCatalog:
    """Ordered collection of :class:`HealthDocument` objects."""

    def __init__(self, items: Iterable[HealthDocument] = ()) -> None:
        self._items: dict[str, HealthDocument] = {}
        for item in items:
            self.add(item)

    # -- mutation ---------------------------------------------------------

    def add(self, item: HealthDocument) -> None:
        """Register ``item``; replaces any existing item with the same id."""
        self._items[item.item_id] = item

    def remove(self, item_id: str) -> None:
        """Remove an item; raise :class:`UnknownItemError` when absent."""
        try:
            del self._items[item_id]
        except KeyError:
            raise UnknownItemError(item_id) from None

    # -- access -----------------------------------------------------------

    def get(self, item_id: str) -> HealthDocument:
        """Return the item with ``item_id`` or raise UnknownItemError."""
        try:
            return self._items[item_id]
        except KeyError:
            raise UnknownItemError(item_id) from None

    def __getitem__(self, item_id: str) -> HealthDocument:
        return self.get(item_id)

    def __contains__(self, item_id: object) -> bool:
        return item_id in self._items

    def __iter__(self) -> Iterator[HealthDocument]:
        return iter(self._items.values())

    def __len__(self) -> int:
        return len(self._items)

    def ids(self) -> list[str]:
        """All item ids in insertion order."""
        return list(self._items.keys())

    def items(self) -> list[HealthDocument]:
        """All documents in insertion order."""
        return list(self._items.values())

    def by_topic(self, topic: str) -> list[HealthDocument]:
        """All documents labelled with ``topic``."""
        return [item for item in self if topic in item.topics]

    def topics(self) -> list[str]:
        """Sorted list of all distinct topic labels in the catalog."""
        labels = {topic for item in self for topic in item.topics}
        return sorted(labels)

    # -- serialization ----------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Serialise the catalog to plain types."""
        return {"items": [item.to_dict() for item in self]}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ItemCatalog":
        """Rebuild a catalog from :meth:`to_dict` output."""
        return cls(
            HealthDocument.from_dict(entry) for entry in payload.get("items", [])
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ItemCatalog({len(self)} items)"
