"""Million-user synthetic workload generator for the scale benchmarks.

The topic-preference generator of :mod:`repro.data.datasets` builds a
full PHR, ontology links and document bodies per entity — faithful, but
far too slow past ~10⁴ users.  The scale benchmarks only need the
*shape* of a large deployment:

* **Zipf item popularity** — a handful of documents absorb most of the
  ratings (the head every real catalogue has), which is what stresses
  the inverted-index walks of the similarity kernels;
* **power-law group sizes** — most caregiver groups are small, a few
  are large, drawn from a discrete power law over
  ``[min_group_size, max_group_size]``;
* **determinism** — one ``random.Random(seed)`` drives everything, so
  a given :class:`ScaleConfig` always produces the same dataset and
  the benchmark numbers are reproducible.

Users carry no PHR and documents no text: the recommender's hot paths
(similarity, candidate scan, top-k) never read them, and skipping them
keeps generation at roughly a second per 10⁵ users.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass

from ..ontology.ontology import HealthOntology
from .datasets import DatasetConfig, HealthDataset
from .groups import Group
from .items import HealthDocument, ItemCatalog
from .ratings import RatingMatrix
from .users import User, UserRegistry


@dataclass
class ScaleConfig:
    """Parameters of the scale-workload generator.

    Parameters
    ----------
    num_users:
        Number of users (the axis the scale proof sweeps, 10⁵–10⁶).
    num_items:
        Catalogue size; kept small relative to the user count so the
        popular items accumulate realistic ``U(i)`` fan-in.
    ratings_per_user:
        Distinct items each user rates (sampled from the Zipf head).
    zipf_exponent:
        Exponent ``s`` of the item-popularity law ``p(rank) ∝ rank^-s``.
    group_size_exponent:
        Exponent of the discrete power law the group sizes are drawn
        from (larger → small groups dominate harder).
    min_group_size / max_group_size:
        Inclusive bounds of a sampled caregiver group.
    seed:
        Seed of the deterministic generator.
    """

    num_users: int = 100_000
    num_items: int = 2_000
    ratings_per_user: int = 20
    zipf_exponent: float = 1.05
    group_size_exponent: float = 2.5
    min_group_size: int = 2
    max_group_size: int = 10
    seed: int = 7

    def __post_init__(self) -> None:
        if self.num_users <= 0:
            raise ValueError("num_users must be positive")
        if self.num_items <= 0:
            raise ValueError("num_items must be positive")
        if not 0 < self.ratings_per_user <= self.num_items:
            raise ValueError(
                "ratings_per_user must be in 1..num_items "
                f"(got {self.ratings_per_user} of {self.num_items})"
            )
        if self.zipf_exponent <= 0:
            raise ValueError("zipf_exponent must be positive")
        if self.group_size_exponent <= 0:
            raise ValueError("group_size_exponent must be positive")
        if not 1 <= self.min_group_size <= self.max_group_size:
            raise ValueError(
                f"invalid group size bounds "
                f"[{self.min_group_size}, {self.max_group_size}]"
            )


def _zipf_cum_weights(count: int, exponent: float) -> list[float]:
    """Cumulative Zipf weights for ``random.Random.choices``."""
    return list(
        itertools.accumulate(
            (rank + 1) ** -exponent for rank in range(count)
        )
    )


def generate_scale_dataset(
    config: ScaleConfig | None = None,
    **overrides: object,
) -> HealthDataset:
    """Generate a lean :class:`HealthDataset` at benchmark scale.

    Keyword ``overrides`` update a default :class:`ScaleConfig` (or the
    one passed in), mirroring :func:`repro.data.datasets.generate_dataset`.
    Ratings follow a signed-taste model: each item belongs to one
    latent genre, each user draws a taste in ``[-1.5, 1.5]`` per genre,
    and ``value ≈ 3 + taste(genre) + noise`` rounded to the 1..5 scale.
    Users who agree on genres correlate positively and users with
    opposite tastes *anti*-correlate, so the Pearson spread is wide and
    a peer threshold actually selects — a shared per-item quality term
    would instead correlate everyone with everyone.
    """
    base = config or ScaleConfig()
    if overrides:
        merged = dict(base.__dict__)
        merged.update(overrides)  # type: ignore[arg-type]
        base = ScaleConfig(**merged)  # type: ignore[arg-type]
    rng = random.Random(base.seed)

    users = UserRegistry()
    id_width = len(str(base.num_users - 1))
    user_ids = [f"user-{index:0{id_width}d}" for index in range(base.num_users)]
    for user_id in user_ids:
        users.add(User(user_id))

    num_genres = 8
    items = ItemCatalog()
    item_ids = [f"item-{index:05d}" for index in range(base.num_items)]
    item_genre = []
    for item_id in item_ids:
        genre = rng.randrange(num_genres)
        item_genre.append(genre)
        items.add(
            HealthDocument(
                item_id,
                topics=[f"genre-{genre}"],
                quality=rng.random(),
            )
        )

    cum_weights = _zipf_cum_weights(base.num_items, base.zipf_exponent)
    matrix = RatingMatrix()
    # Oversample by 2x then dedupe: with the Zipf head a straight
    # k-sample collides often, and per-user rejection loops are slow.
    draw = max(base.ratings_per_user * 2, base.ratings_per_user + 4)
    indices = range(base.num_items)
    for user_id in user_ids:
        taste = [rng.uniform(-1.5, 1.5) for _ in range(num_genres)]
        picked = rng.choices(indices, cum_weights=cum_weights, k=draw)
        seen: set[int] = set()
        for item_index in picked:
            if item_index in seen:
                continue
            seen.add(item_index)
            value = 3.0 + taste[item_genre[item_index]] + rng.uniform(-0.75, 0.75)
            matrix.add(
                user_id,
                item_ids[item_index],
                float(min(5.0, max(1.0, round(value)))),
            )
            if len(seen) >= base.ratings_per_user:
                break

    dataset_config = DatasetConfig(
        num_users=base.num_users,
        num_items=base.num_items,
        ratings_per_user=base.ratings_per_user,
        seed=base.seed,
    )
    return HealthDataset(
        users=users,
        items=items,
        ratings=matrix,
        ontology=HealthOntology(),
        config=dataset_config,
    )


def sample_scale_groups(
    user_ids: list[str],
    num_groups: int,
    config: ScaleConfig | None = None,
    seed: int | None = None,
) -> list[Group]:
    """Sample ``num_groups`` caregiver groups with power-law sizes.

    Sizes are drawn from ``p(size) ∝ size^-group_size_exponent`` over
    the configured bounds; members are sampled uniformly without
    replacement.  ``seed`` defaults to the config seed so a benchmark
    can vary the request mix independently of the dataset.
    """
    base = config or ScaleConfig()
    rng = random.Random(base.seed if seed is None else seed)
    low, high = base.min_group_size, base.max_group_size
    high = min(high, len(user_ids))
    if high < low:
        raise ValueError(
            f"not enough users ({len(user_ids)}) for groups of >= {low}"
        )
    sizes = list(range(low, high + 1))
    cum_weights = list(
        itertools.accumulate(size ** -base.group_size_exponent for size in sizes)
    )
    groups = []
    for index in range(num_groups):
        size = rng.choices(sizes, cum_weights=cum_weights, k=1)[0]
        members = rng.sample(user_ids, size)
        groups.append(Group(members, name=f"scale-group-{index}"))
    return groups
