"""repro.resilience — failure policies for the distributed stack.

The policy layer the remote/pool/serving stack shares instead of
hard-coding failure behaviour per site:

* :class:`~repro.resilience.policy.RetryPolicy` — bounded attempts,
  exponential backoff, deterministic jitter (injectable clock/rng).
  Drives worker rejoin and the pool's stop escalation.
* :class:`~repro.resilience.policy.Deadline` — an end-to-end time
  budget threaded from the JSONL front end through
  ``recommend_many`` into backend dispatch; raises the typed
  :class:`~repro.exceptions.DeadlineExceeded`.
* :class:`~repro.resilience.policy.CircuitBreaker` — per-worker-host
  fault accounting with half-open probes before re-admission.
* :class:`~repro.resilience.faults.FaultPlan` /
  :class:`~repro.resilience.faults.FaultInjector` — scripted,
  deterministic fault injection for the chaos suite (drop/tear the
  Nth frame, delay heartbeats, die after task M).

``docs/RESILIENCE.md`` has the cross-layer picture: how the policies
compose with the remote backend's requeue, rejoin and degraded-mode
serving.
"""

from ..exceptions import DeadlineExceeded
from .faults import FaultInjector, FaultPlan
from .policy import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CircuitBreaker,
    Deadline,
    RetryPolicy,
)

__all__ = [
    "BREAKER_CLOSED",
    "BREAKER_HALF_OPEN",
    "BREAKER_OPEN",
    "CircuitBreaker",
    "Deadline",
    "DeadlineExceeded",
    "FaultInjector",
    "FaultPlan",
    "RetryPolicy",
]
