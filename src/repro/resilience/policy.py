"""Failure policies: bounded retries, time budgets, circuit breakers.

Three small, deterministic policy objects that the distributed stack
wires through its failure paths instead of hard-coding behaviour at
each site:

* :class:`RetryPolicy` — bounded attempts with exponential backoff and
  *deterministic* jitter: randomness comes only from an injected
  ``random.Random``, the clock only from an injected callable, so every
  retry schedule is replayable in tests.
* :class:`Deadline` — an absolute point in time a request must finish
  by, threaded from the JSONL front end through
  ``RecommendationService.recommend_many`` down to backend dispatch.
  Checks raise the typed
  :class:`~repro.exceptions.DeadlineExceeded`; dispatch loops check
  *between* tasks, so a timed-out batch never leaves half-recorded
  results.
* :class:`CircuitBreaker` — per-key (per-worker-host) failure
  accounting: ``threshold`` consecutive faults open the circuit, a
  ``cooldown`` later one half-open probe is admitted, and its outcome
  closes or re-opens the circuit.

None of these objects perform I/O or sleep on their own — callers own
the waiting (``RetryPolicy.call`` takes an injectable ``sleep``), which
keeps the policies trivially testable with fake clocks.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Iterator

from ..exceptions import ConfigurationError, DeadlineExceeded

#: Circuit states reported by :meth:`CircuitBreaker.state`.
BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half-open"


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff and deterministic jitter.

    ``delay(attempt)`` is the pause *after* failed attempt number
    ``attempt`` (1-based): ``base_delay * multiplier**(attempt-1)``,
    clamped to ``max_delay``.  With ``jitter > 0`` the delay is scaled
    by a factor drawn uniformly from ``[1-jitter, 1+jitter]`` — but
    only from an explicitly injected ``random.Random``, so two runs
    with the same seed produce the same schedule.

    The policy is a frozen dataclass: picklable (it crosses the fork
    boundary into spawned remote workers) and safely shared.

    >>> policy = RetryPolicy(max_attempts=3, base_delay=0.1, multiplier=2.0)
    >>> [round(policy.delay(n), 2) for n in policy.attempts()]
    [0.1, 0.2, 0.4]
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")
        if self.base_delay < 0:
            raise ConfigurationError("base_delay must be >= 0")
        if self.multiplier < 1.0:
            raise ConfigurationError("multiplier must be >= 1.0")
        if self.max_delay < self.base_delay:
            raise ConfigurationError(
                f"max_delay ({self.max_delay}) must be >= base_delay "
                f"({self.base_delay})"
            )
        if not 0.0 <= self.jitter < 1.0:
            raise ConfigurationError("jitter must lie in [0, 1)")

    def attempts(self) -> Iterator[int]:
        """Yield the 1-based attempt numbers: ``1 .. max_attempts``."""
        return iter(range(1, self.max_attempts + 1))

    def delay(self, attempt: int, rng: random.Random | None = None) -> float:
        """Backoff (seconds) after failed attempt ``attempt`` (1-based)."""
        if attempt < 1:
            raise ConfigurationError("attempt numbers are 1-based")
        raw = min(
            self.max_delay, self.base_delay * self.multiplier ** (attempt - 1)
        )
        if self.jitter and rng is not None:
            raw *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return max(0.0, raw)

    def call(
        self,
        fn: Callable[[], Any],
        *,
        retry_on: tuple[type[BaseException], ...] = (Exception,),
        sleep: Callable[[float], Any] = time.sleep,
        rng: random.Random | None = None,
    ) -> Any:
        """Run ``fn`` under this policy; re-raise its last failure.

        ``retry_on`` names the retriable exception types — anything
        else propagates immediately.  ``sleep`` is injectable so tests
        (and callers with cancellation events) control the waiting.
        """
        last: BaseException | None = None
        for attempt in self.attempts():
            try:
                return fn()
            except retry_on as exc:
                last = exc
                if attempt < self.max_attempts:
                    sleep(self.delay(attempt, rng))
        assert last is not None
        raise last


class Deadline:
    """An absolute completion time carried through a request's layers.

    Built once at the boundary (:meth:`after`) and passed down by
    reference; every layer asks the *same* clock, so the budget is
    end-to-end, not per-layer.  ``clock`` is injectable for tests and
    defaults to :func:`time.monotonic`.
    """

    __slots__ = ("_expires_at", "_budget", "_clock")

    def __init__(
        self,
        expires_at: float,
        budget: float,
        clock: Callable[[], float] | None = None,
    ) -> None:
        if budget <= 0:
            raise ConfigurationError("deadline budget must be positive")
        self._expires_at = expires_at
        self._budget = budget
        self._clock = clock or time.monotonic

    @classmethod
    def after(
        cls, seconds: float, clock: Callable[[], float] | None = None
    ) -> "Deadline":
        """A deadline ``seconds`` from now on ``clock``."""
        tick = clock or time.monotonic
        return cls(tick() + seconds, seconds, tick)

    @property
    def budget(self) -> float:
        """The original time budget, in seconds."""
        return self._budget

    def remaining(self) -> float:
        """Seconds left (negative once expired)."""
        return self._expires_at - self._clock()

    def expired(self) -> bool:
        """Whether the budget has run out."""
        return self.remaining() <= 0

    def check(self, context: str) -> None:
        """Raise :class:`~repro.exceptions.DeadlineExceeded` if expired.

        ``context`` names what was being attempted; it surfaces in the
        error (and the server's ``detail`` field) so a timed-out
        request says *where* the budget ran out.
        """
        remaining = self.remaining()
        if remaining <= 0:
            raise DeadlineExceeded(context, self._budget, -remaining)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Deadline(budget={self._budget:.3f}s, "
            f"remaining={self.remaining():.3f}s)"
        )


class CircuitBreaker:
    """Per-key circuit breaker: open after N consecutive faults.

    Keys are arbitrary strings (the remote backend keys by worker peer
    host).  The life cycle per key:

    * **closed** — requests flow; each :meth:`record_failure` counts,
      each :meth:`record_success` resets the count.
    * **open** — ``threshold`` consecutive failures were recorded;
      :meth:`allow` answers ``False`` until ``cooldown`` seconds pass.
    * **half-open** — after the cooldown exactly one probe is admitted
      (:meth:`allow` returns ``True`` once); its
      :meth:`record_success` closes the circuit, another failure
      re-opens it for a fresh cooldown.

    ``threshold=0`` disables the breaker entirely (always allow).
    Thread-safe: the remote backend's accept thread and collect loop
    record into the same breaker.
    """

    def __init__(
        self,
        threshold: int = 3,
        cooldown: float = 5.0,
        clock: Callable[[], float] | None = None,
    ) -> None:
        if threshold < 0:
            raise ConfigurationError("threshold must be >= 0 (0 = disabled)")
        if cooldown <= 0:
            raise ConfigurationError("cooldown must be positive")
        self.threshold = threshold
        self.cooldown = cooldown
        self._clock = clock or time.monotonic
        self._lock = threading.Lock()
        self._failures: dict[str, int] = {}
        self._opened_at: dict[str, float] = {}
        self._probing: set[str] = set()

    def record_failure(self, key: str) -> None:
        """Count one fault against ``key`` (opens at ``threshold``)."""
        if self.threshold == 0:
            return
        with self._lock:
            if key in self._probing:
                # The half-open probe failed: re-open for a new cooldown.
                self._probing.discard(key)
                self._opened_at[key] = self._clock()
                return
            count = self._failures.get(key, 0) + 1
            self._failures[key] = count
            if count >= self.threshold and key not in self._opened_at:
                self._opened_at[key] = self._clock()

    def record_success(self, key: str) -> None:
        """Reset ``key`` to closed (also resolves a half-open probe)."""
        with self._lock:
            self._failures.pop(key, None)
            self._opened_at.pop(key, None)
            self._probing.discard(key)

    def state(self, key: str) -> str:
        """``"closed"``, ``"open"`` or ``"half-open"`` for ``key``."""
        with self._lock:
            if key in self._probing:
                return BREAKER_HALF_OPEN
            opened = self._opened_at.get(key)
            if opened is None:
                return BREAKER_CLOSED
            if self._clock() - opened >= self.cooldown:
                return BREAKER_HALF_OPEN
            return BREAKER_OPEN

    def allow(self, key: str) -> bool:
        """Whether a request to ``key`` may proceed right now.

        In the half-open window this admits exactly one probe; further
        calls answer ``False`` until the probe's outcome is recorded.
        """
        if self.threshold == 0:
            return True
        with self._lock:
            opened = self._opened_at.get(key)
            if opened is None:
                return True
            if key in self._probing:
                return False
            if self._clock() - opened < self.cooldown:
                return False
            self._probing.add(key)
            return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        with self._lock:
            open_keys = sorted(self._opened_at)
        return (
            f"CircuitBreaker(threshold={self.threshold}, "
            f"cooldown={self.cooldown}, open={open_keys})"
        )
