"""Scripted, deterministic fault injection for the remote stack.

The first chaos suite for the remote backend raced real SIGKILLs
against in-flight batches — honest, but timing-dependent.  This module
is the deterministic alternative: a :class:`FaultPlan` *scripts* the
failure ("tear the 2nd RESULT frame", "die after 5 task items", "go
mute after 12 frames") and a :class:`FaultInjector` executes it at two
seams — :class:`~repro.exec.wire.FrameConnection` consults
:meth:`FaultInjector.on_send` before every outbound frame, and the
worker loop in :func:`~repro.exec.remote.run_worker` consults
:meth:`FaultInjector.should_die` / :meth:`FaultInjector.heartbeat_delay`.

The injector is addressed by *frame name* strings (``"RESULT"``,
``"HEARTBEAT"``, ...) rather than wire constants, so this module stays
import-independent of :mod:`repro.exec.wire` — the wire layer depends
on the seam, never the other way around.

Every scripted fault is counted on the injector
(``results_dropped`` / ``frames_torn`` / ``frames_muted`` /
``deaths``), so a test can assert the fault actually fired — a chaos
scenario whose injector never triggered is vacuous.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from ..exceptions import ConfigurationError

#: ``on_send`` verdicts: write the frame, swallow it, or tear it.
SEND = "send"
DROP = "drop"
TEAR = "tear"


@dataclass(frozen=True)
class FaultPlan:
    """One scripted failure scenario for a single worker.

    All ordinals are 1-based and deterministic: the plan names *which*
    frame or task triggers the fault, not a probability.

    Parameters
    ----------
    drop_results:
        Ordinals of outbound RESULT frames to silently swallow (the
        parent sees a worker that computed an answer but never
        delivered it — heartbeats keep flowing).
    tear_result:
        Ordinal of the one RESULT frame to tear mid-write: a partial
        frame hits the wire and the connection dies, exactly what a
        worker crashing inside ``sendall`` produces.
    mute_after_frames:
        After this many outbound frames of any type, swallow *every*
        further write — heartbeats included.  Simulates an asymmetric
        network partition: the worker still hears the parent, the
        parent hears nothing.
    heartbeat_delay:
        Extra seconds added to every beacon period in the worker loop
        (``0.0`` = beacons on schedule).
    die_after_tasks:
        Crash the worker (abrupt connection close, no STOP, no further
        frames) once it has served this many task items.
    rejoin_after_death:
        Whether the scripted death is *transient*: ``True`` lets
        ``run_worker``'s rejoin policy reconnect afterwards (a crash-
        then-recover scenario in one process), ``False`` (default)
        ends the worker for good, like a real crash.
    """

    drop_results: tuple[int, ...] = ()
    tear_result: int | None = None
    mute_after_frames: int | None = None
    heartbeat_delay: float = 0.0
    die_after_tasks: int | None = None
    rejoin_after_death: bool = False

    def __post_init__(self) -> None:
        if any(ordinal < 1 for ordinal in self.drop_results):
            raise ConfigurationError("drop_results ordinals are 1-based")
        if self.tear_result is not None and self.tear_result < 1:
            raise ConfigurationError("tear_result ordinal is 1-based")
        if self.tear_result is not None and self.tear_result in self.drop_results:
            raise ConfigurationError(
                f"RESULT frame #{self.tear_result} cannot be both dropped "
                f"and torn"
            )
        if self.mute_after_frames is not None and self.mute_after_frames < 0:
            raise ConfigurationError("mute_after_frames must be >= 0")
        if self.heartbeat_delay < 0:
            raise ConfigurationError("heartbeat_delay must be >= 0")
        if self.die_after_tasks is not None and self.die_after_tasks < 1:
            raise ConfigurationError("die_after_tasks must be >= 1")


class FaultInjector:
    """Executes one :class:`FaultPlan` against a worker's send path.

    Stateful: it counts outbound frames (per connection — a rejoining
    worker calls :meth:`session_started`, which resets the frame
    ordinals but *not* the one-shot death trigger) and reports a
    verdict per frame.  Thread-safe, because a worker's heartbeat
    thread and task loop share one connection.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._lock = threading.Lock()
        self._frames = 0
        self._results = 0
        self._tasks_served = 0
        self._died = False
        #: RESULT frames swallowed so far.
        self.results_dropped = 0
        #: Frames torn mid-write so far (0 or 1 per plan).
        self.frames_torn = 0
        #: Frames swallowed by the mute partition so far.
        self.frames_muted = 0
        #: Scripted deaths fired so far (0 or 1 — the trigger is one-shot).
        self.deaths = 0

    def session_started(self) -> None:
        """Reset per-connection ordinals (a rejoined worker starts fresh).

        The death trigger deliberately survives: a plan that already
        killed the worker once must not kill its rejoined incarnation,
        or a crash-then-rejoin scenario would never converge.
        """
        with self._lock:
            self._frames = 0
            self._results = 0

    def on_send(self, frame_name: str) -> str:
        """Verdict for the next outbound frame: ``send``/``drop``/``tear``."""
        plan = self.plan
        with self._lock:
            self._frames += 1
            if (
                plan.mute_after_frames is not None
                and self._frames > plan.mute_after_frames
            ):
                self.frames_muted += 1
                return DROP
            if frame_name != "RESULT":
                return SEND
            self._results += 1
            if self._results == plan.tear_result:
                self.frames_torn += 1
                return TEAR
            if self._results in plan.drop_results:
                self.results_dropped += 1
                return DROP
            return SEND

    def heartbeat_delay(self) -> float:
        """Extra seconds the worker adds to each beacon period."""
        return self.plan.heartbeat_delay

    def note_served(self, count: int) -> None:
        """Record ``count`` more task items served (feeds the death trigger)."""
        with self._lock:
            self._tasks_served += count

    def should_die(self) -> bool:
        """Whether the scripted death fires now (one-shot).

        ``True`` at most once per injector: the first call at or past
        ``die_after_tasks`` served items arms and consumes the trigger.
        """
        plan = self.plan
        if plan.die_after_tasks is None:
            return False
        with self._lock:
            if self._died or self._tasks_served < plan.die_after_tasks:
                return False
            self._died = True
            self.deaths += 1
            return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultInjector(frames={self._frames}, "
            f"results={self._results}, served={self._tasks_served}, "
            f"died={self._died})"
        )
