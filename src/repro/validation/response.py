"""Response shapes: the paper's per-response invariants, re-checked.

Every check re-derives its invariant from primary data (the rating
matrix, the candidate bundle) instead of trusting the pipeline's own
bookkeeping — that independence is what lets the layer catch a
regression like PR 7's double-decode before it reaches a user:

* ``item_count`` — a group answer holds exactly ``z`` items (fewer only
  when the candidate pool is genuinely exhausted), a user answer at
  most ``k``;
* ``duplicate_item`` — decoded item ids are unique within a list (the
  shape that breaks when intern-table decoding goes wrong);
* ``already_rated`` — no recommended item was already rated by the
  target user / any group member (Section III's candidate contract);
* ``score_order`` — scored lists are monotone non-increasing;
* ``fairness_report`` — the served fairness number equals Definition 3
  recomputed from the candidate bundle;
* ``prop1`` — Proposition 1: under the greedy selector with
  ``z >= |G|`` (and every member owning a non-empty top-k set) the
  selection's fairness is exactly 1.0.

Checks needing the rating matrix accept ``matrix=None`` and skip — the
service passes ``None`` when a concurrent mutation made the live matrix
incomparable with the already-computed response (the same race the
epoch-guarded cache put handles).
"""

from __future__ import annotations

from typing import Sequence

from ..core.fairness import fairness
from ..core.pipeline import CaregiverRecommendation
from ..core.relevance import ScoredItem
from ..data.ratings import RatingMatrix
from .shapes import Violation


def _check_unique(
    item_ids: Sequence[str], what: str, out: list[Violation]
) -> None:
    seen: set[str] = set()
    for item_id in item_ids:
        if item_id in seen:
            out.append(
                Violation(
                    "duplicate_item",
                    f"{what} contains item {item_id!r} more than once; "
                    f"decoded item ids must be unique",
                )
            )
        seen.add(item_id)


def _check_monotone(
    scored: Sequence[ScoredItem], what: str, out: list[Violation]
) -> None:
    for previous, current in zip(scored, scored[1:]):
        if current.score > previous.score:
            out.append(
                Violation(
                    "score_order",
                    f"{what} scores must be non-increasing, but "
                    f"{current.item_id!r} ({current.score!r}) outranks "
                    f"{previous.item_id!r} ({previous.score!r})",
                )
            )
            return


def _check_unrated(
    item_ids: Sequence[str],
    member_ids: Sequence[str],
    matrix: RatingMatrix,
    what: str,
    out: list[Violation],
) -> None:
    for member in member_ids:
        for item_id in item_ids:
            if matrix.has_rating(member, item_id):
                out.append(
                    Violation(
                        "already_rated",
                        f"{what} recommends item {item_id!r} which "
                        f"{member!r} has already rated; candidates must be "
                        f"unrated by every target user",
                    )
                )


def validate_user_response(
    items: Sequence[ScoredItem],
    *,
    user_id: str,
    k: int,
    matrix: RatingMatrix | None,
) -> list[Violation]:
    """Check one single-user answer against the declared shapes.

    ``matrix=None`` skips the already-rated check (concurrent-mutation
    escape hatch); the count/uniqueness/monotonicity shapes always run.
    """
    out: list[Violation] = []
    if len(items) > k:
        out.append(
            Violation(
                "item_count",
                f"user answer for {user_id!r} holds {len(items)} items but "
                f"k={k}; a top-k list must never exceed k",
            )
        )
    item_ids = [item.item_id for item in items]
    _check_unique(item_ids, f"user answer for {user_id!r}", out)
    _check_monotone(items, f"user answer for {user_id!r}", out)
    if matrix is not None:
        _check_unrated(
            item_ids, [user_id], matrix, f"user answer for {user_id!r}", out
        )
    return out


def validate_group_response(
    recommendation: CaregiverRecommendation,
    *,
    z: int,
    matrix: RatingMatrix | None = None,
    selector: str | None = None,
) -> list[Violation]:
    """Check one group answer against the declared shapes.

    ``selector`` names the selection algorithm that produced the answer
    — the Prop-1 bound is only declared for ``"greedy"`` (the paper
    proves it for Algorithm 1).  ``matrix=None`` skips the
    already-rated check, as in :func:`validate_user_response`.
    """
    out: list[Violation] = []
    group = recommendation.group
    candidates = recommendation.candidates
    selected = list(recommendation.selection.items)
    members = list(group.member_ids)

    # Exactly z items; fewer is legitimate only when the usable pool
    # (the union of member candidate sets — no selector can use more
    # than the full pool, none may return less than the top-k union
    # covers) ran out first.
    usable: set[str] = set()
    for member in members:
        usable.update(candidates.user_top_items(member))
    if len(selected) > z:
        out.append(
            Violation(
                "item_count",
                f"group answer holds {len(selected)} items but z={z}; a "
                f"selection must never exceed z",
            )
        )
    elif len(selected) < z and len(selected) < min(z, len(usable)):
        out.append(
            Violation(
                "item_count",
                f"group answer holds {len(selected)} items but z={z} and "
                f"{len(usable)} usable candidates exist; the selection "
                f"stopped early",
            )
        )

    _check_unique(selected, "group selection", out)
    plain = list(recommendation.plain_top_z)
    _check_unique([item.item_id for item in plain], "plain top-z", out)
    _check_monotone(plain, "plain top-z", out)
    if matrix is not None:
        _check_unrated(selected, members, matrix, "group selection", out)
        _check_unrated(
            [item.item_id for item in plain],
            members,
            matrix,
            "plain top-z",
            out,
        )

    # The served fairness number must equal Definition 3 recomputed
    # from the candidate bundle — a stale or tampered report is as
    # wrong as a bad selection.
    recomputed = fairness(candidates, selected)
    reported = recommendation.report.fairness
    if recomputed != reported:
        out.append(
            Violation(
                "fairness_report",
                f"reported fairness {reported!r} does not match Definition "
                f"3 recomputed over the selection ({recomputed!r})",
            )
        )

    # Proposition 1 (greedy only): z >= |G| forces fairness 1.0,
    # provided the proposition's premises hold — every member owns a
    # non-empty top-k candidate set and the pool did not run dry below
    # |G| items.
    if (
        selector == "greedy"
        and z >= len(members)
        and len(selected) >= len(members)
        and all(candidates.user_top_items(m) for m in members)
        and recomputed != 1.0
    ):
        out.append(
            Violation(
                "prop1",
                f"Proposition 1 violated: z={z} >= |G|={len(members)} under "
                f"the greedy selector but fairness is {recomputed!r}, "
                f"not 1.0",
            )
        )
    return out


__all__ = ["validate_group_response", "validate_user_response"]
