"""Dataset shapes: declarative checks over datasets and group files.

Two granularities, because problems surface at two moments:

* *payload-level* (:func:`validate_dataset_payload`,
  :func:`validate_groups_payload`) — run over the raw JSON before any
  object is built, so a malformed file yields a full list of actionable
  diagnostics instead of whatever exception the first bad record
  happens to trigger inside a constructor;
* *object-level* (:func:`validate_dataset`, :func:`validate_groups`) —
  run over built objects, re-deriving the same constraints
  independently of the construction path (the check that catches an
  ingest path quietly relaxing an invariant).

Both return :class:`Violation` lists; callers decide whether to print
them (the ``repro validate`` CLI) or raise
:class:`~repro.exceptions.ValidationError` (strict serving).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Sequence

from ..data.datasets import HealthDataset
from ..data.groups import Group

#: Accepted values of the ``validation`` config knob.
VALIDATION_MODES: tuple[str, ...] = ("strict", "log", "off")


@dataclass(frozen=True)
class Violation:
    """One declared-shape violation.

    Attributes
    ----------
    shape:
        Machine-readable shape name — doubles as the ``shape=`` label
        of the ``validation_failures`` metric counter.
    message:
        Actionable human-readable diagnostic: what is wrong, where, and
        what a valid value looks like.
    """

    shape: str
    message: str

    def __str__(self) -> str:
        return f"[{self.shape}] {self.message}"


def _is_number(value: Any) -> bool:
    """Whether ``value`` is a real number (bools are not ratings)."""
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _check_id(
    value: Any, shape: str, where: str, out: list[Violation]
) -> bool:
    """Append a violation unless ``value`` is a non-empty string id."""
    if not isinstance(value, str) or not value:
        out.append(
            Violation(
                shape,
                f"{where} must be a non-empty string id, got {value!r}",
            )
        )
        return False
    return True


# -- payload-level ----------------------------------------------------------


def _payload_scale(
    ratings: Mapping[str, Any], out: list[Violation]
) -> tuple[float, float] | None:
    scale = ratings.get("scale", (1.0, 5.0))
    if (
        not isinstance(scale, (list, tuple))
        or len(scale) != 2
        or not all(_is_number(bound) for bound in scale)
        or float(scale[0]) >= float(scale[1])
    ):
        out.append(
            Violation(
                "rating_scale",
                f"ratings.scale must be a [low, high] pair with low < high, "
                f"got {scale!r}",
            )
        )
        return None
    return float(scale[0]), float(scale[1])


def _payload_registry_ids(
    payload: Mapping[str, Any],
    section: str,
    entry_key: str,
    id_key: str,
    out: list[Violation],
) -> set[str]:
    """Collect the ids of a users/items section, flagging shape problems."""
    ids: set[str] = set()
    block = payload.get(section)
    if not isinstance(block, Mapping) or not isinstance(
        block.get(entry_key), list
    ):
        out.append(
            Violation(
                f"{section}_section",
                f"dataset key {section!r} must be an object holding an "
                f"{entry_key!r} list (see HealthDataset.to_dict)",
            )
        )
        return ids
    for position, entry in enumerate(block[entry_key]):
        where = f"{section}[{position}].{id_key}"
        if not isinstance(entry, Mapping):
            out.append(
                Violation(
                    f"{section}_section",
                    f"{section}[{position}] must be an object, "
                    f"got {type(entry).__name__}",
                )
            )
            continue
        value = entry.get(id_key)
        if _check_id(value, f"{id_key}_type", where, out):
            if value in ids:
                out.append(
                    Violation(
                        f"duplicate_{id_key}",
                        f"{where} {value!r} appears more than once; "
                        f"ids must be unique",
                    )
                )
            ids.add(value)
    return ids


def validate_dataset_payload(payload: Any) -> list[Violation]:
    """Check a raw dataset JSON payload against the declared schema.

    Covers id types and uniqueness, the rating scale, rating-triple
    shape and range, and referential integrity from the rating matrix
    into the user registry and item catalog.  Returns every violation
    found (an empty list means the payload is a valid
    ``HealthDataset.to_dict`` document).
    """
    out: list[Violation] = []
    if not isinstance(payload, Mapping):
        return [
            Violation(
                "dataset_document",
                f"dataset document must be a JSON object, "
                f"got {type(payload).__name__}",
            )
        ]
    for key in ("users", "items", "ratings", "ontology"):
        if key not in payload:
            out.append(
                Violation(
                    "dataset_document",
                    f"dataset document is missing the {key!r} section "
                    f"(expected the HealthDataset.to_dict layout)",
                )
            )
    user_ids = _payload_registry_ids(payload, "users", "users", "user_id", out)
    item_ids = _payload_registry_ids(payload, "items", "items", "item_id", out)
    ratings = payload.get("ratings")
    if not isinstance(ratings, Mapping):
        if "ratings" in payload:
            out.append(
                Violation(
                    "ratings_section",
                    "dataset key 'ratings' must be an object with 'scale' "
                    "and 'ratings' entries",
                )
            )
        return out
    scale = _payload_scale(ratings, out)
    triples = ratings.get("ratings", [])
    if not isinstance(triples, list):
        out.append(
            Violation(
                "ratings_section",
                f"ratings.ratings must be a list of [user_id, item_id, "
                f"value] triples, got {type(triples).__name__}",
            )
        )
        return out
    for position, triple in enumerate(triples):
        where = f"ratings[{position}]"
        if not isinstance(triple, (list, tuple)) or len(triple) != 3:
            out.append(
                Violation(
                    "rating_triple",
                    f"{where} must be a [user_id, item_id, value] triple, "
                    f"got {triple!r}",
                )
            )
            continue
        user_id, item_id, value = triple
        user_ok = _check_id(user_id, "user_id_type", f"{where} user id", out)
        item_ok = _check_id(item_id, "item_id_type", f"{where} item id", out)
        if not _is_number(value):
            out.append(
                Violation(
                    "rating_value",
                    f"{where} value must be a number, got {value!r}",
                )
            )
        elif scale is not None and not scale[0] <= float(value) <= scale[1]:
            out.append(
                Violation(
                    "rating_range",
                    f"{where} value {value!r} is outside the declared "
                    f"scale [{scale[0]}, {scale[1]}]",
                )
            )
        if user_ok and user_ids and user_id not in user_ids:
            out.append(
                Violation(
                    "rating_unknown_user",
                    f"{where} references user {user_id!r} which is not in "
                    f"the user registry",
                )
            )
        if item_ok and item_ids and item_id not in item_ids:
            out.append(
                Violation(
                    "rating_unknown_item",
                    f"{where} references item {item_id!r} which is not in "
                    f"the item catalog",
                )
            )
    return out


def validate_groups_payload(
    payload: Any, known_user_ids: Iterable[str] = ()
) -> list[Violation]:
    """Check a raw group-file JSON payload against the declared schema.

    Accepts either a bare list of group objects or ``{"groups": [...]}``.
    ``known_user_ids`` (when non-empty) enables the group-membership
    referential-integrity check against the dataset's user registry.
    """
    out: list[Violation] = []
    if isinstance(payload, Mapping):
        payload = payload.get("groups")
    if not isinstance(payload, list):
        return [
            Violation(
                "groups_document",
                "group file must be a JSON list of group objects "
                '(or {"groups": [...]}), each with a "member_ids" list',
            )
        ]
    known = set(known_user_ids)
    for position, entry in enumerate(payload):
        where = f"groups[{position}]"
        if not isinstance(entry, Mapping):
            out.append(
                Violation(
                    "group_entry",
                    f"{where} must be an object, got {type(entry).__name__}",
                )
            )
            continue
        members = entry.get("member_ids")
        if not isinstance(members, list) or not members:
            out.append(
                Violation(
                    "group_members",
                    f"{where}.member_ids must be a non-empty list of user "
                    f"ids, got {members!r}",
                )
            )
            continue
        for member in members:
            if not _check_id(
                member, "user_id_type", f"{where} member id", out
            ):
                continue
            if known and member not in known:
                out.append(
                    Violation(
                        "group_unknown_member",
                        f"{where} member {member!r} is not in the dataset's "
                        f"user registry",
                    )
                )
    return out


# -- object-level -----------------------------------------------------------


def validate_dataset(dataset: HealthDataset) -> list[Violation]:
    """Check a built dataset's cross-references and rating ranges.

    Independent of the construction path: every rating triple is
    re-checked against the declared scale, and the matrix's users and
    items are checked against the registry/catalog (a rating for a user
    the registry does not know is an ingest-path bug, not a load-time
    formatting problem).
    """
    out: list[Violation] = []
    low, high = dataset.ratings.scale
    known_users = set(dataset.users.ids())
    known_items = set(dataset.items.ids())
    for user_id, item_id, value in dataset.ratings.triples():
        if not low <= value <= high:
            out.append(
                Violation(
                    "rating_range",
                    f"rating ({user_id!r}, {item_id!r}) = {value!r} is "
                    f"outside the declared scale [{low}, {high}]",
                )
            )
        if user_id not in known_users:
            out.append(
                Violation(
                    "rating_unknown_user",
                    f"rating matrix references user {user_id!r} which is "
                    f"not in the user registry",
                )
            )
        if item_id not in known_items:
            out.append(
                Violation(
                    "rating_unknown_item",
                    f"rating matrix references item {item_id!r} which is "
                    f"not in the item catalog",
                )
            )
    return out


def validate_groups(
    groups: Sequence[Group], dataset: HealthDataset
) -> list[Violation]:
    """Check built groups' membership referential integrity."""
    out: list[Violation] = []
    known = set(dataset.users.ids())
    for position, group in enumerate(groups):
        for member in group.member_ids:
            if member not in known:
                out.append(
                    Violation(
                        "group_unknown_member",
                        f"groups[{position}] member {member!r} is not in "
                        f"the dataset's user registry",
                    )
                )
    return out


__all__ = [
    "VALIDATION_MODES",
    "Violation",
    "validate_dataset",
    "validate_dataset_payload",
    "validate_groups",
    "validate_groups_payload",
]
