"""Declarative shape/constraint layer for datasets and served responses.

The paper's group recommender makes hard promises per response —
exactly ``z`` items, none already rated by any group member, Prop-1
fairness bounds, scores monotone non-increasing — but the pipeline only
*implies* those invariants; nothing re-checks them at the serving
boundary, so a regression would ship silently.  This package makes the
promises explicit and checkable:

* **dataset shapes** (:mod:`repro.validation.shapes`) — id types,
  rating ranges, group-membership referential integrity, checked over
  raw JSON payloads (``repro validate``) or built objects;
* **response shapes** (:mod:`repro.validation.response`) — every
  :class:`~repro.serving.RecommendationService` answer checkable
  against the paper's invariants, wired into the service through the
  ``validation="strict"|"log"|"off"`` config knob (violations are
  counted in the metrics registry as ``validation_failures{shape=...}``
  and strict mode fails the request with a
  :class:`~repro.exceptions.ValidationError`).

Every check returns a list of :class:`Violation` records with
actionable messages rather than raising at the first problem, so one
pass reports everything that is wrong.
"""

from __future__ import annotations

from ..exceptions import ValidationError
from .response import validate_group_response, validate_user_response
from .shapes import (
    VALIDATION_MODES,
    Violation,
    validate_dataset,
    validate_dataset_payload,
    validate_groups,
    validate_groups_payload,
)

__all__ = [
    "VALIDATION_MODES",
    "ValidationError",
    "Violation",
    "validate_dataset",
    "validate_dataset_payload",
    "validate_group_response",
    "validate_groups",
    "validate_groups_payload",
    "validate_user_response",
]
