"""Lightweight trace spans with request-id propagation.

A span is a timed scope: ``with span("recommend_many"):`` measures the
block, records its duration into the owning registry's ``span_ms``
histogram (labelled by span name), bumps ``spans_total`` and appends a
:class:`SpanRecord` to the registry's bounded span ring.  Spans carry
the current *request id* — set per incoming request with
:func:`request_context` and propagated through nested calls via a
:mod:`contextvars` variable, so a kernel-level span recorded three
layers below ``recommend_many`` still names the request that caused it
(including across threads spawned with ``contextvars.copy_context``,
which the thread backend's executor does implicitly for submitted
functions' closures — worker *processes* instead re-establish the id
from the shipped task).

Spans follow the global enabled flag: disabled, :func:`span` yields a
shared no-op object without touching the clock.
"""

from __future__ import annotations

import contextvars
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from .metrics import MetricsRegistry, is_enabled

_REQUEST_ID: contextvars.ContextVar[str | None] = contextvars.ContextVar(
    "repro_obs_request_id", default=None
)


def current_request_id() -> str | None:
    """The request id of the enclosing :func:`request_context`, if any."""
    return _REQUEST_ID.get()


@contextmanager
def request_context(request_id: str) -> Iterator[str]:
    """Bind ``request_id`` to the current context for nested spans.

    Entering sets the context variable, exiting restores the previous
    binding — nesting therefore behaves like a stack, and concurrent
    contexts (threads, tasks) see only their own id.
    """
    token = _REQUEST_ID.set(str(request_id))
    try:
        yield str(request_id)
    finally:
        _REQUEST_ID.reset(token)


@dataclass(frozen=True)
class SpanRecord:
    """One completed span: what ran, for how long, for which request."""

    name: str
    duration_ms: float
    request_id: str | None = None
    attrs: dict[str, Any] = field(default_factory=dict)


class _ActiveSpan:
    """Mutable handle yielded by :func:`span`; ``set`` adds attributes."""

    __slots__ = ("name", "attrs")

    def __init__(self, name: str, attrs: dict[str, Any]) -> None:
        self.name = name
        self.attrs = attrs

    def set(self, **attrs: Any) -> None:
        """Attach attributes to the span before it completes."""
        self.attrs.update(attrs)


class _NoopSpan:
    """Shared do-nothing handle used while instrumentation is disabled."""

    __slots__ = ()
    name = ""
    attrs: dict[str, Any] = {}

    def set(self, **attrs: Any) -> None:
        """Discard attributes (instrumentation is disabled)."""


_NOOP_SPAN = _NoopSpan()


@contextmanager
def span(
    name: str,
    registry: MetricsRegistry | None = None,
    clock: Callable[[], float] = time.perf_counter,
    **attrs: Any,
) -> Iterator[Any]:
    """Time a scope and record it into ``registry``.

    On exit (even via an exception) the span observes its duration into
    ``span_ms{span=name}``, increments ``spans_total{span=name}`` and
    appends a :class:`SpanRecord` carrying :func:`current_request_id`
    to the registry's span ring.  ``registry=None`` uses the
    process-wide default.  While instrumentation is disabled this is a
    single flag check and a shared no-op handle.
    """
    if not is_enabled():
        yield _NOOP_SPAN
        return
    if registry is None:
        from .metrics import get_registry

        registry = get_registry()
    active = _ActiveSpan(name, dict(attrs))
    started = clock()
    try:
        yield active
    finally:
        duration_ms = (clock() - started) * 1000.0
        registry.observe("span_ms", duration_ms, span=name)
        registry.inc("spans_total", span=name)
        registry.record_span(
            SpanRecord(
                name=name,
                duration_ms=duration_ms,
                request_id=current_request_id(),
                attrs=active.attrs,
            )
        )
