"""Registry exporters: Prometheus text exposition and JSON dumps.

Two render paths over one :class:`~repro.obs.MetricsRegistry` snapshot:

* :func:`render_prometheus` — the Prometheus text format scraped by a
  ``/metrics`` endpoint or printed by ``repro serve --metrics``.
  Counters render as ``# TYPE counter`` with a ``_total`` suffix,
  gauges as ``# TYPE gauge``, histograms as ``# TYPE summary`` with
  ``quantile="0.5"/"0.95"/"0.99"`` sample lines plus ``_sum`` /
  ``_count`` — the summary form keeps the output compact while
  preserving exactly the percentiles the registry computes.
* :func:`render_json` — the registry snapshot as one JSON object,
  suitable for the serve command's machine-readable dump line.

Metric names are namespaced (``repro_`` by default) and sanitised to
the Prometheus grammar; label values are escaped per the exposition
format rules.
"""

from __future__ import annotations

import json
import re
from typing import Any

from .metrics import Histogram, MetricsRegistry

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")

#: Quantiles every exported histogram reports.
EXPORT_QUANTILES = (0.5, 0.95, 0.99)


def _sanitize_name(name: str) -> str:
    sanitized = _NAME_OK.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_labels(labels: tuple[tuple[str, str], ...], extra: list[tuple[str, str]] | None = None) -> str:
    pairs = list(labels) + (extra or [])
    if not pairs:
        return ""
    body = ",".join(
        f'{_sanitize_name(key)}="{_escape_label_value(value)}"'
        for key, value in pairs
    )
    return "{" + body + "}"


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def render_prometheus(registry: MetricsRegistry, namespace: str = "repro") -> str:
    """Render every metric in ``registry`` as Prometheus text format.

    Output is deterministic (metrics sorted by name, then labels) and
    ends with a trailing newline as the exposition format requires.
    """
    by_name: dict[str, list[tuple[tuple[tuple[str, str], ...], Any]]] = {}
    for name, labels, metric in registry.metrics():
        by_name.setdefault(name, []).append((labels, metric))

    lines: list[str] = []
    for name in sorted(by_name):
        kind = registry.kind_of(name)
        metric_name = f"{_sanitize_name(namespace)}_{_sanitize_name(name)}"
        if kind == "counter":
            metric_name += "_total"
            lines.append(f"# TYPE {metric_name} counter")
            for labels, metric in by_name[name]:
                lines.append(
                    f"{metric_name}{_format_labels(labels)} "
                    f"{_format_value(metric.value)}"
                )
        elif kind == "gauge":
            lines.append(f"# TYPE {metric_name} gauge")
            for labels, metric in by_name[name]:
                lines.append(
                    f"{metric_name}{_format_labels(labels)} "
                    f"{_format_value(metric.value)}"
                )
        else:
            lines.append(f"# TYPE {metric_name} summary")
            for labels, metric in by_name[name]:
                assert isinstance(metric, Histogram)
                for q in EXPORT_QUANTILES:
                    value = metric.quantile(q)
                    lines.append(
                        f"{metric_name}"
                        f"{_format_labels(labels, [('quantile', str(q))])} "
                        f"{_format_value(value if value is not None else 0.0)}"
                    )
                lines.append(
                    f"{metric_name}_sum{_format_labels(labels)} "
                    f"{_format_value(metric.sum)}"
                )
                lines.append(
                    f"{metric_name}_count{_format_labels(labels)} "
                    f"{_format_value(metric.count)}"
                )
    return "\n".join(lines) + "\n" if lines else ""


def render_json(registry: MetricsRegistry, indent: int | None = None) -> str:
    """The registry snapshot as a JSON document."""
    return json.dumps(registry.snapshot(), indent=indent, sort_keys=True)
