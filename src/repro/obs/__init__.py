"""``repro.obs`` — the unified observability layer.

One substrate for every stat this library emits: counters, gauges and
fixed-bucket histograms in a :class:`MetricsRegistry`
(:mod:`repro.obs.metrics`), timed trace spans with request-id
propagation (:mod:`repro.obs.trace`) and Prometheus/JSON exporters
(:mod:`repro.obs.export`).

Layering:

* **kernels** record into the process-wide default registry
  (:func:`get_registry`) — module-level code has no instance to hang
  state on;
* **services and pool backends** own their registry (per-instance
  stats), defaulting to a fresh one;
* **pool workers** reuse the fork-copied default registry as a child
  registry, baselined by an initial drain; each result message
  piggybacks :meth:`MetricsRegistry.drain_delta` and the parent merges
  it under a ``worker="N"`` label;
* **the CLI** resets the default registry per invocation and threads
  it through every layer so ``repro serve --metrics`` and
  ``repro stats`` print one coherent picture.

Instrumentation is near-zero cost when off: :func:`set_enabled(False)
<set_enabled>` reduces every record path to a flag check, which is how
``benchmarks/bench_obs_overhead.py`` measures the <5% overhead budget.
"""

from .metrics import (
    DEFAULT_BUCKETS_MS,
    SPAN_RING_SIZE,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    is_enabled,
    reset_registry,
    set_enabled,
)
from .trace import SpanRecord, current_request_id, request_context, span
from .export import render_json, render_prometheus

import time

__all__ = [
    "DEFAULT_BUCKETS_MS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SPAN_RING_SIZE",
    "SpanRecord",
    "current_request_id",
    "get_registry",
    "is_enabled",
    "observe_kernel",
    "render_json",
    "render_prometheus",
    "request_context",
    "reset_registry",
    "set_enabled",
    "span",
]


def observe_kernel(name: str, started: float) -> None:
    """Record one kernel invocation into the default registry.

    ``started`` is a ``time.perf_counter()`` reading taken before the
    kernel body ran; this bumps ``kernel_calls{kernel=name}`` and
    observes the elapsed milliseconds into ``kernel_ms{kernel=name}``.
    Kept as one helper so every kernel pays an identical (and
    benchmarked) instrumentation cost.
    """
    if not is_enabled():
        return
    elapsed_ms = (time.perf_counter() - started) * 1000.0
    registry = get_registry()
    registry.observe("kernel_ms", elapsed_ms, kernel=name)
    registry.inc("kernel_calls", kernel=name)
