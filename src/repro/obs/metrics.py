"""Process-wide metrics primitives: counters, gauges, histograms.

Every stat surface in this library (service request counters, cache
hit/miss tallies, pool sync/restart counts, kernel timings) used to
keep its own ad-hoc ints behind its own lock.  :class:`MetricsRegistry`
replaces them with one queryable substrate:

* :class:`Counter` — monotonically increasing float;
* :class:`Gauge` — last-written value;
* :class:`Histogram` — fixed log-spaced buckets with exact ``count`` /
  ``sum`` / ``min`` / ``max`` and deterministic p50/p95/p99 readout
  (nearest-rank over the bucket counts, reported as the containing
  bucket's upper edge clamped to the observed ``[min, max]`` range —
  the same math everywhere a percentile is printed);

all addressable by ``(name, labels)`` and all cheap enough for hot
paths.  A process-wide default registry (:func:`get_registry`) serves
module-level instrumentation (kernel timings, repack counts); services
and backends own child registries so their stats stay per-instance.

Two protocol features make the registry distribution-ready:

* :meth:`MetricsRegistry.drain_delta` returns the compact increments
  since the previous drain (and resets the baseline) — pool workers
  piggyback exactly this payload on their result messages, so
  worker-side timings reach the parent with **zero extra round-trips**;
* :meth:`MetricsRegistry.merge_delta` folds such a payload into another
  registry, optionally tagging every metric with extra labels (the pool
  adds ``worker="N"``).

Instrumentation is near-zero cost when disabled: :func:`set_enabled`
flips one module-level flag that every record path checks first —
disabled, a counter bump is a single attribute load and compare.
Histograms accept an injectable ``clock`` and an optional sliding
window (``window_s``) whose :meth:`Histogram.windowed_quantile` is what
latency-targeted policies (the pool's p99 autoscaler) read, so a breach
can *recover*: old observations age out of the window instead of
pinning the percentile forever.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from typing import Any, Callable, Iterable, Iterator, Mapping

import time

#: Default histogram bucket upper bounds, in milliseconds — log-spaced
#: from sub-millisecond cache hits to multi-second cold builds.  An
#: implicit overflow bucket catches everything beyond the last bound.
DEFAULT_BUCKETS_MS: tuple[float, ...] = (
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    25.0,
    50.0,
    100.0,
    250.0,
    500.0,
    1000.0,
    2500.0,
    5000.0,
    10000.0,
    30000.0,
)

#: Completed spans retained per registry for introspection (a ring, not
#: a log — observability state must stay bounded).
SPAN_RING_SIZE = 256

#: Sub-intervals a windowed histogram rotates through; the effective
#: resolution of "observations older than the window age out".
_WINDOW_SLICES = 4

_ENABLED: bool = True


def set_enabled(enabled: bool) -> bool:
    """Globally enable/disable instrumentation; returns the old value.

    Disabling makes every record path (counter bumps, histogram
    observations, spans) an early return.  Reads still work — they
    simply stop moving.  The overhead benchmark uses this flag for its
    bare-vs-instrumented comparison.
    """
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(enabled)
    return previous


def is_enabled() -> bool:
    """Whether instrumentation is currently recording."""
    return _ENABLED


LabelsKey = tuple[tuple[str, str], ...]


def _labels_key(labels: Mapping[str, Any] | None) -> LabelsKey:
    """Canonical, hashable form of a labels mapping (sorted pairs)."""
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing value (requests served, bytes sent)."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: LabelsKey, lock: threading.RLock) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = lock

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (no-op while instrumentation is disabled)."""
        if not _ENABLED:
            return
        with self._lock:
            self._value += amount

    def _apply(self, amount: float) -> None:
        """Merge-path increment: bypasses the enabled check so a drained
        worker delta is never silently dropped mid-merge."""
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """The current cumulative value."""
        with self._lock:
            return self._value


class Gauge:
    """A last-write-wins value (live worker count, resident epoch)."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: LabelsKey, lock: threading.RLock) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = lock

    def set(self, value: float) -> None:
        """Record the current value (no-op while disabled)."""
        if not _ENABLED:
            return
        with self._lock:
            self._value = float(value)

    def _apply(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        """The most recently set value."""
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket latency histogram with deterministic percentiles.

    Observations land in log-spaced buckets (``bounds`` are upper
    edges; one implicit overflow bucket).  Alongside the buckets the
    histogram keeps exact ``count``/``sum``/``min``/``max``, so means
    are exact and percentiles are tight: :meth:`quantile` runs a
    nearest-rank scan over the bucket counts and reports the containing
    bucket's upper edge **clamped to the observed [min, max]** — the
    one percentile rule every reporting surface shares.

    With ``window_s`` set the histogram additionally maintains a
    sliding window (rotated in ``window_s / 4`` slices against the
    injectable ``clock``); :meth:`windowed_quantile` then answers "p99
    over roughly the last ``window_s`` seconds", which is what a
    latency-targeted autoscaler must read — cumulative percentiles can
    never recover after a breach.
    """

    __slots__ = (
        "name",
        "labels",
        "bounds",
        "_counts",
        "_count",
        "_sum",
        "_min",
        "_max",
        "_pmin",
        "_pmax",
        "_lock",
        "_window_s",
        "_clock",
        "_slices",
    )

    def __init__(
        self,
        name: str,
        labels: LabelsKey,
        lock: threading.RLock,
        bounds: tuple[float, ...] = DEFAULT_BUCKETS_MS,
        window_s: float | None = None,
        clock: Callable[[], float] | None = None,
    ) -> None:
        self.name = name
        self.labels = labels
        self.bounds = tuple(sorted(bounds))
        self._counts = [0] * (len(self.bounds) + 1)
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        # Per-drain-period extrema, reset by MetricsRegistry.drain_delta
        # so a worker's delta carries the min/max of what it observed.
        self._pmin = math.inf
        self._pmax = -math.inf
        self._lock = lock
        self._window_s = window_s
        self._clock = clock or time.monotonic
        # Sliding window: deque of [slice_index, counts-list] pairs,
        # newest last; a slice covers window_s / _WINDOW_SLICES seconds.
        self._slices: deque[list[Any]] | None = (
            deque() if window_s is not None else None
        )

    def _bucket_of(self, value: float) -> int:
        low, high = 0, len(self.bounds)
        while low < high:
            mid = (low + high) // 2
            if value <= self.bounds[mid]:
                high = mid
            else:
                low = mid + 1
        return low

    def observe(self, value: float) -> None:
        """Record one observation (no-op while disabled)."""
        if not _ENABLED:
            return
        self._observe(value)

    def _observe(self, value: float) -> None:
        bucket = self._bucket_of(value)
        with self._lock:
            self._counts[bucket] += 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value
            if value < self._pmin:
                self._pmin = value
            if value > self._pmax:
                self._pmax = value
            if self._slices is not None:
                self._rotate_window()
                self._slices[-1][1][bucket] += 1

    def _rotate_window(self) -> None:
        """Drop expired slices, open the current one (under the lock)."""
        assert self._slices is not None and self._window_s is not None
        slice_width = self._window_s / _WINDOW_SLICES
        current = int(self._clock() / slice_width)
        while self._slices and self._slices[0][0] <= current - _WINDOW_SLICES:
            self._slices.popleft()
        if not self._slices or self._slices[-1][0] != current:
            self._slices.append([current, [0] * (len(self.bounds) + 1)])

    # -- readout -------------------------------------------------------------

    @property
    def count(self) -> int:
        """Total number of observations."""
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        """Exact sum of all observed values."""
        with self._lock:
            return self._sum

    @property
    def mean(self) -> float:
        """Exact mean (0.0 when empty)."""
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    @property
    def min(self) -> float:
        """Smallest observed value (0.0 when empty)."""
        with self._lock:
            return self._min if self._count else 0.0

    @property
    def max(self) -> float:
        """Largest observed value (0.0 when empty)."""
        with self._lock:
            return self._max if self._count else 0.0

    def bucket_counts(self) -> list[int]:
        """A copy of the per-bucket counts (overflow bucket last)."""
        with self._lock:
            return list(self._counts)

    @staticmethod
    def _quantile_over(
        bounds: tuple[float, ...],
        counts: list[int],
        count: int,
        lo: float,
        hi: float,
        q: float,
    ) -> float:
        rank = max(1, math.ceil(q * count))
        cumulative = 0
        for index, bucket_count in enumerate(counts):
            cumulative += bucket_count
            if cumulative >= rank:
                upper = bounds[index] if index < len(bounds) else hi
                return min(max(upper, lo), hi)
        return hi  # pragma: no cover - counts always sum to count

    def quantile(self, q: float) -> float | None:
        """Deterministic percentile over all observations (None if empty).

        Nearest-rank over the cumulative bucket counts; the result is
        the containing bucket's upper edge clamped into the exact
        observed ``[min, max]`` — so single-observation histograms (and
        any percentile landing in the overflow bucket) report exact
        values.
        """
        if not 0.0 < q <= 1.0:
            raise ValueError("quantile q must lie in (0, 1]")
        with self._lock:
            if self._count == 0:
                return None
            return self._quantile_over(
                self.bounds, self._counts, self._count, self._min, self._max, q
            )

    def windowed_quantile(self, q: float) -> float | None:
        """Percentile over the sliding window only (None if empty/unset).

        Requires ``window_s``; observations older than the window have
        aged out, so a latency spike stops dominating once traffic
        recovers.  Clamping uses the cumulative min/max (per-slice
        extrema are not tracked) — an upper-edge approximation that
        only ever *tightens* the reported value.
        """
        if self._slices is None:
            return None
        with self._lock:
            self._rotate_window()
            merged = [0] * (len(self.bounds) + 1)
            for _, counts in self._slices:
                for index, bucket_count in enumerate(counts):
                    merged[index] += bucket_count
            total = sum(merged)
            if total == 0:
                return None
            return self._quantile_over(
                self.bounds, merged, total, self._min, self._max, q
            )

    def as_dict(self) -> dict[str, float]:
        """Plain-type summary (count/sum/mean/min/max/p50/p95/p99)."""
        with self._lock:
            if self._count == 0:
                return {
                    "count": 0,
                    "sum": 0.0,
                    "mean": 0.0,
                    "min": 0.0,
                    "max": 0.0,
                    "p50": 0.0,
                    "p95": 0.0,
                    "p99": 0.0,
                }
            quantile = lambda q: self._quantile_over(  # noqa: E731
                self.bounds, self._counts, self._count, self._min, self._max, q
            )
            return {
                "count": self._count,
                "sum": self._sum,
                "mean": self._sum / self._count,
                "min": self._min,
                "max": self._max,
                "p50": quantile(0.50),
                "p95": quantile(0.95),
                "p99": quantile(0.99),
            }


class MetricsRegistry:
    """A named collection of counters, gauges and histograms.

    Metrics are created on first touch and addressed by
    ``(name, labels)``; a name is permanently bound to one metric kind
    (mixing kinds under one name raises :class:`ValueError`).  The
    registry also keeps a bounded ring of recently completed trace
    spans (:meth:`record_span` / :attr:`spans`).

    One registry per *stats domain*: the process-wide default
    (:func:`get_registry`) for module-level instrumentation, one per
    :class:`~repro.serving.RecommendationService` and one per
    :class:`~repro.exec.PoolBackend` so their stat views stay
    per-instance.  The CLI hands every layer the same registry, which
    is what makes ``repro serve --metrics`` one coherent dump.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._metrics: dict[tuple[str, LabelsKey], Any] = {}
        self._kinds: dict[str, str] = {}
        # drain_delta baselines: counters/gauges store the last-drained
        # value, histograms the last-drained (counts, sum, count).
        self._counter_base: dict[tuple[str, LabelsKey], float] = {}
        self._gauge_base: dict[tuple[str, LabelsKey], float] = {}
        self._hist_base: dict[tuple[str, LabelsKey], tuple[list[int], float, int]] = {}
        self._spans: deque[Any] = deque(maxlen=SPAN_RING_SIZE)

    # -- creation / lookup ---------------------------------------------------

    def _get(self, kind: str, name: str, labels: LabelsKey, factory: Callable[[], Any]) -> Any:
        with self._lock:
            bound = self._kinds.setdefault(name, kind)
            if bound != kind:
                raise ValueError(
                    f"metric {name!r} is already registered as a {bound}, "
                    f"cannot re-register as a {kind}"
                )
            key = (name, labels)
            metric = self._metrics.get(key)
            if metric is None:
                metric = factory()
                self._metrics[key] = metric
            return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        """Get-or-create the counter ``name`` with ``labels``."""
        key = _labels_key(labels)
        return self._get(
            "counter", name, key, lambda: Counter(name, key, self._lock)
        )

    def gauge(self, name: str, **labels: Any) -> Gauge:
        """Get-or-create the gauge ``name`` with ``labels``."""
        key = _labels_key(labels)
        return self._get("gauge", name, key, lambda: Gauge(name, key, self._lock))

    def histogram(
        self,
        name: str,
        bounds: tuple[float, ...] = DEFAULT_BUCKETS_MS,
        window_s: float | None = None,
        clock: Callable[[], float] | None = None,
        **labels: Any,
    ) -> Histogram:
        """Get-or-create the histogram ``name`` with ``labels``.

        ``bounds``/``window_s``/``clock`` only apply on first creation;
        later lookups return the existing instance unchanged.
        """
        key = _labels_key(labels)
        return self._get(
            "histogram",
            name,
            key,
            lambda: Histogram(name, key, self._lock, bounds, window_s, clock),
        )

    # -- convenience record paths --------------------------------------------

    def inc(self, name: str, amount: float = 1.0, **labels: Any) -> None:
        """Increment a counter (created on first touch)."""
        if not _ENABLED:
            return
        self.counter(name, **labels).inc(amount)

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        """Set a gauge (created on first touch)."""
        if not _ENABLED:
            return
        self.gauge(name, **labels).set(value)

    def observe(self, name: str, value: float, **labels: Any) -> None:
        """Observe into a histogram (created on first touch)."""
        if not _ENABLED:
            return
        self.histogram(name, **labels).observe(value)

    # -- queries -------------------------------------------------------------

    def value(self, name: str, **labels: Any) -> float:
        """The exact counter/gauge value for ``(name, labels)`` (0 if absent)."""
        with self._lock:
            metric = self._metrics.get((name, _labels_key(labels)))
        if metric is None or isinstance(metric, Histogram):
            return 0.0
        return metric.value

    def total(self, name: str) -> float:
        """Sum of a counter/gauge across **all** label sets (0 if absent).

        For histograms this is the total observation count — the
        aggregate a stats view wants when worker-merged label sets
        (``worker="0"``, ``worker="1"`` …) sit beside the parent's own.
        """
        total = 0.0
        with self._lock:
            entries = [
                metric
                for (metric_name, _), metric in self._metrics.items()
                if metric_name == name
            ]
        for metric in entries:
            total += metric.count if isinstance(metric, Histogram) else metric.value
        return total

    def merged_histogram(
        self, name: str, exclude_labels: tuple[str, ...] = ()
    ) -> Histogram | None:
        """One histogram merging every label set of ``name`` (or None).

        Bucket counts, count, sum, min and max are combined; quantiles
        over the result answer "across all workers / kinds".  Label sets
        carrying any key in ``exclude_labels`` are skipped — e.g.
        ``exclude_labels=("worker",)`` keeps a parent-side request
        distribution from double-counting the merged worker deltas.
        """
        with self._lock:
            parts = [
                metric
                for (metric_name, labels), metric in self._metrics.items()
                if metric_name == name
                and isinstance(metric, Histogram)
                and not any(key in exclude_labels for key, _ in labels)
            ]
        if not parts:
            return None
        merged = Histogram(name, (), threading.RLock(), parts[0].bounds)
        for part in parts:
            with part._lock:
                if part.bounds != merged.bounds:  # pragma: no cover - defensive
                    continue
                for index, bucket_count in enumerate(part._counts):
                    merged._counts[index] += bucket_count
                merged._count += part._count
                merged._sum += part._sum
                merged._min = min(merged._min, part._min)
                merged._max = max(merged._max, part._max)
        return merged

    def metrics(self) -> Iterator[tuple[str, LabelsKey, Any]]:
        """Every registered metric as ``(name, labels, metric)``, sorted."""
        with self._lock:
            entries = sorted(self._metrics.items())
        for (name, labels), metric in entries:
            yield name, labels, metric

    def kind_of(self, name: str) -> str | None:
        """The metric kind bound to ``name`` (None if never registered)."""
        with self._lock:
            return self._kinds.get(name)

    def snapshot(self) -> dict[str, Any]:
        """Plain-type view of every metric, JSON-serialisable.

        Shape: ``{name: [{"labels": {...}, ...payload...}, ...]}`` with
        counter/gauge payloads ``{"value": v}`` and histogram payloads
        :meth:`Histogram.as_dict`.
        """
        out: dict[str, Any] = {}
        for name, labels, metric in self.metrics():
            payload: dict[str, Any] = {"labels": dict(labels)}
            if isinstance(metric, Histogram):
                payload.update(metric.as_dict())
            else:
                payload["value"] = metric.value
            out.setdefault(name, []).append(payload)
        return out

    # -- spans ---------------------------------------------------------------

    def record_span(self, record: Any) -> None:
        """Append one completed span to the bounded ring."""
        with self._lock:
            self._spans.append(record)

    @property
    def spans(self) -> list[Any]:
        """The retained recent spans, oldest first."""
        with self._lock:
            return list(self._spans)

    # -- delta sync (worker piggyback) ---------------------------------------

    def drain_delta(self) -> dict[str, list[tuple]] | None:
        """Increments since the previous drain; resets the baseline.

        Returns ``None`` when nothing moved (the common steady-state
        answer, so piggybacked messages stay small).  Payload shape::

            {"counters":   [(name, labels, increment), ...],
             "gauges":     [(name, labels, value), ...],
             "histograms": [(name, labels, bounds, bucket_deltas,
                             sum_delta, count_delta, period_min,
                             period_max), ...]}

        Everything inside is plain picklable data — this is the packet
        pool workers attach to result messages.
        """
        counters: list[tuple] = []
        gauges: list[tuple] = []
        histograms: list[tuple] = []
        with self._lock:
            for (name, labels), metric in self._metrics.items():
                key = (name, labels)
                if isinstance(metric, Counter):
                    base = self._counter_base.get(key, 0.0)
                    if metric._value != base:
                        counters.append((name, labels, metric._value - base))
                        self._counter_base[key] = metric._value
                elif isinstance(metric, Gauge):
                    base = self._gauge_base.get(key)
                    if metric._value != base:
                        gauges.append((name, labels, metric._value))
                        self._gauge_base[key] = metric._value
                else:
                    base_counts, base_sum, base_count = self._hist_base.get(
                        key, ([0] * len(metric._counts), 0.0, 0)
                    )
                    if metric._count != base_count:
                        deltas = [
                            now - before
                            for now, before in zip(metric._counts, base_counts)
                        ]
                        histograms.append(
                            (
                                name,
                                labels,
                                metric.bounds,
                                deltas,
                                metric._sum - base_sum,
                                metric._count - base_count,
                                metric._pmin,
                                metric._pmax,
                            )
                        )
                        self._hist_base[key] = (
                            list(metric._counts),
                            metric._sum,
                            metric._count,
                        )
                        metric._pmin = math.inf
                        metric._pmax = -math.inf
        if not counters and not gauges and not histograms:
            return None
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    def merge_delta(
        self,
        delta: Mapping[str, Iterable[tuple]] | None,
        extra_labels: Mapping[str, Any] | None = None,
    ) -> None:
        """Fold a :meth:`drain_delta` payload into this registry.

        ``extra_labels`` are appended to every merged metric's labels —
        the pool backend tags worker deltas with ``worker="N"`` so
        per-worker counters stay distinguishable while
        :meth:`total` / :meth:`merged_histogram` still aggregate them.
        Merging bypasses the global enabled flag: a drained delta is
        data in flight, not new instrumentation.
        """
        if not delta:
            return
        extra = dict(extra_labels or {})
        for name, labels, amount in delta.get("counters", ()):
            self.counter(name, **dict(labels), **extra)._apply(amount)
        for name, labels, value in delta.get("gauges", ()):
            self.gauge(name, **dict(labels), **extra)._apply(value)
        for entry in delta.get("histograms", ()):
            name, labels, bounds, deltas, sum_delta, count_delta, pmin, pmax = entry
            histogram = self.histogram(
                name, bounds=tuple(bounds), **dict(labels), **extra
            )
            with histogram._lock:
                if histogram.bounds != tuple(bounds):  # pragma: no cover
                    continue
                for index, bucket_delta in enumerate(deltas):
                    histogram._counts[index] += bucket_delta
                histogram._count += count_delta
                histogram._sum += sum_delta
                if pmin < histogram._min:
                    histogram._min = pmin
                if pmax > histogram._max:
                    histogram._max = pmax
                if pmin < histogram._pmin:
                    histogram._pmin = pmin
                if pmax > histogram._pmax:
                    histogram._pmax = pmax


# -- the process-wide default registry ---------------------------------------

_GLOBAL_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry.

    Module-level instrumentation (kernel timings, packed repack counts)
    records here; in a forked pool worker the fork-copied instance *is*
    the worker's child registry, baselined by an initial drain so only
    worker-side increments travel back to the parent.
    """
    return _GLOBAL_REGISTRY


def reset_registry() -> MetricsRegistry:
    """Install (and return) a fresh process-wide registry.

    Used by CLI entry points and tests so one invocation's metrics
    never bleed into the next within the same process.
    """
    global _GLOBAL_REGISTRY
    _GLOBAL_REGISTRY = MetricsRegistry()
    return _GLOBAL_REGISTRY
