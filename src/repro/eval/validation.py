"""Offline validation of the collaborative-filtering predictions.

The paper's preliminary evaluation only times the selection algorithms;
a production recommender also needs standard offline accuracy numbers.
This module adds them on top of the existing substrate:

* :func:`holdout_split` — deterministic per-user holdout split of a
  rating matrix (a fraction of every user's ratings is hidden);
* :func:`evaluate_predictions` — MAE / RMSE / coverage of Equation 1 on
  the hidden ratings;
* :func:`evaluate_ranking` — precision / recall / hit-rate @ k of the
  single-user top-k lists against the high ratings in the hidden set;
* :func:`compare_similarities` — run the above for several similarity
  measures on the same split (the quantitative companion of the
  similarity ablation).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from ..core.relevance import SingleUserRecommender
from ..data.ratings import RatingMatrix
from ..similarity.base import UserSimilarity


@dataclass(frozen=True)
class HoldoutSplit:
    """A train/test split of a rating matrix."""

    train: RatingMatrix
    test: RatingMatrix

    @property
    def num_train(self) -> int:
        """Number of training ratings."""
        return self.train.num_ratings

    @property
    def num_test(self) -> int:
        """Number of held-out ratings."""
        return self.test.num_ratings


def holdout_split(
    matrix: RatingMatrix,
    test_fraction: float = 0.2,
    min_train_ratings: int = 2,
    seed: int = 7,
) -> HoldoutSplit:
    """Hide a fraction of every user's ratings for testing.

    Users with fewer than ``min_train_ratings + 1`` ratings keep all of
    them in the training set (there is nothing meaningful to hide).  The
    split is deterministic for a fixed seed — and independent of
    ``PYTHONHASHSEED``: users iterate in matrix insertion order and each
    user's ratings are **sorted before** the shuffle, so no set/dict
    iteration order ever feeds the RNG (pinned by the hash-seed matrix
    test in ``tests/property``).
    """
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    if min_train_ratings < 1:
        raise ValueError("min_train_ratings must be at least 1")
    rng = random.Random(seed)
    train = RatingMatrix(scale=matrix.scale)
    test = RatingMatrix(scale=matrix.scale)
    for user_id in matrix.user_ids():
        items = sorted(matrix.items_of(user_id).items())
        rng.shuffle(items)
        num_test = int(len(items) * test_fraction)
        max_removable = max(0, len(items) - min_train_ratings)
        num_test = min(num_test, max_removable)
        held_out = items[:num_test]
        kept = items[num_test:]
        for item_id, value in kept:
            train.add(user_id, item_id, value)
        for item_id, value in held_out:
            test.add(user_id, item_id, value)
    return HoldoutSplit(train=train, test=test)


@dataclass(frozen=True)
class PredictionMetrics:
    """Accuracy of Equation 1 on held-out ratings."""

    mae: float
    rmse: float
    coverage: float
    num_evaluated: int
    num_skipped: int


def evaluate_predictions(
    split: HoldoutSplit,
    similarity: UserSimilarity,
    peer_threshold: float = 0.0,
    max_peers: int | None = None,
) -> PredictionMetrics:
    """MAE / RMSE of the predicted ratings for every held-out pair.

    Pairs whose prediction is undefined (no similar user rated the item
    in the training set) are skipped and reported via ``coverage`` —
    the fraction of held-out pairs that received a prediction.
    """
    recommender = SingleUserRecommender(
        split.train,
        similarity,
        peer_threshold=peer_threshold,
        max_peers=max_peers,
    )
    absolute_errors: list[float] = []
    squared_errors: list[float] = []
    skipped = 0
    # Hoisted out of the loop: rebuilding this set per held-out triple
    # made the metric pass quadratic in the rating volume.  Membership
    # tests against a set cannot depend on iteration order, so the
    # result is unchanged (and PYTHONHASHSEED-independent either way —
    # pinned by the hash-seed matrix test in tests/property).
    train_users = set(split.train.user_ids())
    for user_id, item_id, actual in split.test.triples():
        if user_id not in train_users:
            skipped += 1
            continue
        predicted = recommender.relevance(user_id, item_id)
        if predicted is None:
            skipped += 1
            continue
        error = predicted - actual
        absolute_errors.append(abs(error))
        squared_errors.append(error * error)
    evaluated = len(absolute_errors)
    total = evaluated + skipped
    return PredictionMetrics(
        mae=sum(absolute_errors) / evaluated if evaluated else 0.0,
        rmse=math.sqrt(sum(squared_errors) / evaluated) if evaluated else 0.0,
        coverage=evaluated / total if total else 0.0,
        num_evaluated=evaluated,
        num_skipped=skipped,
    )


@dataclass(frozen=True)
class RankingMetrics:
    """Top-k ranking quality against the liked held-out items."""

    precision: float
    recall: float
    hit_rate: float
    num_users: int


def evaluate_ranking(
    split: HoldoutSplit,
    similarity: UserSimilarity,
    k: int = 10,
    like_threshold: float = 4.0,
    peer_threshold: float = 0.0,
    max_peers: int | None = None,
) -> RankingMetrics:
    """Precision / recall / hit-rate @ k of the single-user top-k lists.

    For every user with at least one held-out rating ``>= like_threshold``
    the recommender produces its top-``k`` over all items the user has
    not rated in the training set; hits are recommended items the user
    actually liked in the held-out set.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    recommender = SingleUserRecommender(
        split.train,
        similarity,
        peer_threshold=peer_threshold,
        max_peers=max_peers,
    )
    precisions: list[float] = []
    recalls: list[float] = []
    hits = 0
    evaluated_users = 0
    train_users = set(split.train.user_ids())
    for user_id in split.test.user_ids():
        if user_id not in train_users:
            continue
        liked = {
            item_id
            for item_id, value in split.test.items_of(user_id).items()
            if value >= like_threshold
        }
        if not liked:
            continue
        evaluated_users += 1
        recommended = {
            item.item_id for item in recommender.recommend(user_id, k=k)
        }
        if not recommended:
            precisions.append(0.0)
            recalls.append(0.0)
            continue
        hit_items = recommended & liked
        precisions.append(len(hit_items) / len(recommended))
        recalls.append(len(hit_items) / len(liked))
        if hit_items:
            hits += 1
    if not evaluated_users:
        return RankingMetrics(precision=0.0, recall=0.0, hit_rate=0.0, num_users=0)
    return RankingMetrics(
        precision=sum(precisions) / evaluated_users,
        recall=sum(recalls) / evaluated_users,
        hit_rate=hits / evaluated_users,
        num_users=evaluated_users,
    )


def compare_similarities(
    matrix: RatingMatrix,
    similarity_factories: Mapping[str, Callable[[RatingMatrix], UserSimilarity]],
    test_fraction: float = 0.2,
    k: int = 10,
    seed: int = 7,
) -> dict[str, dict[str, float]]:
    """Prediction and ranking metrics for several similarity measures.

    ``similarity_factories`` maps a display name to a callable that
    builds the measure *from the training matrix* (rating-based measures
    must not peek at the held-out ratings; profile/semantic measures can
    ignore the argument).
    """
    split = holdout_split(matrix, test_fraction=test_fraction, seed=seed)
    results: dict[str, dict[str, float]] = {}
    for name, factory in similarity_factories.items():
        measure = factory(split.train)
        prediction = evaluate_predictions(split, measure)
        ranking = evaluate_ranking(split, measure, k=k)
        results[name] = {
            "mae": prediction.mae,
            "rmse": prediction.rmse,
            "coverage": prediction.coverage,
            "precision_at_k": ranking.precision,
            "recall_at_k": ranking.recall,
            "hit_rate": ranking.hit_rate,
        }
    return results


__all__ = [
    "HoldoutSplit",
    "PredictionMetrics",
    "RankingMetrics",
    "compare_similarities",
    "evaluate_predictions",
    "evaluate_ranking",
    "holdout_split",
]
