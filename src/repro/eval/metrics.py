"""Evaluation metrics for group recommendations.

Beyond the paper's own fairness and value measures (Definition 3), this
module provides the standard quantities used to analyse group
recommendation quality in the follow-up literature, which the ablation
benchmarks report:

* per-user satisfaction (mean relevance of the selection for a member,
  normalised by the member's ideal top-z);
* the minimum / mean satisfaction over the group;
* ranking metrics (precision@z against the per-user top sets, nDCG);
* catalog coverage and redundancy of the selection.
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping, Sequence

from ..core.candidates import GroupCandidates
from ..core.fairness import fairness as fairness_score
from ..core.fairness import value as value_score


def user_satisfaction(
    candidates: GroupCandidates, selection: Sequence[str], user_id: str
) -> float:
    """Relevance the selection delivers to a member, relative to their ideal.

    Defined as the sum of ``relevance(u, i)`` over the selected items
    divided by the sum over the user's *ideal* ``|selection|`` items.  A
    value of 1 means the selection is as good for the user as their own
    personal top list; 0 means it contains nothing of any relevance.
    """
    selection = list(selection)
    if not selection:
        return 0.0
    achieved = sum(
        candidates.user_relevance(user_id, item_id) for item_id in selection
    )
    ranking = candidates.user_ranking(user_id)
    ideal = sum(item.score for item in ranking[: len(selection)])
    if ideal == 0.0:
        return 0.0
    return achieved / ideal


def group_satisfaction(
    candidates: GroupCandidates, selection: Sequence[str]
) -> dict[str, float]:
    """Satisfaction of every group member."""
    return {
        user_id: user_satisfaction(candidates, selection, user_id)
        for user_id in candidates.group
    }


def min_satisfaction(candidates: GroupCandidates, selection: Sequence[str]) -> float:
    """The least satisfied member's satisfaction (0 for an empty group)."""
    scores = group_satisfaction(candidates, selection)
    return min(scores.values()) if scores else 0.0


def mean_satisfaction(candidates: GroupCandidates, selection: Sequence[str]) -> float:
    """Average member satisfaction (0 for an empty group)."""
    scores = group_satisfaction(candidates, selection)
    return sum(scores.values()) / len(scores) if scores else 0.0


def satisfaction_spread(
    candidates: GroupCandidates, selection: Sequence[str]
) -> float:
    """Max minus min member satisfaction — a simple group-disparity measure."""
    scores = group_satisfaction(candidates, selection)
    if not scores:
        return 0.0
    return max(scores.values()) - min(scores.values())


def precision_at_z(
    candidates: GroupCandidates, selection: Sequence[str], user_id: str
) -> float:
    """Fraction of the selection inside the user's top-k candidate set."""
    selection = list(selection)
    if not selection:
        return 0.0
    top_items = candidates.user_top_items(user_id)
    hits = sum(1 for item_id in selection if item_id in top_items)
    return hits / len(selection)


def ndcg(
    relevances: Sequence[float],
    ideal_relevances: Sequence[float] | None = None,
) -> float:
    """Normalised discounted cumulative gain of a ranked relevance list.

    ``ideal_relevances`` defaults to the sorted (descending) input, i.e.
    the best possible ordering of the same items.
    """
    def dcg(values: Sequence[float]) -> float:
        return sum(
            value / math.log2(position + 2) for position, value in enumerate(values)
        )

    if not relevances:
        return 0.0
    if ideal_relevances is None:
        ideal_relevances = sorted(relevances, reverse=True)
    ideal = dcg(ideal_relevances)
    if ideal == 0.0:
        return 0.0
    return dcg(relevances) / ideal


def user_ndcg(
    candidates: GroupCandidates, selection: Sequence[str], user_id: str
) -> float:
    """nDCG of the selection order against the user's ideal ordering.

    The gains are the user's relevance scores for the selected items;
    the ideal ordering is the user's own top-``|selection|`` candidates.
    """
    selection = list(selection)
    if not selection:
        return 0.0
    gains = [candidates.user_relevance(user_id, item_id) for item_id in selection]
    ideal = [
        item.score for item in candidates.user_ranking(user_id)[: len(selection)]
    ]
    return ndcg(gains, ideal)


def coverage(selections: Iterable[Sequence[str]], catalog_size: int) -> float:
    """Fraction of the catalog that appears in at least one selection."""
    if catalog_size <= 0:
        return 0.0
    seen: set[str] = set()
    for selection in selections:
        seen.update(selection)
    return len(seen) / catalog_size


def summarize_selection(
    candidates: GroupCandidates, selection: Sequence[str]
) -> dict[str, float]:
    """One-line metric summary used by benchmarks and the CLI."""
    return {
        "fairness": fairness_score(candidates, selection),
        "value": value_score(candidates, selection),
        "min_satisfaction": min_satisfaction(candidates, selection),
        "mean_satisfaction": mean_satisfaction(candidates, selection),
        "satisfaction_spread": satisfaction_spread(candidates, selection),
    }


def compare_selections(
    candidates: GroupCandidates,
    selections: Mapping[str, Sequence[str]],
) -> dict[str, dict[str, float]]:
    """Metric summaries for several named selections (ablation helper)."""
    return {
        name: summarize_selection(candidates, selection)
        for name, selection in selections.items()
    }
