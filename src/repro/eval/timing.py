"""Small timing utilities used by the experiment harness.

The Table II reproduction measures wall-clock time of the brute-force
and heuristic selections.  ``perf_counter`` based helpers keep the
measurement code out of the experiment logic and make it easy to repeat
measurements and report medians (single runs of sub-millisecond
functions are too noisy to compare).
"""

from __future__ import annotations

import statistics
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Iterator


@dataclass
class TimerResult:
    """Wall-clock samples of one measured callable."""

    label: str
    samples_ms: list[float]
    result: Any = None

    @property
    def best_ms(self) -> float:
        """Fastest sample in milliseconds."""
        return min(self.samples_ms)

    @property
    def median_ms(self) -> float:
        """Median sample in milliseconds."""
        return statistics.median(self.samples_ms)

    @property
    def mean_ms(self) -> float:
        """Mean sample in milliseconds."""
        return statistics.fmean(self.samples_ms)


@contextmanager
def stopwatch() -> Iterator[Callable[[], float]]:
    """Context manager yielding a callable that reports elapsed ms."""
    start = time.perf_counter()
    yield lambda: (time.perf_counter() - start) * 1000.0


def time_callable(
    func: Callable[[], Any],
    repeats: int = 3,
    label: str = "",
) -> TimerResult:
    """Run ``func`` ``repeats`` times and collect wall-clock samples.

    The return value of the *last* run is kept in ``result`` so callers
    can both time a selection and inspect what it produced.
    """
    if repeats <= 0:
        raise ValueError("repeats must be positive")
    samples: list[float] = []
    result: Any = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = func()
        samples.append((time.perf_counter() - start) * 1000.0)
    return TimerResult(label=label, samples_ms=samples, result=result)
