"""Plain-text reporting of experiment results.

The benchmarks and the CLI print the reproduced tables in the same shape
the paper uses (Table II has columns m, z, brute-force time, heuristic
time).  Everything here renders to simple aligned ASCII so the output
reads well in a terminal and in the EXPERIMENTS.md log.
"""

from __future__ import annotations

import threading
from typing import Any, Mapping, Sequence

from ..obs import Histogram

from .experiments import (
    AggregationAblationRow,
    Proposition1Row,
    SimilarityAblationRow,
    Table2Result,
    ValueQualityRow,
)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    float_format: str = "{:.2f}",
) -> str:
    """Render ``rows`` as an aligned ASCII table with ``headers``."""
    rendered_rows: list[list[str]] = []
    for row in rows:
        rendered: list[str] = []
        for cell in row:
            if isinstance(cell, float):
                rendered.append(float_format.format(cell))
            else:
                rendered.append(str(cell))
        rendered_rows.append(rendered)
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    header_line = "  ".join(
        header.ljust(widths[index]) for index, header in enumerate(headers)
    )
    lines.append(header_line)
    lines.append("  ".join("-" * width for width in widths))
    for row in rendered_rows:
        lines.append(
            "  ".join(cell.rjust(widths[index]) for index, cell in enumerate(row))
        )
    return "\n".join(lines)


def format_table2(result: Table2Result) -> str:
    """Render the Table II reproduction like the paper's Table II."""
    headers = [
        "m",
        "z",
        "Brute-force (ms)",
        "Heuristic (ms)",
        "Speedup",
        "BF fairness",
        "Heur fairness",
    ]
    rows = [
        [
            row.m,
            row.z,
            row.brute_force_ms,
            row.heuristic_ms,
            row.speedup,
            row.brute_force_fairness,
            row.heuristic_fairness,
        ]
        for row in result.rows
    ]
    return format_table(headers, rows, float_format="{:.3f}")


def format_proposition1(rows: Sequence[Proposition1Row]) -> str:
    """Render the Proposition 1 verification sweep."""
    headers = ["|G|", "z", "m", "fairness", "z >= |G|", "holds"]
    table_rows = [
        [row.group_size, row.z, row.m, row.fairness, row.z >= row.group_size, row.holds]
        for row in rows
    ]
    return format_table(headers, table_rows, float_format="{:.3f}")


def format_aggregation_ablation(rows: Sequence[AggregationAblationRow]) -> str:
    """Render the aggregation ablation (Ablation A)."""
    headers = [
        "aggregation",
        "group",
        "fairness",
        "value",
        "min satisfaction",
        "mean satisfaction",
    ]
    table_rows = [
        [
            row.aggregation,
            row.group_kind,
            row.fairness,
            row.value,
            row.min_satisfaction,
            row.mean_satisfaction,
        ]
        for row in rows
    ]
    return format_table(headers, table_rows, float_format="{:.3f}")


def format_similarity_ablation(rows: Sequence[SimilarityAblationRow]) -> str:
    """Render the similarity ablation (Ablation B)."""
    headers = [
        "similarity",
        "fairness",
        "value",
        "mean satisfaction",
        "candidates",
        "time (ms)",
    ]
    table_rows = [
        [
            row.similarity,
            row.fairness,
            row.value,
            row.mean_satisfaction,
            row.candidates,
            row.elapsed_ms,
        ]
        for row in rows
    ]
    return format_table(headers, table_rows, float_format="{:.3f}")


def format_value_quality(rows: Sequence[ValueQualityRow]) -> str:
    """Render the selection-quality ablation (Ablation C)."""
    headers = ["m", "z", "greedy/opt", "swap/opt", "greedy value", "optimal value"]
    table_rows = [
        [
            row.m,
            row.z,
            row.greedy_ratio,
            row.swap_ratio,
            row.greedy_value,
            row.brute_force_value,
        ]
        for row in rows
    ]
    return format_table(headers, table_rows, float_format="{:.3f}")


#: Latency table columns shared by :func:`format_latency` and
#: :func:`format_latency_histogram` — every surface that prints a
#: latency distribution prints these.
_LATENCY_COLUMNS = ("count", "mean ms", "p50 ms", "p95 ms", "p99 ms", "max ms")


def _latency_row(summary: Mapping[str, float]) -> list[Any]:
    return [
        "latency",
        summary["count"],
        summary["mean"],
        summary["p50"],
        summary["p95"],
        summary["p99"],
        summary["max"],
    ]


def format_latency(samples_ms: Sequence[float], label: str = "request") -> str:
    """Render a latency distribution (mean / p50 / p95 / p99 / max).

    The samples are routed through the shared
    :class:`~repro.obs.Histogram` type, so CLI serve output, benchmarks
    and registry-backed stats views all report *identical* percentile
    math (nearest-rank over log-spaced buckets, clamped to the observed
    range).
    """
    if not samples_ms:
        return format_table([label, "count"], [["-", 0]])
    histogram = Histogram("latency", (), threading.RLock())
    for sample in samples_ms:
        # The unconditional record path: a report renders whatever it
        # was handed even while live instrumentation is disabled.
        histogram._observe(sample)
    return format_latency_histogram(histogram, label)


def format_latency_histogram(
    histogram: Histogram | None, label: str = "request"
) -> str:
    """Render one (possibly merged) registry histogram as a latency table.

    ``None`` (no such histogram in the registry yet) renders the same
    empty table as a histogram with zero observations.
    """
    if histogram is None:
        return format_table([label, "count"], [["-", 0]])
    summary = histogram.as_dict()
    if not summary["count"]:
        return format_table([label, "count"], [["-", 0]])
    headers = [label, *_LATENCY_COLUMNS]
    return format_table(headers, [_latency_row(summary)], float_format="{:.3f}")


def format_serving_stats(stats: Mapping[str, Any]) -> str:
    """Render :meth:`RecommendationService.stats` output for the terminal.

    The stats dict is the service's registry view; alongside the
    request counters, cache table, index and backend lines this renders
    the per-kind ``latency`` percentiles when any were recorded.
    """
    lines = [format_metrics(stats.get("requests", {}))]
    latency_rows = [
        [kind, *_latency_row(summary)[1:]]
        for kind, summary in (stats.get("latency") or {}).items()
        if summary.get("count")
    ]
    if latency_rows:
        lines.append("")
        lines.append(
            format_table(
                ["kind", *_LATENCY_COLUMNS],
                latency_rows,
                float_format="{:.3f}",
            )
        )
    cache_rows = []
    for name in ("similarity_cache", "relevance_cache", "group_cache"):
        cache = stats.get(name)
        if cache:
            cache_rows.append(
                [
                    name.replace("_cache", ""),
                    cache["hits"],
                    cache["misses"],
                    cache["evictions"],
                    cache["invalidations"],
                    cache["hit_rate"],
                ]
            )
    if cache_rows:
        lines.append("")
        lines.append(
            format_table(
                ["cache", "hits", "misses", "evictions", "invalidated", "hit rate"],
                cache_rows,
                float_format="{:.3f}",
            )
        )
    index = stats.get("index")
    if index:
        lines.append("")
        lines.append(
            f"neighbor index: {index['built_rows']}/{index['users']} rows "
            f"(δ={index['threshold']})"
        )
    backend = stats.get("backend")
    if backend:
        lines.append(
            f"backend: {backend['name']} (workers={backend['workers']})"
        )
        pool = backend.get("pool")
        if pool:
            lines.append(
                f"pool: epoch {pool['epoch']} (resident "
                f"{pool['resident_epoch']}), {pool['live_workers']} live "
                f"workers [{pool['min_workers']}..{pool['max_workers']}], "
                f"{pool['restarts']} restarts, {pool['delta_syncs']} "
                f"broadcasts ({pool['sync_messages']} messages, "
                f"{pool['sync_bytes']} B), scale +{pool['scale_ups']}/"
                f"-{pool['scale_downs']}"
            )
            if pool.get("target_p99_ms"):
                observed = pool.get("batch_p99_ms")
                lines.append(
                    f"pool p99 target: {pool['target_p99_ms']:.1f} ms "
                    f"(windowed batch p99: "
                    + (f"{observed:.3f} ms" if observed is not None else "n/a")
                    + ")"
                )
    return "\n".join(lines)


def format_metrics(metrics: Mapping[str, float]) -> str:
    """Render a flat metric mapping as ``name: value`` lines."""
    width = max((len(name) for name in metrics), default=0)
    return "\n".join(
        f"{name.ljust(width)} : {value:.4f}" if isinstance(value, float)
        else f"{name.ljust(width)} : {value}"
        for name, value in metrics.items()
    )
