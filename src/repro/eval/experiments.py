"""Experiment harness reproducing the paper's evaluation.

The paper's preliminary evaluation (Section VI, Table II) compares the
brute-force selection against the fairness-aware heuristic in wall-clock
time for candidate pool sizes ``m ∈ {10, 20, 30}`` and result sizes
``z ∈ {4, 8, 12, 16, 20}`` (with ``z ≤ m``), noting that the fairness of
the two results is identical and verifying Proposition 1.

This module provides:

* :func:`synthetic_candidates` — a deterministic generator of
  :class:`~repro.core.candidates.GroupCandidates` with a controlled pool
  size ``m`` and group size, which is what the paper's experiment
  effectively varies;
* :func:`run_table2` — the Table II reproduction (timings + fairness of
  both algorithms for each ``(m, z)`` cell);
* :func:`verify_proposition1` — empirical check of Proposition 1 over a
  sweep of group sizes and ``z`` values;
* :func:`run_aggregation_ablation` and
  :func:`run_similarity_ablation` — the extension experiments indexed in
  DESIGN.md (Ablations A and B);
* :func:`run_value_quality` — greedy vs. swap vs. brute-force value
  ratios (Ablation C).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Sequence

from ..core.aggregation import get_aggregation
from ..core.brute_force import BruteForceSelector, subset_count
from ..exec import ExecutionBackend, backend_scope
from ..core.candidates import GroupCandidates
from ..core.fairness import fairness as fairness_of
from ..core.fairness import value as value_of
from ..core.greedy import FairnessAwareGreedy
from ..core.group import GroupRecommender
from ..core.swap import SwapRefinementSelector
from ..data.datasets import HealthDataset, generate_dataset
from ..data.groups import Group, random_group
from ..similarity.hybrid import HybridSimilarity
from ..similarity.profile_sim import ProfileSimilarity
from ..similarity.ratings_sim import (
    CosineRatingSimilarity,
    JaccardRatingSimilarity,
    PearsonRatingSimilarity,
)
from ..similarity.semantic_sim import SemanticSimilarity
from .metrics import summarize_selection
from .timing import time_callable

#: The (m, z) grid of Table II.  z values larger than m are skipped,
#: matching the table (m=10 only reports z=4 and z=8).
TABLE2_M_VALUES: tuple[int, ...] = (10, 20, 30)
TABLE2_Z_VALUES: tuple[int, ...] = (4, 8, 12, 16, 20)


def synthetic_candidates(
    num_candidates: int,
    group_size: int = 4,
    top_k: int = 10,
    seed: int = 7,
    rating_scale: tuple[float, float] = (1.0, 5.0),
) -> GroupCandidates:
    """Generate a synthetic candidate bundle with ``m`` candidates.

    Member relevance scores are drawn uniformly from the rating scale,
    and the group relevance uses the average aggregation — the structure
    (not the provenance) of the scores is what drives the cost of the
    selection algorithms, so this is the controlled workload that the
    Table II timing sweep needs.
    """
    if num_candidates <= 0:
        raise ValueError("num_candidates must be positive")
    if group_size <= 0:
        raise ValueError("group_size must be positive")
    rng = random.Random(seed)
    low, high = rating_scale
    members = [f"member-{index}" for index in range(group_size)]
    group = Group(member_ids=members, caregiver_id="caregiver", name="synthetic")
    items = [f"item-{index:03d}" for index in range(num_candidates)]
    relevance = {
        member: {item: round(rng.uniform(low, high), 3) for item in items}
        for member in members
    }
    group_relevance = {
        item: sum(relevance[member][item] for member in members) / group_size
        for item in items
    }
    return GroupCandidates(
        group=group,
        relevance=relevance,
        group_relevance=group_relevance,
        top_k=top_k,
    )


# ---------------------------------------------------------------------------
# Table II — brute force vs. heuristic timing
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Table2Row:
    """One cell of Table II."""

    m: int
    z: int
    brute_force_ms: float
    heuristic_ms: float
    brute_force_fairness: float
    heuristic_fairness: float
    brute_force_value: float
    heuristic_value: float
    subsets_enumerated: int

    @property
    def speedup(self) -> float:
        """Brute-force time divided by heuristic time."""
        if self.heuristic_ms == 0.0:
            return float("inf")
        return self.brute_force_ms / self.heuristic_ms


@dataclass
class Table2Result:
    """All rows of the Table II reproduction."""

    rows: list[Table2Row] = field(default_factory=list)
    group_size: int = 4
    repeats: int = 1

    def row(self, m: int, z: int) -> Table2Row:
        """The row for a specific ``(m, z)`` cell."""
        for row in self.rows:
            if row.m == m and row.z == z:
                return row
        raise KeyError(f"no row for m={m}, z={z}")


def _table2_cell(spec: tuple[int, int, int, int, int, int]) -> Table2Row:
    """Time one ``(m, z)`` cell (module-level: process-backend safe).

    The candidate bundle is regenerated per cell from the seed, which
    is deterministic, so per-cell execution produces exactly the rows
    the original per-``m`` loop did — in any backend.
    """
    m, z, group_size, top_k, repeats, seed = spec
    candidates = synthetic_candidates(
        num_candidates=m, group_size=group_size, top_k=top_k, seed=seed
    )
    brute = BruteForceSelector(max_subsets=None)
    greedy = FairnessAwareGreedy(restrict_to_top_k=False)
    brute_timing = time_callable(
        lambda: brute.select(candidates, z), repeats=repeats
    )
    greedy_timing = time_callable(
        lambda: greedy.select(candidates, z), repeats=repeats
    )
    brute_result = brute_timing.result
    greedy_result = greedy_timing.result
    return Table2Row(
        m=m,
        z=z,
        brute_force_ms=brute_timing.median_ms,
        heuristic_ms=greedy_timing.median_ms,
        brute_force_fairness=brute_result.fairness,
        heuristic_fairness=greedy_result.fairness,
        brute_force_value=brute_result.value,
        heuristic_value=greedy_result.value,
        subsets_enumerated=subset_count(m, z),
    )


def run_table2(
    m_values: Sequence[int] = TABLE2_M_VALUES,
    z_values: Sequence[int] = TABLE2_Z_VALUES,
    group_size: int = 4,
    top_k: int = 10,
    repeats: int = 1,
    seed: int = 7,
    max_subsets: int | None = None,
    backend: "ExecutionBackend | str | None" = None,
) -> Table2Result:
    """Reproduce Table II: brute force vs. heuristic wall-clock time.

    ``max_subsets`` optionally skips cells whose subset count exceeds
    the limit (useful for quick smoke runs); the full grid (the paper's
    largest cell enumerates ``(30 choose 12) ≈ 8.6 × 10^7`` subsets) can
    take minutes of CPU, exactly as the paper reports.  ``backend``
    fans the grid cells out (the process backend genuinely parallelises
    the brute-force enumeration; note per-cell *timings* then share the
    machine, so compare cells within one run only).
    """
    result = Table2Result(group_size=group_size, repeats=repeats)
    # The Table II experiment selects z out of the full m-candidate pool, so
    # every member's candidate list is the whole ranked pool (k = m); the
    # per-user top-k sets used by the fairness test stay at ``top_k``.
    specs = [
        (m, z, group_size, top_k, repeats, seed)
        for m in m_values
        for z in z_values
        if z <= m
        and (max_subsets is None or subset_count(m, z) <= max_subsets)
    ]
    with backend_scope(backend) as resolved:
        result.rows.extend(resolved.map_items(_table2_cell, specs))
    return result


# ---------------------------------------------------------------------------
# Proposition 1 — fairness = 1 whenever z >= |G|
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Proposition1Row:
    """One checked configuration of Proposition 1."""

    group_size: int
    z: int
    m: int
    fairness: float
    holds: bool


def _proposition1_cell(
    spec: tuple[int, int, int, int, int]
) -> Proposition1Row:
    """Check one ``(group size, z)`` configuration (process-safe)."""
    group_size, z, num_candidates, top_k, seed = spec
    candidates = synthetic_candidates(
        num_candidates=num_candidates,
        group_size=group_size,
        top_k=top_k,
        seed=seed + group_size,
    )
    selection = FairnessAwareGreedy().select(candidates, z)
    fairness_value = selection.fairness
    return Proposition1Row(
        group_size=group_size,
        z=z,
        m=num_candidates,
        fairness=fairness_value,
        holds=(z < group_size) or (fairness_value == 1.0),
    )


def verify_proposition1(
    group_sizes: Sequence[int] = (2, 3, 4, 5, 6, 8),
    z_values: Sequence[int] = (2, 4, 6, 8, 10, 12),
    num_candidates: int = 30,
    top_k: int = 10,
    seed: int = 7,
    backend: "ExecutionBackend | str | None" = None,
) -> list[Proposition1Row]:
    """Check Proposition 1 empirically over a sweep of configurations.

    Only configurations with ``z >= |G|`` are asserted; rows with
    ``z < |G|`` are still reported (fairness may or may not be 1 there).
    The sweep cells run through ``backend`` in grid order.
    """
    specs = [
        (group_size, z, num_candidates, top_k, seed)
        for group_size in group_sizes
        for z in z_values
        if z <= num_candidates
    ]
    with backend_scope(backend) as resolved:
        return resolved.map_items(_proposition1_cell, specs)


# ---------------------------------------------------------------------------
# Ablation A — aggregation strategies on real(istic) pipeline output
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AggregationAblationRow:
    """Metrics of one aggregation strategy on one group."""

    aggregation: str
    group_kind: str
    fairness: float
    value: float
    min_satisfaction: float
    mean_satisfaction: float


def run_aggregation_ablation(
    dataset: HealthDataset | None = None,
    group_size: int = 5,
    z: int = 10,
    top_k: int = 10,
    aggregations: Sequence[str] = ("average", "minimum", "maximum", "median"),
    seed: int = 7,
) -> list[AggregationAblationRow]:
    """Compare aggregation semantics (Definition 2 designs + extensions).

    Runs the full CF pipeline on a synthetic dataset for a random and a
    deliberately divergent group, then reports fairness / value /
    satisfaction of the greedy selection under each aggregation.
    """
    dataset = dataset or generate_dataset(seed=seed)
    greedy = FairnessAwareGreedy()
    rows: list[AggregationAblationRow] = []
    groups = {
        "random": random_group(dataset.users.ids(), group_size, seed=seed),
        "divergent": _divergent_group(dataset, group_size, seed=seed),
    }
    for aggregation_name in aggregations:
        for group_kind, group in groups.items():
            recommender = GroupRecommender(
                matrix=dataset.ratings,
                similarity=PearsonRatingSimilarity(dataset.ratings),
                aggregation=get_aggregation(aggregation_name),
                top_k=top_k,
            )
            candidates = recommender.build_candidates(group)
            if candidates.num_candidates == 0:
                continue
            selection = greedy.select(candidates, min(z, candidates.num_candidates))
            metrics = summarize_selection(candidates, list(selection.items))
            rows.append(
                AggregationAblationRow(
                    aggregation=aggregation_name,
                    group_kind=group_kind,
                    fairness=metrics["fairness"],
                    value=metrics["value"],
                    min_satisfaction=metrics["min_satisfaction"],
                    mean_satisfaction=metrics["mean_satisfaction"],
                )
            )
    return rows


def _divergent_group(dataset: HealthDataset, group_size: int, seed: int) -> Group:
    from ..data.groups import diverse_group

    anchor = dataset.users.ids()[0]
    return diverse_group(dataset.ratings, anchor, group_size, seed=seed)


# ---------------------------------------------------------------------------
# Ablation B — similarity measures
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SimilarityAblationRow:
    """Metrics and cost of one similarity measure."""

    similarity: str
    fairness: float
    value: float
    mean_satisfaction: float
    candidates: int
    elapsed_ms: float


def run_similarity_ablation(
    dataset: HealthDataset | None = None,
    group_size: int = 5,
    z: int = 10,
    top_k: int = 10,
    seed: int = 7,
) -> list[SimilarityAblationRow]:
    """Compare the RS / CS / SS measures (and extras) end to end."""
    dataset = dataset or generate_dataset(seed=seed)
    group = random_group(dataset.users.ids(), group_size, seed=seed)
    greedy = FairnessAwareGreedy()
    measures = {
        "ratings-pearson": PearsonRatingSimilarity(dataset.ratings),
        "ratings-cosine": CosineRatingSimilarity(dataset.ratings),
        "ratings-jaccard": JaccardRatingSimilarity(dataset.ratings),
        "profile-tfidf": ProfileSimilarity(dataset.users),
        "semantic-snomed": SemanticSimilarity(dataset.users, dataset.ontology),
        "hybrid": HybridSimilarity(
            [
                PearsonRatingSimilarity(dataset.ratings),
                ProfileSimilarity(dataset.users),
                SemanticSimilarity(dataset.users, dataset.ontology),
            ]
        ),
    }
    rows: list[SimilarityAblationRow] = []
    for name, measure in measures.items():
        recommender = GroupRecommender(
            matrix=dataset.ratings,
            similarity=measure,
            aggregation="average",
            top_k=top_k,
        )
        timing = time_callable(lambda: recommender.build_candidates(group), repeats=1)
        candidates = timing.result
        if candidates.num_candidates == 0:
            continue
        selection = greedy.select(candidates, min(z, candidates.num_candidates))
        metrics = summarize_selection(candidates, list(selection.items))
        rows.append(
            SimilarityAblationRow(
                similarity=name,
                fairness=metrics["fairness"],
                value=metrics["value"],
                mean_satisfaction=metrics["mean_satisfaction"],
                candidates=candidates.num_candidates,
                elapsed_ms=timing.median_ms,
            )
        )
    return rows


# ---------------------------------------------------------------------------
# Ablation C — selection quality: greedy vs. swap vs. brute force
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ValueQualityRow:
    """Value achieved by each selector on one (m, z) configuration."""

    m: int
    z: int
    greedy_value: float
    swap_value: float
    brute_force_value: float

    @property
    def greedy_ratio(self) -> float:
        """Greedy value divided by the optimal value (1.0 = optimal)."""
        if self.brute_force_value == 0.0:
            return 1.0
        return self.greedy_value / self.brute_force_value

    @property
    def swap_ratio(self) -> float:
        """Swap-refined value divided by the optimal value."""
        if self.brute_force_value == 0.0:
            return 1.0
        return self.swap_value / self.brute_force_value


def _value_quality_cell(
    spec: tuple[int, int, int, int, int]
) -> ValueQualityRow:
    """Run the three selectors on one ``(m, z)`` cell (process-safe)."""
    m, z, group_size, top_k, seed = spec
    candidates = synthetic_candidates(
        num_candidates=m, group_size=group_size, top_k=top_k, seed=seed
    )
    return ValueQualityRow(
        m=m,
        z=z,
        greedy_value=FairnessAwareGreedy().select(candidates, z).value,
        swap_value=SwapRefinementSelector().select(candidates, z).value,
        brute_force_value=BruteForceSelector().select(candidates, z).value,
    )


def run_value_quality(
    m_values: Sequence[int] = (10, 15, 20),
    z_values: Sequence[int] = (4, 6, 8),
    group_size: int = 4,
    top_k: int = 10,
    seed: int = 7,
    backend: "ExecutionBackend | str | None" = None,
) -> list[ValueQualityRow]:
    """Compare the value achieved by greedy, swap and brute force.

    The grid cells run through ``backend``; the resulting rows are
    bit-identical for every backend (the selectors are deterministic).
    """
    specs = [
        (m, z, group_size, top_k, seed)
        for m in m_values
        for z in z_values
        if z <= m
    ]
    with backend_scope(backend) as resolved:
        return resolved.map_items(_value_quality_cell, specs)


__all__ = [
    "AggregationAblationRow",
    "Proposition1Row",
    "SimilarityAblationRow",
    "TABLE2_M_VALUES",
    "TABLE2_Z_VALUES",
    "Table2Result",
    "Table2Row",
    "ValueQualityRow",
    "run_aggregation_ablation",
    "run_similarity_ablation",
    "run_table2",
    "run_value_quality",
    "synthetic_candidates",
    "verify_proposition1",
]
