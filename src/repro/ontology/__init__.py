"""Ontology substrate: concept hierarchy and semantic similarity."""

from .ontology import Concept, HealthOntology
from .pathsim import (
    CONCEPT_SIMILARITIES,
    get_concept_similarity,
    inverse_path_similarity,
    leacock_chodorow_similarity,
    linear_path_similarity,
    path_similarity,
    wu_palmer_similarity,
)
from .snomed import (
    ACUTE_BRONCHITIS,
    BROKEN_ARM,
    CHEST_PAIN,
    TRACHEOBRONCHITIS,
    build_snomed_like_ontology,
    extend_with_random_subtrees,
    paper_example_concepts,
)

__all__ = [
    "ACUTE_BRONCHITIS",
    "BROKEN_ARM",
    "CHEST_PAIN",
    "CONCEPT_SIMILARITIES",
    "Concept",
    "HealthOntology",
    "TRACHEOBRONCHITIS",
    "build_snomed_like_ontology",
    "extend_with_random_subtrees",
    "get_concept_similarity",
    "inverse_path_similarity",
    "leacock_chodorow_similarity",
    "linear_path_similarity",
    "paper_example_concepts",
    "path_similarity",
    "wu_palmer_similarity",
]
