"""Synthetic SNOMED-CT-like hierarchy.

The paper computes problem-to-problem similarity on the SNOMED-CT class
hierarchy (Section V.C).  SNOMED-CT is licensed and far too large to
bundle, so :func:`build_snomed_like_ontology` constructs a *structural
stand-in*: an IS-A hierarchy rooted at a single concept, organised into
the familiar top-level clinical-finding branches (respiratory,
cardiovascular, digestive, musculoskeletal, neoplastic, endocrine,
neurological, mental-health, infectious-disease and symptom findings).
Like the real SNOMED-CT, some concepts carry more than one IS-A parent.

The stand-in reproduces the concrete distances the paper's discussion of
Table I relies on:

* ``Acute bronchitis`` ↔ ``Tracheobronchitis`` — shortest path **2**
  (both are children of ``Bronchitis``);
* ``Acute bronchitis`` ↔ ``Chest pain`` — shortest path **5**
  (Acute bronchitis → Bronchitis → Disorder of bronchus → Finding of
  region of thorax → Pain of truncal structure → Chest pain).

For scale experiments, :func:`extend_with_random_subtrees` grows the
hierarchy with deterministic synthetic subtrees.
"""

from __future__ import annotations

import random
from typing import Sequence

from .ontology import HealthOntology

#: Concept ids of the nodes that appear in the paper's Table I discussion.
ACUTE_BRONCHITIS = "SCT-RESP-0031"
TRACHEOBRONCHITIS = "SCT-RESP-0032"
CHEST_PAIN = "SCT-SYMP-0012"
BROKEN_ARM = "SCT-MUSC-0021"

#: ``(concept_id, name, parent_ids, synonyms)`` rows of the hand-written
#: core hierarchy.  Parents always appear before their children.
_CORE_CONCEPTS: tuple[tuple[str, str, tuple[str, ...], tuple[str, ...]], ...] = (
    ("SCT-ROOT", "SNOMED CT Concept", (), ()),
    ("SCT-FIND", "Clinical finding", ("SCT-ROOT",), ()),
    # --- top-level branches ----------------------------------------------
    ("SCT-DIS", "Disease", ("SCT-FIND",), ("Disorder",)),
    ("SCT-SYMP", "Symptom finding", ("SCT-FIND",), ("Symptom",)),
    ("SCT-THOR-0001", "Finding of region of thorax", ("SCT-FIND",), ()),
    # --- respiratory branch ----------------------------------------------
    ("SCT-RESP-0001", "Disorder of respiratory system", ("SCT-DIS",), ()),
    ("SCT-RESP-0002", "Disorder of lower respiratory system", ("SCT-RESP-0001",), ()),
    # Disorder of bronchus sits both under the lower-respiratory branch and
    # under the thorax-region findings, exactly like real SNOMED-CT places
    # bronchial disorders in the thorax body region.  This double parent
    # yields the length-5 shortest path between acute bronchitis and chest
    # pain that the paper quotes.
    (
        "SCT-RESP-0003",
        "Disorder of bronchus",
        ("SCT-RESP-0002", "SCT-THOR-0001"),
        (),
    ),
    ("SCT-RESP-0004", "Disorder of lung", ("SCT-RESP-0002",), ()),
    ("SCT-RESP-0005", "Disorder of upper respiratory system", ("SCT-RESP-0001",), ()),
    ("SCT-RESP-0030", "Bronchitis", ("SCT-RESP-0003",), ()),
    (ACUTE_BRONCHITIS, "Acute bronchitis", ("SCT-RESP-0030",), ()),
    (TRACHEOBRONCHITIS, "Tracheobronchitis", ("SCT-RESP-0030",), ()),
    ("SCT-RESP-0033", "Chronic bronchitis", ("SCT-RESP-0030",), ()),
    ("SCT-RESP-0040", "Pneumonia", ("SCT-RESP-0004",), ()),
    ("SCT-RESP-0041", "Pulmonary emphysema", ("SCT-RESP-0004",), ("Emphysema",)),
    ("SCT-RESP-0042", "Asthma", ("SCT-RESP-0003",), ()),
    ("SCT-RESP-0050", "Acute sinusitis", ("SCT-RESP-0005",), ()),
    ("SCT-RESP-0051", "Allergic rhinitis", ("SCT-RESP-0005",), ("Hay fever",)),
    # --- symptom branch (chest pain lives under the thorax findings) -------
    ("SCT-SYMP-0001", "Pain finding", ("SCT-SYMP",), ("Pain",)),
    ("SCT-SYMP-0010", "Pain of truncal structure", ("SCT-THOR-0001",), ()),
    (CHEST_PAIN, "Chest pain", ("SCT-SYMP-0010",), ("Chest pains",)),
    ("SCT-SYMP-0013", "Abdominal pain", ("SCT-SYMP-0001",), ()),
    ("SCT-SYMP-0014", "Headache", ("SCT-SYMP-0001",), ()),
    ("SCT-SYMP-0015", "Fatigue", ("SCT-SYMP",), ("Tiredness",)),
    ("SCT-SYMP-0016", "Nausea", ("SCT-SYMP",), ()),
    ("SCT-SYMP-0017", "Fever", ("SCT-SYMP",), ("Pyrexia",)),
    # --- cardiovascular branch ------------------------------------------------
    ("SCT-CARD-0001", "Disorder of cardiovascular system", ("SCT-DIS",), ()),
    ("SCT-CARD-0002", "Heart disease", ("SCT-CARD-0001",), ()),
    ("SCT-CARD-0003", "Hypertensive disorder", ("SCT-CARD-0001",), ("Hypertension",)),
    ("SCT-CARD-0004", "Ischemic heart disease", ("SCT-CARD-0002",), ()),
    ("SCT-CARD-0005", "Myocardial infarction", ("SCT-CARD-0004",), ("Heart attack",)),
    ("SCT-CARD-0006", "Angina pectoris", ("SCT-CARD-0004",), ("Angina",)),
    ("SCT-CARD-0007", "Cardiac arrhythmia", ("SCT-CARD-0002",), ()),
    ("SCT-CARD-0008", "Atrial fibrillation", ("SCT-CARD-0007",), ()),
    ("SCT-CARD-0009", "Heart failure", ("SCT-CARD-0002",), ()),
    # --- digestive branch -----------------------------------------------------
    ("SCT-DIGE-0001", "Disorder of digestive system", ("SCT-DIS",), ()),
    ("SCT-DIGE-0002", "Disorder of stomach", ("SCT-DIGE-0001",), ()),
    ("SCT-DIGE-0003", "Gastritis", ("SCT-DIGE-0002",), ()),
    ("SCT-DIGE-0004", "Gastric ulcer", ("SCT-DIGE-0002",), ()),
    ("SCT-DIGE-0005", "Disorder of intestine", ("SCT-DIGE-0001",), ()),
    ("SCT-DIGE-0006", "Irritable bowel syndrome", ("SCT-DIGE-0005",), ()),
    ("SCT-DIGE-0007", "Crohn's disease", ("SCT-DIGE-0005",), ()),
    ("SCT-DIGE-0008", "Disorder of liver", ("SCT-DIGE-0001",), ()),
    ("SCT-DIGE-0009", "Hepatitis", ("SCT-DIGE-0008",), ()),
    # --- musculoskeletal branch (broken arm from Table I) ------------------------
    ("SCT-MUSC-0001", "Disorder of musculoskeletal system", ("SCT-DIS",), ()),
    ("SCT-MUSC-0002", "Arthropathy", ("SCT-MUSC-0001",), ("Joint disorder",)),
    ("SCT-MUSC-0003", "Osteoarthritis", ("SCT-MUSC-0002",), ()),
    ("SCT-MUSC-0004", "Rheumatoid arthritis", ("SCT-MUSC-0002",), ()),
    ("SCT-MUSC-0010", "Fracture of bone", ("SCT-MUSC-0001",), ("Bone fracture",)),
    ("SCT-MUSC-0020", "Fracture of upper limb", ("SCT-MUSC-0010",), ()),
    (BROKEN_ARM, "Fracture of arm", ("SCT-MUSC-0020",), ("Broken arm",)),
    ("SCT-MUSC-0022", "Fracture of lower limb", ("SCT-MUSC-0010",), ()),
    ("SCT-MUSC-0030", "Osteoporosis", ("SCT-MUSC-0001",), ()),
    # --- neoplastic branch (iManageCancer context) ----------------------------------
    ("SCT-NEOP-0001", "Neoplastic disease", ("SCT-DIS",), ("Neoplasm",)),
    ("SCT-NEOP-0002", "Malignant neoplastic disease", ("SCT-NEOP-0001",), ("Cancer",)),
    ("SCT-NEOP-0003", "Malignant tumor of breast", ("SCT-NEOP-0002",), ("Breast cancer",)),
    ("SCT-NEOP-0004", "Malignant tumor of lung", ("SCT-NEOP-0002",), ("Lung cancer",)),
    ("SCT-NEOP-0005", "Malignant tumor of prostate", ("SCT-NEOP-0002",), ("Prostate cancer",)),
    ("SCT-NEOP-0006", "Malignant tumor of colon", ("SCT-NEOP-0002",), ("Colon cancer",)),
    ("SCT-NEOP-0007", "Leukemia", ("SCT-NEOP-0002",), ()),
    ("SCT-NEOP-0008", "Lymphoma", ("SCT-NEOP-0002",), ()),
    ("SCT-NEOP-0009", "Benign neoplasm", ("SCT-NEOP-0001",), ()),
    # --- endocrine / metabolic branch -------------------------------------------------
    ("SCT-ENDO-0001", "Disorder of endocrine system", ("SCT-DIS",), ()),
    ("SCT-ENDO-0002", "Diabetes mellitus", ("SCT-ENDO-0001",), ()),
    ("SCT-ENDO-0003", "Diabetes mellitus type 1", ("SCT-ENDO-0002",), ()),
    ("SCT-ENDO-0004", "Diabetes mellitus type 2", ("SCT-ENDO-0002",), ()),
    ("SCT-ENDO-0005", "Disorder of thyroid gland", ("SCT-ENDO-0001",), ()),
    ("SCT-ENDO-0006", "Hypothyroidism", ("SCT-ENDO-0005",), ()),
    ("SCT-ENDO-0007", "Hyperthyroidism", ("SCT-ENDO-0005",), ()),
    ("SCT-ENDO-0008", "Obesity", ("SCT-ENDO-0001",), ()),
    # --- neurological branch -------------------------------------------------------------
    ("SCT-NEUR-0001", "Disorder of nervous system", ("SCT-DIS",), ()),
    ("SCT-NEUR-0002", "Epilepsy", ("SCT-NEUR-0001",), ()),
    ("SCT-NEUR-0003", "Migraine", ("SCT-NEUR-0001",), ()),
    ("SCT-NEUR-0004", "Parkinson's disease", ("SCT-NEUR-0001",), ()),
    ("SCT-NEUR-0005", "Multiple sclerosis", ("SCT-NEUR-0001",), ()),
    # --- mental health branch ----------------------------------------------------------------
    ("SCT-MENT-0001", "Mental disorder", ("SCT-FIND",), ()),
    ("SCT-MENT-0002", "Depressive disorder", ("SCT-MENT-0001",), ("Depression",)),
    ("SCT-MENT-0003", "Anxiety disorder", ("SCT-MENT-0001",), ("Anxiety",)),
    ("SCT-MENT-0004", "Insomnia", ("SCT-MENT-0001",), ()),
    # --- infectious branch ------------------------------------------------------------------------
    ("SCT-INFE-0001", "Infectious disease", ("SCT-DIS",), ()),
    ("SCT-INFE-0002", "Viral disease", ("SCT-INFE-0001",), ()),
    ("SCT-INFE-0003", "Influenza", ("SCT-INFE-0002",), ("Flu",)),
    ("SCT-INFE-0004", "Bacterial infectious disease", ("SCT-INFE-0001",), ()),
    ("SCT-INFE-0005", "Urinary tract infection", ("SCT-INFE-0004",), ()),
)


def build_snomed_like_ontology() -> HealthOntology:
    """Build the hand-written SNOMED-like core hierarchy.

    Returns a hierarchy of ~80 concepts covering the major clinical
    branches, including the exact concepts (and path lengths) the
    paper's Table I discussion uses.
    """
    ontology = HealthOntology()
    for concept_id, name, parent_ids, synonyms in _CORE_CONCEPTS:
        ontology.add_concept(concept_id, name, parent_ids, synonyms)
    return ontology


def extend_with_random_subtrees(
    ontology: HealthOntology,
    num_concepts: int,
    branching: int = 4,
    seed: int = 13,
    attach_under: Sequence[str] | None = None,
    prefix: str = "SCT-SYN",
) -> list[str]:
    """Grow ``ontology`` with ``num_concepts`` synthetic concepts.

    Each new concept attaches under a uniformly chosen existing concept
    drawn from ``attach_under`` (default: any concept already present),
    but never more than ``branching`` synthetic children per parent, so
    the hierarchy keeps a realistic fan-out.  Returns the new concept
    ids.  The operation is deterministic for a fixed ``seed``.
    """
    if num_concepts < 0:
        raise ValueError("num_concepts must be non-negative")
    rng = random.Random(seed)
    candidates = list(attach_under) if attach_under else ontology.concept_ids()
    synthetic_children: dict[str, int] = {}
    new_ids: list[str] = []
    for index in range(num_concepts):
        concept_id = f"{prefix}-{index:05d}"
        available = [
            parent
            for parent in candidates
            if synthetic_children.get(parent, 0) < branching
        ]
        if not available:
            # Every candidate is saturated; fall back to the synthetic
            # concepts added so far (or the original candidates when none
            # exist yet) so progress is always possible.
            available = new_ids or candidates
        parent_id = rng.choice(available)
        ontology.add_concept(concept_id, f"Synthetic finding {index}", [parent_id])
        synthetic_children[parent_id] = synthetic_children.get(parent_id, 0) + 1
        candidates.append(concept_id)
        new_ids.append(concept_id)
    return new_ids


def paper_example_concepts() -> dict[str, str]:
    """Map the Table I problem names to their concept ids in the stand-in."""
    return {
        "Acute bronchitis": ACUTE_BRONCHITIS,
        "Tracheobronchitis": TRACHEOBRONCHITIS,
        "Chest pain": CHEST_PAIN,
        "Broken arm": BROKEN_ARM,
    }
