"""Concept-to-concept similarity measures on the ontology.

Section V.C.1 states the principle: "To calculate the similarity between
two health problems, we will identify the shortest path that connects
those two nodes in the tree.  Longer path means a smaller similarity."
The paper does not fix the exact transformation from path length to
similarity, so this module offers the standard family:

* :func:`path_similarity` — ``1 / (1 + path_length)``, the default used
  throughout the library (monotonically decreasing in the path length,
  equal to 1 for identical concepts);
* :func:`inverse_path_similarity` — ``1 / path_length`` with the
  convention that identical concepts score 1;
* :func:`linear_path_similarity` — ``max(0, 1 - path_length / max_len)``;
* :func:`leacock_chodorow_similarity` — ``-log(path_length+1 / 2·depth)``
  rescaled to ``[0, 1]``;
* :func:`wu_palmer_similarity` — depth-of-LCA based measure.

All functions return values in ``[0, 1]`` and are strictly decreasing in
the path length (for a fixed ontology), which is the only property the
paper's Equation 4 aggregation needs.
"""

from __future__ import annotations

import math
from typing import Callable

from .ontology import HealthOntology

#: Type of every concept-similarity function in this module.
ConceptSimilarity = Callable[[HealthOntology, str, str], float]


def path_similarity(
    ontology: HealthOntology, concept_a: str, concept_b: str
) -> float:
    """``1 / (1 + shortest_path_length)`` — the library default.

    Identical concepts score exactly 1; the paper's Table I examples give
    ``1/3`` for tracheobronchitis↔acute bronchitis (path 2) and ``1/6``
    for acute bronchitis↔chest pain (path 5), preserving the ordering the
    paper derives.
    """
    distance = ontology.shortest_path_length(concept_a, concept_b)
    return 1.0 / (1.0 + distance)


def inverse_path_similarity(
    ontology: HealthOntology, concept_a: str, concept_b: str
) -> float:
    """``1 / shortest_path_length`` with identical concepts scoring 1."""
    distance = ontology.shortest_path_length(concept_a, concept_b)
    if distance == 0:
        return 1.0
    return 1.0 / distance


def linear_path_similarity(
    ontology: HealthOntology,
    concept_a: str,
    concept_b: str,
    max_length: int | None = None,
) -> float:
    """``max(0, 1 - path_length / max_length)``.

    ``max_length`` defaults to twice the ontology depth, the longest
    possible path in a tree-shaped hierarchy.
    """
    distance = ontology.shortest_path_length(concept_a, concept_b)
    if max_length is None:
        max_length = max(2 * ontology.max_depth(), 1)
    return max(0.0, 1.0 - distance / max_length)


def leacock_chodorow_similarity(
    ontology: HealthOntology, concept_a: str, concept_b: str
) -> float:
    """Leacock–Chodorow similarity rescaled to ``[0, 1]``.

    The classical definition is ``-log((d + 1) / (2 · D))`` where ``d``
    is the shortest path length and ``D`` the maximum ontology depth.
    We divide by the maximum attainable value ``-log(1 / (2 · D))`` so
    identical concepts score 1 and the most distant concepts approach 0.
    """
    depth = max(ontology.max_depth(), 1)
    distance = ontology.shortest_path_length(concept_a, concept_b)
    raw = -math.log((distance + 1.0) / (2.0 * depth))
    maximum = -math.log(1.0 / (2.0 * depth))
    if maximum == 0.0:
        return 1.0 if distance == 0 else 0.0
    return max(0.0, raw / maximum)


def wu_palmer_similarity(
    ontology: HealthOntology, concept_a: str, concept_b: str
) -> float:
    """Wu–Palmer similarity: ``2·depth(lca) / (depth(a) + depth(b))``.

    Returns 0 when the concepts share no ancestor or when both are
    roots (depth 0), and 1 for identical concepts at non-zero depth.
    In a multi-parent hierarchy the minimum-depth convention can make a
    common ancestor "deeper" than one of the concepts themselves, which
    would push the raw ratio above 1; the result is therefore clamped to
    ``[0, 1]``.
    """
    if concept_a == concept_b:
        return 1.0
    lca = ontology.lowest_common_ancestor(concept_a, concept_b)
    if lca is None:
        return 0.0
    depth_sum = ontology.depth(concept_a) + ontology.depth(concept_b)
    if depth_sum == 0:
        return 0.0
    return min(1.0, 2.0 * ontology.depth(lca) / depth_sum)


#: Registry of the named concept-similarity functions.
CONCEPT_SIMILARITIES: dict[str, ConceptSimilarity] = {
    "path": path_similarity,
    "inverse_path": inverse_path_similarity,
    "linear_path": linear_path_similarity,
    "leacock_chodorow": leacock_chodorow_similarity,
    "wu_palmer": wu_palmer_similarity,
}


def get_concept_similarity(name: str) -> ConceptSimilarity:
    """Look up a concept-similarity function by name."""
    try:
        return CONCEPT_SIMILARITIES[name]
    except KeyError:
        raise KeyError(
            f"unknown concept similarity {name!r}; "
            f"expected one of {sorted(CONCEPT_SIMILARITIES)}"
        ) from None
