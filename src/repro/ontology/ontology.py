"""Health concept ontology (IS-A hierarchy).

The semantic similarity of Section V.C relies on the SNOMED-CT class
hierarchy: each health problem maps to a node of the hierarchy tree and
the similarity of two problems is derived from the *shortest path*
between their nodes.  SNOMED-CT itself is licensed, so the library ships
a structural stand-in (:mod:`repro.ontology.snomed`), but the graph
machinery in this module is generic: concepts with one or more parents,
BFS shortest paths, depths, lowest common ancestors and subtree queries.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Mapping

from ..exceptions import OntologyStructureError, UnknownConceptError


@dataclass
class Concept:
    """A node of the ontology.

    Parameters
    ----------
    concept_id:
        Stable identifier (SNOMED-style numeric string or synthetic id).
    name:
        Preferred term (e.g. ``"Acute bronchitis"``).
    parent_ids:
        Identifiers of the IS-A parents.  The root concept has none.
    synonyms:
        Alternative names used by :meth:`HealthOntology.find_by_name`.
    """

    concept_id: str
    name: str
    parent_ids: list[str] = field(default_factory=list)
    synonyms: list[str] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {
            "concept_id": self.concept_id,
            "name": self.name,
            "parent_ids": list(self.parent_ids),
            "synonyms": list(self.synonyms),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Concept":
        return cls(
            concept_id=payload["concept_id"],
            name=payload["name"],
            parent_ids=list(payload.get("parent_ids", [])),
            synonyms=list(payload.get("synonyms", [])),
        )


class HealthOntology:
    """An IS-A concept hierarchy with path queries.

    Concepts must be added parents-first (the root first); adding a
    concept whose parent is unknown raises
    :class:`OntologyStructureError`.  The hierarchy may be a DAG
    (multiple parents), although the synthetic SNOMED stand-in is a tree.
    """

    def __init__(self) -> None:
        self._concepts: dict[str, Concept] = {}
        self._children: dict[str, list[str]] = {}
        self._roots: list[str] = []
        self._name_index: dict[str, str] = {}
        self._depth_cache: dict[str, int] = {}

    # -- construction -----------------------------------------------------

    def add_concept(
        self,
        concept_id: str,
        name: str,
        parent_ids: Iterable[str] = (),
        synonyms: Iterable[str] = (),
    ) -> Concept:
        """Add a concept and return it.

        Raises
        ------
        OntologyStructureError
            If the id already exists or a parent id is unknown.
        """
        if concept_id in self._concepts:
            raise OntologyStructureError(f"duplicate concept id {concept_id!r}")
        parents = list(parent_ids)
        for parent_id in parents:
            if parent_id not in self._concepts:
                raise OntologyStructureError(
                    f"parent {parent_id!r} of {concept_id!r} is not in the ontology"
                )
        concept = Concept(
            concept_id=concept_id,
            name=name,
            parent_ids=parents,
            synonyms=list(synonyms),
        )
        self._concepts[concept_id] = concept
        self._children[concept_id] = []
        for parent_id in parents:
            self._children[parent_id].append(concept_id)
        if not parents:
            self._roots.append(concept_id)
        self._name_index[name.lower()] = concept_id
        for synonym in concept.synonyms:
            self._name_index.setdefault(synonym.lower(), concept_id)
        self._depth_cache.clear()
        return concept

    # -- basic access -----------------------------------------------------

    def get(self, concept_id: str) -> Concept:
        """Return the concept with ``concept_id`` or raise."""
        try:
            return self._concepts[concept_id]
        except KeyError:
            raise UnknownConceptError(concept_id) from None

    def __getitem__(self, concept_id: str) -> Concept:
        return self.get(concept_id)

    def __contains__(self, concept_id: object) -> bool:
        return concept_id in self._concepts

    def __iter__(self) -> Iterator[Concept]:
        return iter(self._concepts.values())

    def __len__(self) -> int:
        return len(self._concepts)

    def concept_ids(self) -> list[str]:
        """All concept ids in insertion order."""
        return list(self._concepts.keys())

    def roots(self) -> list[str]:
        """Ids of concepts without parents."""
        return list(self._roots)

    def children(self, concept_id: str) -> list[str]:
        """Ids of the direct children of ``concept_id``."""
        if concept_id not in self._concepts:
            raise UnknownConceptError(concept_id)
        return list(self._children[concept_id])

    def parents(self, concept_id: str) -> list[str]:
        """Ids of the direct parents of ``concept_id``."""
        return list(self.get(concept_id).parent_ids)

    def leaves(self) -> list[str]:
        """Ids of concepts without children."""
        return [cid for cid in self._concepts if not self._children[cid]]

    def find_by_name(self, name: str) -> Concept:
        """Look a concept up by preferred term or synonym (case-insensitive)."""
        concept_id = self._name_index.get(name.lower())
        if concept_id is None:
            raise UnknownConceptError(name)
        return self._concepts[concept_id]

    # -- hierarchy queries ---------------------------------------------------

    def ancestors(self, concept_id: str) -> set[str]:
        """All transitive ancestors of ``concept_id`` (excluding itself)."""
        result: set[str] = set()
        frontier = deque(self.get(concept_id).parent_ids)
        while frontier:
            current = frontier.popleft()
            if current in result:
                continue
            result.add(current)
            frontier.extend(self._concepts[current].parent_ids)
        return result

    def descendants(self, concept_id: str) -> set[str]:
        """All transitive descendants of ``concept_id`` (excluding itself)."""
        if concept_id not in self._concepts:
            raise UnknownConceptError(concept_id)
        result: set[str] = set()
        frontier = deque(self._children[concept_id])
        while frontier:
            current = frontier.popleft()
            if current in result:
                continue
            result.add(current)
            frontier.extend(self._children[current])
        return result

    def depth(self, concept_id: str) -> int:
        """Minimum number of IS-A edges from ``concept_id`` up to a root."""
        if concept_id in self._depth_cache:
            return self._depth_cache[concept_id]
        concept = self.get(concept_id)
        if not concept.parent_ids:
            depth = 0
        else:
            depth = 1 + min(self.depth(parent) for parent in concept.parent_ids)
        self._depth_cache[concept_id] = depth
        return depth

    def max_depth(self) -> int:
        """Depth of the deepest concept in the ontology (0 when empty)."""
        if not self._concepts:
            return 0
        return max(self.depth(cid) for cid in self._concepts)

    def shortest_path_length(self, source_id: str, target_id: str) -> int:
        """Number of edges on the shortest undirected IS-A path.

        This is the distance Section V.C.1 uses ("we will identify the
        shortest path that connects those two nodes in the tree").
        Raises :class:`UnknownConceptError` for unknown concepts and
        ``ValueError`` when the concepts are not connected.
        """
        path = self.shortest_path(source_id, target_id)
        return len(path) - 1

    def shortest_path(self, source_id: str, target_id: str) -> list[str]:
        """The actual shortest undirected path (list of concept ids)."""
        if source_id not in self._concepts:
            raise UnknownConceptError(source_id)
        if target_id not in self._concepts:
            raise UnknownConceptError(target_id)
        if source_id == target_id:
            return [source_id]
        previous: dict[str, str] = {}
        visited = {source_id}
        frontier = deque([source_id])
        while frontier:
            current = frontier.popleft()
            for neighbour in self._neighbours(current):
                if neighbour in visited:
                    continue
                visited.add(neighbour)
                previous[neighbour] = current
                if neighbour == target_id:
                    return self._reconstruct(previous, source_id, target_id)
                frontier.append(neighbour)
        raise ValueError(
            f"concepts {source_id!r} and {target_id!r} are not connected"
        )

    def _neighbours(self, concept_id: str) -> list[str]:
        concept = self._concepts[concept_id]
        return list(concept.parent_ids) + self._children[concept_id]

    @staticmethod
    def _reconstruct(
        previous: Mapping[str, str], source_id: str, target_id: str
    ) -> list[str]:
        path = [target_id]
        while path[-1] != source_id:
            path.append(previous[path[-1]])
        path.reverse()
        return path

    def lowest_common_ancestor(self, source_id: str, target_id: str) -> str | None:
        """Deepest concept that is an ancestor of both (or one of them).

        Returns ``None`` when the two concepts share no ancestor (e.g.
        separate roots in a forest).
        """
        ancestors_a = self.ancestors(source_id) | {source_id}
        ancestors_b = self.ancestors(target_id) | {target_id}
        common = ancestors_a & ancestors_b
        if not common:
            return None
        return max(common, key=self.depth)

    # -- serialization ----------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Serialise the ontology to plain JSON-friendly types."""
        return {"concepts": [concept.to_dict() for concept in self]}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "HealthOntology":
        """Rebuild an ontology from :meth:`to_dict` output.

        Concepts are inserted parents-first regardless of their order in
        the payload.
        """
        ontology = cls()
        pending = [Concept.from_dict(entry) for entry in payload.get("concepts", [])]
        remaining = deque(pending)
        stall_counter = 0
        while remaining:
            concept = remaining.popleft()
            if all(parent in ontology for parent in concept.parent_ids):
                ontology.add_concept(
                    concept.concept_id,
                    concept.name,
                    concept.parent_ids,
                    concept.synonyms,
                )
                stall_counter = 0
            else:
                remaining.append(concept)
                stall_counter += 1
                if stall_counter > len(remaining):
                    missing = [c.concept_id for c in remaining]
                    raise OntologyStructureError(
                        f"cannot resolve parents for concepts {missing}"
                    )
        return ontology

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HealthOntology({len(self)} concepts, depth={self.max_depth()})"
