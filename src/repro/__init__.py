"""repro — fairness-aware group recommendations in the health domain.

A from-scratch reproduction of *"Fairness in Group Recommendations in
the Health Domain"* (Stratigi, Kondylakis, Stefanidis — ICDE 2017).

The package is organised in layers:

* :mod:`repro.data` — users, personal health records, health documents,
  the sparse rating matrix, caregiver groups and synthetic dataset
  generators (generic health content and a nutrition workload);
* :mod:`repro.text` — tokenisation, TF-IDF and sparse vectors;
* :mod:`repro.ontology` — the SNOMED-like concept hierarchy and path
  based concept similarities;
* :mod:`repro.similarity` — the paper's three user similarity measures
  (ratings / profile / semantic) plus hybrids and peer selection;
* :mod:`repro.core` — the contribution: single-user CF relevance,
  group aggregation, the fairness model, Algorithm 1, the brute-force
  baseline and the end-to-end caregiver pipeline;
* :mod:`repro.mapreduce` — an in-process MapReduce engine and the
  paper's three-job implementation;
* :mod:`repro.exec` — the execution substrate (serial / thread /
  process backends with deterministic, bit-identical results) shared
  by the engine, the index builds, batch serving and the eval grids;
* :mod:`repro.eval` — metrics, timing and the experiment harness that
  regenerates the paper's Table II and the extension ablations;
* :mod:`repro.serving` — the stateful serving layer: a neighbour
  index, LRU score caches and a :class:`RecommendationService` that
  answers repeated single-user, group and batch requests fast, with
  targeted cache invalidation on rating/profile updates.

Quickstart::

    from repro import CaregiverPipeline, RecommenderConfig, generate_dataset

    dataset = generate_dataset(num_users=100, num_items=200)
    pipeline = CaregiverPipeline(dataset, RecommenderConfig(top_z=10))
    group = dataset.random_group(size=5)
    recommendation = pipeline.recommend(group)
    print(recommendation.items, recommendation.report.fairness)
"""

from .config import DEFAULT_CONFIG, RecommenderConfig
from .core import (
    BruteForceSelector,
    CaregiverPipeline,
    CaregiverRecommendation,
    FairnessAwareGreedy,
    FairnessReport,
    GroupCandidates,
    GroupRecommendation,
    GroupRecommender,
    ScoredItem,
    SingleUserRecommender,
    SwapRefinementSelector,
    fairness,
    value,
)
from .data import (
    Group,
    HealthDataset,
    HealthDocument,
    ItemCatalog,
    PersonalHealthRecord,
    RatingMatrix,
    User,
    UserRegistry,
    generate_dataset,
    generate_nutrition_dataset,
)
from .exceptions import ReproError, ValidationError
from .kernels import PackedRatings, get_packed
from .exec import (
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    get_backend,
)
from .mapreduce import MapReduceEngine, MapReduceGroupRecommender
from .ontology import HealthOntology, build_snomed_like_ontology
from .serving import RecommendationService
from .similarity import (
    HybridSimilarity,
    PearsonRatingSimilarity,
    ProfileSimilarity,
    SemanticSimilarity,
)
from .validation import Violation, validate_dataset, validate_groups

__version__ = "1.1.0"

__all__ = [
    "BruteForceSelector",
    "CaregiverPipeline",
    "CaregiverRecommendation",
    "DEFAULT_CONFIG",
    "ExecutionBackend",
    "FairnessAwareGreedy",
    "FairnessReport",
    "Group",
    "GroupCandidates",
    "GroupRecommendation",
    "GroupRecommender",
    "HealthDataset",
    "HealthDocument",
    "HealthOntology",
    "HybridSimilarity",
    "ItemCatalog",
    "MapReduceEngine",
    "MapReduceGroupRecommender",
    "PackedRatings",
    "PearsonRatingSimilarity",
    "PersonalHealthRecord",
    "ProcessBackend",
    "ProfileSimilarity",
    "RatingMatrix",
    "RecommendationService",
    "RecommenderConfig",
    "ReproError",
    "ScoredItem",
    "SemanticSimilarity",
    "SerialBackend",
    "SingleUserRecommender",
    "SwapRefinementSelector",
    "ThreadBackend",
    "User",
    "UserRegistry",
    "ValidationError",
    "Violation",
    "__version__",
    "build_snomed_like_ontology",
    "fairness",
    "generate_dataset",
    "generate_nutrition_dataset",
    "get_backend",
    "get_packed",
    "validate_dataset",
    "validate_groups",
    "value",
]
