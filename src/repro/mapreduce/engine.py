"""In-process MapReduce engine.

Section IV implements the recommender as three MapReduce jobs.  The
original system ran on Hadoop; the contribution, however, is the job
decomposition, not the cluster.  This module provides a faithful
in-process engine that enforces MapReduce semantics so the jobs in
:mod:`repro.mapreduce.jobs` can be written exactly as the paper's
pseudo-code describes:

* the **map** phase transforms each input ``(key, value)`` pair into
  zero or more intermediate pairs;
* the **shuffle** phase partitions intermediate pairs by key (hash
  partitioner by default) and groups the values of each key, sorting
  keys and values for determinism ("pairs that share the same key and
  are sorted according to their value");
* an optional **combine** phase pre-aggregates values per key inside
  each partition, like a Hadoop combiner;
* the **reduce** phase turns each ``(key, [values])`` group into zero or
  more output pairs.

Jobs can be chained (the output pair list of one job is the input of the
next) and the engine records counters comparable to Hadoop's job
counters, which the tests use to assert the data flow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from ..exceptions import MapReduceError

#: A key/value record flowing through the engine.
Pair = tuple[Any, Any]

#: ``mapper(key, value) -> iterable of (key, value)``.
Mapper = Callable[[Any, Any], Iterable[Pair]]

#: ``reducer(key, values) -> iterable of (key, value)``.
Reducer = Callable[[Any, Sequence[Any]], Iterable[Pair]]

#: ``combiner(key, values) -> iterable of values`` (same key retained).
Combiner = Callable[[Any, Sequence[Any]], Iterable[Any]]


def _sort_key(value: Any) -> str:
    """Deterministic ordering for heterogeneous keys/values."""
    return repr(value)


@dataclass
class JobCounters:
    """Record counts of one job execution (Hadoop-style counters)."""

    map_input_records: int = 0
    map_output_records: int = 0
    combine_input_records: int = 0
    combine_output_records: int = 0
    reduce_input_groups: int = 0
    reduce_input_records: int = 0
    reduce_output_records: int = 0

    def as_dict(self) -> dict[str, int]:
        """Counters as a plain dictionary (for reports)."""
        return {
            "map_input_records": self.map_input_records,
            "map_output_records": self.map_output_records,
            "combine_input_records": self.combine_input_records,
            "combine_output_records": self.combine_output_records,
            "reduce_input_groups": self.reduce_input_groups,
            "reduce_input_records": self.reduce_input_records,
            "reduce_output_records": self.reduce_output_records,
        }


@dataclass
class MapReduceJob:
    """Declarative description of a single MapReduce job.

    Parameters
    ----------
    name:
        Job name used in error messages and run reports.
    mapper:
        The map function.
    reducer:
        The reduce function.
    combiner:
        Optional per-partition pre-aggregation of mapped values.
    num_partitions:
        Number of simulated reduce partitions (>= 1).  Partitioning does
        not change the result — it exists so tests can verify that the
        jobs behave identically under any partitioning, as they must on
        a real cluster.
    partitioner:
        Maps ``(key, num_partitions)`` to a partition index; defaults to
        a stable hash of ``repr(key)``.
    """

    name: str
    mapper: Mapper
    reducer: Reducer
    combiner: Combiner | None = None
    num_partitions: int = 1
    partitioner: Callable[[Any, int], int] | None = None

    def __post_init__(self) -> None:
        if self.num_partitions < 1:
            raise MapReduceError(
                f"job {self.name!r}: num_partitions must be >= 1"
            )

    def partition_for(self, key: Any) -> int:
        """Partition index of ``key``."""
        if self.partitioner is not None:
            index = self.partitioner(key, self.num_partitions)
            if not 0 <= index < self.num_partitions:
                raise MapReduceError(
                    f"job {self.name!r}: partitioner returned {index} "
                    f"for {self.num_partitions} partitions"
                )
            return index
        # ``hash`` of strings is randomised per interpreter run; use a
        # deterministic textual hash instead so repeated runs shuffle
        # identically.
        text = _sort_key(key)
        return sum(ord(ch) for ch in text) % self.num_partitions


@dataclass
class JobResult:
    """Output pairs and counters of one executed job."""

    job_name: str
    output: list[Pair]
    counters: JobCounters = field(default_factory=JobCounters)


class MapReduceEngine:
    """Executes :class:`MapReduceJob` definitions over in-memory pairs."""

    def __init__(self) -> None:
        self.history: list[JobResult] = []

    # -- single job ------------------------------------------------------------

    def run(self, job: MapReduceJob, input_pairs: Iterable[Pair]) -> JobResult:
        """Run one job over ``input_pairs`` and return its result."""
        counters = JobCounters()
        intermediate: list[Pair] = []
        for key, value in input_pairs:
            counters.map_input_records += 1
            try:
                mapped = list(job.mapper(key, value))
            except Exception as exc:  # surface the failing record
                raise MapReduceError(
                    f"job {job.name!r}: mapper failed on key {key!r}: {exc}"
                ) from exc
            counters.map_output_records += len(mapped)
            intermediate.extend(mapped)

        partitions = self._shuffle(job, intermediate)

        if job.combiner is not None:
            partitions = self._combine(job, partitions, counters)

        output: list[Pair] = []
        for partition in partitions:
            for key, values in partition:
                counters.reduce_input_groups += 1
                counters.reduce_input_records += len(values)
                try:
                    reduced = list(job.reducer(key, values))
                except Exception as exc:
                    raise MapReduceError(
                        f"job {job.name!r}: reducer failed on key {key!r}: {exc}"
                    ) from exc
                counters.reduce_output_records += len(reduced)
                output.extend(reduced)

        result = JobResult(job_name=job.name, output=output, counters=counters)
        self.history.append(result)
        return result

    def run_chain(
        self, jobs: Sequence[MapReduceJob], input_pairs: Iterable[Pair]
    ) -> list[JobResult]:
        """Run ``jobs`` sequentially, feeding each job the previous output."""
        results: list[JobResult] = []
        current: Iterable[Pair] = input_pairs
        for job in jobs:
            result = self.run(job, current)
            results.append(result)
            current = result.output
        return results

    # -- internals ---------------------------------------------------------------

    def _shuffle(
        self, job: MapReduceJob, intermediate: Sequence[Pair]
    ) -> list[list[tuple[Any, list[Any]]]]:
        """Partition and group the intermediate pairs by key."""
        buckets: list[dict[Any, list[Any]]] = [
            {} for _ in range(job.num_partitions)
        ]
        for key, value in intermediate:
            partition = job.partition_for(key)
            buckets[partition].setdefault(key, []).append(value)
        partitions: list[list[tuple[Any, list[Any]]]] = []
        for bucket in buckets:
            groups = [
                (key, sorted(values, key=_sort_key))
                for key, values in bucket.items()
            ]
            groups.sort(key=lambda pair: _sort_key(pair[0]))
            partitions.append(groups)
        return partitions

    def _combine(
        self,
        job: MapReduceJob,
        partitions: list[list[tuple[Any, list[Any]]]],
        counters: JobCounters,
    ) -> list[list[tuple[Any, list[Any]]]]:
        """Apply the combiner to every key group of every partition."""
        assert job.combiner is not None
        combined_partitions: list[list[tuple[Any, list[Any]]]] = []
        for partition in partitions:
            combined_groups: list[tuple[Any, list[Any]]] = []
            for key, values in partition:
                counters.combine_input_records += len(values)
                try:
                    combined_values = sorted(
                        job.combiner(key, values), key=_sort_key
                    )
                except Exception as exc:
                    raise MapReduceError(
                        f"job {job.name!r}: combiner failed on key {key!r}: {exc}"
                    ) from exc
                counters.combine_output_records += len(combined_values)
                combined_groups.append((key, list(combined_values)))
            combined_partitions.append(combined_groups)
        return combined_partitions
