"""In-process MapReduce engine.

Section IV implements the recommender as three MapReduce jobs.  The
original system ran on Hadoop; the contribution, however, is the job
decomposition, not the cluster.  This module provides a faithful
in-process engine that enforces MapReduce semantics so the jobs in
:mod:`repro.mapreduce.jobs` can be written exactly as the paper's
pseudo-code describes:

* the **map** phase transforms each input ``(key, value)`` pair into
  zero or more intermediate pairs;
* the **shuffle** phase partitions intermediate pairs by key (hash
  partitioner by default) and groups the values of each key, sorting
  keys and values for determinism ("pairs that share the same key and
  are sorted according to their value");
* an optional **combine** phase pre-aggregates values per key inside
  each partition, like a Hadoop combiner;
* the **reduce** phase turns each ``(key, [values])`` group into zero or
  more output pairs.

Jobs can be chained (the output pair list of one job is the input of the
next) and the engine records counters comparable to Hadoop's job
counters, which the tests use to assert the data flow.

Every phase executes through an :class:`~repro.exec.ExecutionBackend`:
the map phase over contiguous input chunks, the combine and reduce
phases over whole partitions.  Partitions therefore buy real
parallelism under the thread/process backends instead of merely
simulating a cluster — and because chunks and partitions are processed
in a fixed order, the output (pairs *and* counters) is bit-identical
across backends.  The process and pool backends additionally require
the job's mapper/combiner/reducer to be picklable (module-level
functions, not closures).
"""

from __future__ import annotations

import functools
import zlib
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from ..exec import ExecutionBackend, chunk_evenly, resolve_backend
from ..exceptions import MapReduceError

#: A key/value record flowing through the engine.
Pair = tuple[Any, Any]

#: ``mapper(key, value) -> iterable of (key, value)``.
Mapper = Callable[[Any, Any], Iterable[Pair]]

#: ``reducer(key, values) -> iterable of (key, value)``.
Reducer = Callable[[Any, Sequence[Any]], Iterable[Pair]]

#: ``combiner(key, values) -> iterable of values`` (same key retained).
Combiner = Callable[[Any, Sequence[Any]], Iterable[Any]]


def _sort_key(value: Any) -> str:
    """Deterministic ordering for heterogeneous keys/values."""
    return repr(value)


@dataclass
class JobCounters:
    """Record counts of one job execution (Hadoop-style counters)."""

    map_input_records: int = 0
    map_output_records: int = 0
    combine_input_records: int = 0
    combine_output_records: int = 0
    reduce_input_groups: int = 0
    reduce_input_records: int = 0
    reduce_output_records: int = 0

    def as_dict(self) -> dict[str, int]:
        """Counters as a plain dictionary (for reports)."""
        return {
            "map_input_records": self.map_input_records,
            "map_output_records": self.map_output_records,
            "combine_input_records": self.combine_input_records,
            "combine_output_records": self.combine_output_records,
            "reduce_input_groups": self.reduce_input_groups,
            "reduce_input_records": self.reduce_input_records,
            "reduce_output_records": self.reduce_output_records,
        }


@dataclass
class MapReduceJob:
    """Declarative description of a single MapReduce job.

    Parameters
    ----------
    name:
        Job name used in error messages and run reports.
    mapper:
        The map function.
    reducer:
        The reduce function.
    combiner:
        Optional per-partition pre-aggregation of mapped values.
    num_partitions:
        Number of simulated reduce partitions (>= 1).  Partitioning does
        not change the result — it exists so tests can verify that the
        jobs behave identically under any partitioning, as they must on
        a real cluster.
    partitioner:
        Maps ``(key, num_partitions)`` to a partition index; defaults to
        a stable hash of ``repr(key)``.
    """

    name: str
    mapper: Mapper
    reducer: Reducer
    combiner: Combiner | None = None
    num_partitions: int = 1
    partitioner: Callable[[Any, int], int] | None = None

    def __post_init__(self) -> None:
        if self.num_partitions < 1:
            raise MapReduceError(
                f"job {self.name!r}: num_partitions must be >= 1"
            )

    def partition_for(self, key: Any) -> int:
        """Partition index of ``key``."""
        if self.partitioner is not None:
            index = self.partitioner(key, self.num_partitions)
            if not 0 <= index < self.num_partitions:
                raise MapReduceError(
                    f"job {self.name!r}: partitioner returned {index} "
                    f"for {self.num_partitions} partitions"
                )
            return index
        # ``hash`` of strings is randomised per interpreter run; use a
        # deterministic textual hash instead so repeated runs shuffle
        # identically.  CRC32 (not a character sum, which collides on
        # every anagram and skews small partition counts) spreads keys
        # evenly.
        text = _sort_key(key)
        return zlib.crc32(text.encode("utf-8")) % self.num_partitions


@dataclass
class JobResult:
    """Output pairs and counters of one executed job."""

    job_name: str
    output: list[Pair]
    counters: JobCounters = field(default_factory=JobCounters)


# -- phase tasks ---------------------------------------------------------------
#
# Module-level so the process backend can pickle them; each takes only
# plain data plus the job's user functions (which must themselves be
# picklable for the process backend).


def _map_chunk(
    mapper: Mapper, job_name: str, chunk: Sequence[Pair]
) -> list[Pair]:
    """Run the map function over one contiguous chunk of input pairs."""
    mapped: list[Pair] = []
    for key, value in chunk:
        try:
            mapped.extend(mapper(key, value))
        except Exception as exc:  # surface the failing record
            raise MapReduceError(
                f"job {job_name!r}: mapper failed on key {key!r}: {exc}"
            ) from exc
    return mapped


def _combine_partition(
    combiner: Combiner,
    job_name: str,
    partition: Sequence[tuple[Any, list[Any]]],
) -> tuple[list[tuple[Any, list[Any]]], int, int]:
    """Combine every key group of one partition.

    Returns ``(combined groups, input records, output records)``.
    """
    combined_groups: list[tuple[Any, list[Any]]] = []
    in_records = 0
    out_records = 0
    for key, values in partition:
        in_records += len(values)
        try:
            combined_values = sorted(combiner(key, values), key=_sort_key)
        except Exception as exc:
            raise MapReduceError(
                f"job {job_name!r}: combiner failed on key {key!r}: {exc}"
            ) from exc
        out_records += len(combined_values)
        combined_groups.append((key, list(combined_values)))
    return combined_groups, in_records, out_records


def _reduce_partition(
    reducer: Reducer,
    job_name: str,
    partition: Sequence[tuple[Any, list[Any]]],
) -> tuple[list[Pair], int, int, int]:
    """Reduce every key group of one partition.

    Returns ``(output pairs, input groups, input records, output records)``.
    """
    output: list[Pair] = []
    groups = 0
    in_records = 0
    out_records = 0
    for key, values in partition:
        groups += 1
        in_records += len(values)
        try:
            reduced = list(reducer(key, values))
        except Exception as exc:
            raise MapReduceError(
                f"job {job_name!r}: reducer failed on key {key!r}: {exc}"
            ) from exc
        out_records += len(reduced)
        output.extend(reduced)
    return output, groups, in_records, out_records


class MapReduceEngine:
    """Executes :class:`MapReduceJob` definitions over in-memory pairs.

    Parameters
    ----------
    backend:
        Execution backend (instance, name or ``None`` for serial) the
        map/combine/reduce phases run on.  The result is bit-identical
        for every backend; the process backend requires picklable job
        functions.
    """

    def __init__(self, backend: ExecutionBackend | str | None = None) -> None:
        # A backend named by string is instantiated (and therefore
        # owned) here; close() releases its pooled workers.  A caller-
        # provided instance stays the caller's to close.
        self._owns_backend = not isinstance(backend, ExecutionBackend)
        self.backend = resolve_backend(backend)
        self.history: list[JobResult] = []

    def close(self) -> None:
        """Release the engine's backend workers (if the engine owns them)."""
        if self._owns_backend:
            self.backend.close()

    def __enter__(self) -> "MapReduceEngine":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- single job ------------------------------------------------------------

    def run(self, job: MapReduceJob, input_pairs: Iterable[Pair]) -> JobResult:
        """Run one job over ``input_pairs`` and return its result."""
        counters = JobCounters()
        pairs = list(input_pairs)
        counters.map_input_records = len(pairs)
        # One task per worker-sized chunk; concatenating chunk outputs
        # in order reproduces the record-by-record serial ordering.
        chunks = chunk_evenly(pairs, max(1, self.backend.workers * 4))
        mapped_chunks = self.backend.map_items(
            functools.partial(_map_chunk, job.mapper, job.name), chunks
        )
        intermediate: list[Pair] = []
        for mapped in mapped_chunks:
            counters.map_output_records += len(mapped)
            intermediate.extend(mapped)

        partitions = self._shuffle(job, intermediate)

        if job.combiner is not None:
            combined = self.backend.map_partitions(
                functools.partial(_combine_partition, job.combiner, job.name),
                partitions,
            )
            partitions = []
            for groups, in_records, out_records in combined:
                counters.combine_input_records += in_records
                counters.combine_output_records += out_records
                partitions.append(groups)

        reduced_partitions = self.backend.map_partitions(
            functools.partial(_reduce_partition, job.reducer, job.name),
            partitions,
        )
        output: list[Pair] = []
        for pairs_out, groups, in_records, out_records in reduced_partitions:
            counters.reduce_input_groups += groups
            counters.reduce_input_records += in_records
            counters.reduce_output_records += out_records
            output.extend(pairs_out)

        result = JobResult(job_name=job.name, output=output, counters=counters)
        self.history.append(result)
        return result

    def run_chain(
        self, jobs: Sequence[MapReduceJob], input_pairs: Iterable[Pair]
    ) -> list[JobResult]:
        """Run ``jobs`` sequentially, feeding each job the previous output."""
        results: list[JobResult] = []
        current: Iterable[Pair] = input_pairs
        for job in jobs:
            result = self.run(job, current)
            results.append(result)
            current = result.output
        return results

    # -- internals ---------------------------------------------------------------

    def _shuffle(
        self, job: MapReduceJob, intermediate: Sequence[Pair]
    ) -> list[list[tuple[Any, list[Any]]]]:
        """Partition and group the intermediate pairs by key."""
        buckets: list[dict[Any, list[Any]]] = [
            {} for _ in range(job.num_partitions)
        ]
        for key, value in intermediate:
            partition = job.partition_for(key)
            buckets[partition].setdefault(key, []).append(value)
        partitions: list[list[tuple[Any, list[Any]]]] = []
        for bucket in buckets:
            groups = [
                (key, sorted(values, key=_sort_key))
                for key, values in bucket.items()
            ]
            groups.sort(key=lambda pair: _sort_key(pair[0]))
            partitions.append(groups)
        return partitions
