"""MapReduce substrate and the paper's three-job pipeline (Section IV)."""

from .engine import (
    JobCounters,
    JobResult,
    MapReduceEngine,
    MapReduceJob,
)
from .jobs import (
    CANDIDATE_TAG,
    PARTIAL_TAG,
    PartialSimilarity,
    make_job1,
    make_job2,
    make_job3,
    make_packed_similarity_job,
    packed_similarity_input,
    ratings_to_item_pairs,
    similarity_table,
    split_job1_output,
)
from .runner import MapReduceGroupRecommender, MapReduceRunResult
from .topk import make_global_topk_job, make_local_topk_job, mapreduce_topk

__all__ = [
    "CANDIDATE_TAG",
    "JobCounters",
    "JobResult",
    "MapReduceEngine",
    "MapReduceGroupRecommender",
    "MapReduceJob",
    "MapReduceRunResult",
    "PARTIAL_TAG",
    "PartialSimilarity",
    "make_global_topk_job",
    "make_job1",
    "make_job2",
    "make_job3",
    "make_local_topk_job",
    "make_packed_similarity_job",
    "mapreduce_topk",
    "packed_similarity_input",
    "ratings_to_item_pairs",
    "similarity_table",
    "split_job1_output",
]
