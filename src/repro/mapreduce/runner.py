"""MapReduce group recommendation runner.

Glues the three jobs of :mod:`repro.mapreduce.jobs` into the full
pipeline of Section IV:

1. rating triples → Job 1 → candidate items + partial similarity scores;
2. partial scores → Job 2 → the ``simU`` table (threshold ``δ`` applied) —
   or, on the default ``"packed"`` kernel, one packed one-vs-many sweep
   per member replaces the partial-component shuffle outright;
3. candidate items + similarity table → Job 3 → per-member and group
   relevance for every candidate;
4. (optional) the distributed top-k job of [5] ranks the group scores;
5. the fairness-aware selection (Algorithm 1) runs centralised on the
   resulting :class:`~repro.core.candidates.GroupCandidates`, exactly as
   the paper does ("we perform Algorithm 1 in a centralized manner").

The runner produces the same :class:`GroupCandidates` bundle as the
in-memory :class:`~repro.core.group.GroupRecommender`, which is what the
equivalence tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.aggregation import AggregationStrategy, get_aggregation
from ..core.candidates import GroupCandidates
from ..core.greedy import FairnessAwareGreedy, GroupRecommendation
from ..core.relevance import ScoredItem
from ..data.groups import Group
from ..data.ratings import RatingMatrix
from ..exec import ExecutionBackend
from ..kernels import DEFAULT_KERNEL, KERNEL_NAMES
from .engine import JobCounters, MapReduceEngine
from .jobs import (
    make_job1,
    make_job2,
    make_job3,
    make_packed_similarity_job,
    packed_similarity_input,
    ratings_to_item_pairs,
    similarity_table,
    split_job1_output,
)
from .topk import mapreduce_topk


@dataclass
class MapReduceRunResult:
    """Everything produced by one MapReduce pipeline run."""

    candidates: GroupCandidates
    similarity: dict[str, dict[str, float]]
    top_items: list[ScoredItem]
    counters: dict[str, JobCounters] = field(default_factory=dict)


class MapReduceGroupRecommender:
    """The paper's MapReduce implementation of the group recommender.

    Parameters
    ----------
    matrix:
        The rating matrix providing the input triples.
    peer_threshold:
        The ``δ`` threshold applied by Job 2.
    aggregation:
        Aggregation strategy (instance or name) used by Job 3.
    top_k:
        The per-user ``k`` of the fairness sets (and of the optional
        distributed top-k job).
    min_common_items:
        Minimum number of co-rated items for a valid Pearson similarity,
        matching :class:`~repro.similarity.ratings_sim.PearsonRatingSimilarity`.
    num_partitions:
        Number of partitions for every job; under a non-serial backend
        each partition's combine/reduce work runs in parallel.
    backend:
        Execution backend (instance, name or ``None`` for serial) the
        engine phases run on.  Note the jobs' mapper/reducer closures
        capture group state, so the process backend cannot pickle them —
        use serial or thread here.
    kernel:
        ``"packed"`` (default) replaces the pair-partial similarity
        route with :func:`~repro.mapreduce.jobs.make_packed_similarity_job`:
        Job 1 emits candidates only and Job 2 computes each member's
        row in one packed kernel sweep.  ``"dict"`` keeps the
        paper-literal partial-component shuffle.  Scores agree to
        float-summation order (last ulp); candidates and counters keys
        are identical.
    """

    def __init__(
        self,
        matrix: RatingMatrix,
        peer_threshold: float = 0.0,
        aggregation: AggregationStrategy | str = "average",
        top_k: int = 10,
        min_common_items: int = 2,
        num_partitions: int = 4,
        backend: "ExecutionBackend | str | None" = None,
        kernel: str = DEFAULT_KERNEL,
    ) -> None:
        if isinstance(aggregation, str):
            aggregation = get_aggregation(aggregation)
        if kernel not in KERNEL_NAMES:
            raise ValueError(
                f"unknown kernel {kernel!r}; expected one of {KERNEL_NAMES}"
            )
        self.matrix = matrix
        self.peer_threshold = peer_threshold
        self.aggregation = aggregation
        self.top_k = top_k
        self.min_common_items = min_common_items
        self.num_partitions = num_partitions
        self.kernel = kernel
        self.engine = MapReduceEngine(backend=backend)

    def close(self) -> None:
        """Release the engine's backend workers (if the engine owns them)."""
        self.engine.close()

    def __enter__(self) -> "MapReduceGroupRecommender":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- pipeline ---------------------------------------------------------------

    def run(self, group: Group, use_mapreduce_topk: bool = False) -> MapReduceRunResult:
        """Run Jobs 1–3 (and optionally the top-k job) for ``group``."""
        counters: dict[str, JobCounters] = {}
        packed_route = self.kernel == "packed"
        # The packed route never reads per-user means (the kernel
        # precomputes them inside the CSR view); skip the O(ratings)
        # side-input pass entirely.
        user_means = (
            {}
            if packed_route
            else {
                user_id: self.matrix.mean_rating(user_id)
                for user_id in self.matrix.user_ids()
            }
        )
        input_pairs = ratings_to_item_pairs(self.matrix.triples())

        job1 = make_job1(
            group.member_ids,
            user_means,
            num_partitions=self.num_partitions,
            emit_partials=not packed_route,
        )
        job1_result = self.engine.run(job1, input_pairs)
        counters["job1"] = job1_result.counters
        candidate_pairs, partial_pairs = split_job1_output(job1_result.output)

        if packed_route:
            job2 = make_packed_similarity_job(
                self.matrix,
                group.member_ids,
                self.peer_threshold,
                min_common_items=self.min_common_items,
                num_partitions=self.num_partitions,
            )
            job2_result = self.engine.run(
                job2, packed_similarity_input(group.member_ids)
            )
        else:
            job2 = make_job2(
                self.peer_threshold,
                min_common_items=self.min_common_items,
                num_partitions=self.num_partitions,
            )
            job2_result = self.engine.run(job2, partial_pairs)
        counters["job2"] = job2_result.counters
        similarities = similarity_table(job2_result.output)

        job3 = make_job3(
            group.member_ids,
            similarities,
            self.aggregation,
            num_partitions=self.num_partitions,
        )
        job3_result = self.engine.run(job3, candidate_pairs)
        counters["job3"] = job3_result.counters

        relevance: dict[str, dict[str, float]] = {
            member_id: {} for member_id in group
        }
        group_relevance: dict[str, float] = {}
        for item_id, payload in job3_result.output:
            group_relevance[item_id] = payload["group"]
            for member_id, score in payload["members"].items():
                relevance[member_id][item_id] = score

        candidates = GroupCandidates(
            group=group,
            relevance=relevance,
            group_relevance=group_relevance,
            top_k=self.top_k,
        )

        if use_mapreduce_topk:
            ranked = mapreduce_topk(
                list(group_relevance.items()),
                k=self.top_k,
                num_partitions=self.num_partitions,
                engine=self.engine,
            )
            top_items = [ScoredItem(item_id=i, score=s) for i, s in ranked]
        else:
            top_items = candidates.top_group_items(self.top_k)

        return MapReduceRunResult(
            candidates=candidates,
            similarity=similarities,
            top_items=top_items,
            counters=counters,
        )

    def recommend(
        self, group: Group, z: int, use_mapreduce_topk: bool = False
    ) -> GroupRecommendation:
        """Full pipeline plus the centralised Algorithm 1 selection."""
        result = self.run(group, use_mapreduce_topk=use_mapreduce_topk)
        return FairnessAwareGreedy().select(result.candidates, z)
