"""Distributed top-k selection in MapReduce.

Section IV notes that "the final sorting and top-k selection of those
relevance values is trivial when k elements are small enough to fit in
memory.  When this is not the case, we can use the top-k MapReduce
algorithm suggested in [5]".  This module provides that algorithm in the
form used by reference [5] (Efthymiou, Stefanidis, Ntoutsi — top-k
computations in MapReduce): every mapper keeps a bounded local top-k
buffer of the records it sees and emits only that buffer, and a single
reducer merges the per-mapper buffers into the global top-k.

In the in-process engine "one mapper" corresponds to one input
partition, so the job models the communication saving of the original:
at most ``k · num_partitions`` records cross the shuffle instead of the
whole dataset.
"""

from __future__ import annotations

import heapq
from typing import Any, Iterable, Sequence

from .engine import MapReduceEngine, MapReduceJob, Pair

#: Single key under which the global merge happens.
_GLOBAL_KEY = "__topk__"


def _bounded_topk(scored: Sequence[Any], k: int) -> list[Any]:
    """The k best ``(score, item_id)`` records, best first.

    Bounded-heap selection under the pinned (score desc, item asc)
    order; ``heapq.nsmallest`` is stable under its key, so the result
    equals ``sorted(scored, key=...)[:k]`` exactly, ties included.
    """
    return heapq.nsmallest(k, scored, key=lambda pair: (-pair[0], pair[1]))


def make_local_topk_job(
    k: int,
    num_partitions: int = 4,
) -> MapReduceJob:
    """Job A: compute the local top-k of each partition.

    The input pairs are ``(item_id, score)``.  The mapper routes each
    record to a partition-local key, and the reducer of each local key
    emits only its k best records.
    """
    if k <= 0:
        raise ValueError("k must be positive")

    def mapper(item_id: Any, score: Any) -> Iterable[Pair]:
        # Spread records over pseudo-mappers deterministically by item id.
        bucket = sum(ord(ch) for ch in str(item_id)) % num_partitions
        yield ((f"local-{bucket}"), (float(score), str(item_id)))

    def reducer(bucket_key: Any, scored: Sequence[Any]) -> Iterable[Pair]:
        for score, item_id in _bounded_topk(scored, k):
            yield (_GLOBAL_KEY, (score, item_id))

    return MapReduceJob(
        name=f"topk-local-{k}",
        mapper=mapper,
        reducer=reducer,
        num_partitions=num_partitions,
    )


def make_global_topk_job(k: int) -> MapReduceJob:
    """Job B: merge the local top-k buffers into the global top-k."""
    if k <= 0:
        raise ValueError("k must be positive")

    def mapper(key: Any, scored: Any) -> Iterable[Pair]:
        yield (_GLOBAL_KEY, scored)

    def reducer(key: Any, scored: Sequence[Any]) -> Iterable[Pair]:
        # Emit in rank order: best first; ties broken by item id ascending.
        for rank, (score, item_id) in enumerate(_bounded_topk(scored, k)):
            yield (rank, (item_id, score))

    return MapReduceJob(
        name=f"topk-global-{k}",
        mapper=mapper,
        reducer=reducer,
        num_partitions=1,
    )


def mapreduce_topk(
    scores: Iterable[tuple[str, float]],
    k: int,
    num_partitions: int = 4,
    engine: MapReduceEngine | None = None,
) -> list[tuple[str, float]]:
    """Full two-job top-k over ``(item_id, score)`` pairs.

    Returns the k items with the highest score, best first (ties broken
    by item id).
    """
    engine = engine or MapReduceEngine()
    local = engine.run(make_local_topk_job(k, num_partitions), list(scores))
    merged = engine.run(make_global_topk_job(k), local.output)
    ranked = sorted(merged.output, key=lambda pair: pair[0])
    return [(item_id, score) for _, (item_id, score) in ranked]
