"""The paper's three MapReduce jobs (Section IV, Figure 2).

The input is the set of rating triples ``(u, i, rating(u, i))`` plus the
group ``G`` of the caregiver.  The jobs are:

* **Job 1 — partial similarity scores and unrated items.**  Keyed by
  item, the reducer checks whether any group member rated the item.  If
  not, the item is a *candidate recommendation* and its ratings are
  re-emitted unchanged.  If yes, for every (member, non-member) pair
  that co-rated the item it emits the *partial components* of the
  Pearson similarity (the products and squared deviations of the
  mean-centred ratings) keyed by the pair.
* **Job 2 — simU.**  Sums the partial components per (member, peer)
  pair, assembles the Pearson correlation and keeps the pairs whose
  similarity reaches the threshold ``δ`` (and a minimum number of
  co-rated items, matching the in-memory implementation).
* **Job 3 — user and group relevance.**  Keyed by candidate item, the
  reducer evaluates Equation 1 for every group member using the
  similarity table of Job 2 (shipped to the job like a Hadoop
  distributed-cache side input) and aggregates the member scores into
  the group relevance with the configured strategy.

User mean ratings are precomputed and distributed to Job 1 the same way
(side input): Equation 2 centres each user's ratings on the mean over
*all* their ratings, which a per-item reducer cannot compute locally.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Sequence

from ..core.aggregation import AggregationStrategy
from ..data.ratings import RatingMatrix
from ..kernels import get_packed, pearson_one_vs_many
from .engine import MapReduceJob, Pair

#: Tag prefixes used to separate the two logical outputs of Job 1.
CANDIDATE_TAG = "candidate"
PARTIAL_TAG = "partial"


@dataclass(frozen=True)
class PartialSimilarity:
    """Partial Pearson components for one co-rated item of a user pair."""

    product: float
    member_sq: float
    peer_sq: float
    count: int = 1


def ratings_to_item_pairs(
    triples: Iterable[tuple[str, str, float]]
) -> list[Pair]:
    """Convert rating triples into the ``(item, (user, rating))`` input pairs."""
    return [(item_id, (user_id, value)) for user_id, item_id, value in triples]


# ---------------------------------------------------------------------------
# Job 1 — partial user similarity scores and the unrated (candidate) items.
# ---------------------------------------------------------------------------


def make_job1(
    group_members: Sequence[str],
    user_means: Mapping[str, float],
    num_partitions: int = 1,
    emit_partials: bool = True,
) -> MapReduceJob:
    """Build Job 1 for ``group_members`` with precomputed user means.

    ``emit_partials=False`` keeps only the candidate-item output: the
    runner sets it when Job 2 runs on the packed similarity kernel
    (:func:`make_packed_similarity_job`), which recomputes the pair
    scores from the CSR arrays and has no use for per-item partial
    components.  The map phase is unchanged either way, so the job's
    ``map_input_records`` counter still equals the number of ratings.
    """
    members = set(group_members)

    def mapper(item_id: Any, user_rating: Any) -> Iterable[Pair]:
        # Identity map keyed by item, exactly as described in the paper.
        yield (item_id, user_rating)

    def reducer(item_id: Any, user_ratings: Sequence[Any]) -> Iterable[Pair]:
        ratings = {user_id: float(value) for user_id, value in user_ratings}
        raters_in_group = [user_id for user_id in ratings if user_id in members]
        if not raters_in_group:
            # Output 1: no member rated the item — it is a candidate
            # recommendation; re-emit the ratings unchanged.
            for user_id, value in sorted(ratings.items()):
                yield ((CANDIDATE_TAG, item_id), (user_id, value))
            return
        if not emit_partials:
            return
        # Output 2: partial similarity components for every
        # (member, non-member) pair that co-rated this item.
        for member_id in sorted(raters_in_group):
            member_mean = user_means.get(member_id, 0.0)
            member_deviation = ratings[member_id] - member_mean
            for peer_id, peer_rating in sorted(ratings.items()):
                if peer_id in members:
                    continue
                peer_mean = user_means.get(peer_id, 0.0)
                peer_deviation = peer_rating - peer_mean
                partial = PartialSimilarity(
                    product=member_deviation * peer_deviation,
                    member_sq=member_deviation * member_deviation,
                    peer_sq=peer_deviation * peer_deviation,
                )
                yield ((PARTIAL_TAG, member_id, peer_id), partial)

    return MapReduceJob(
        name="job1-partial-similarity-and-candidates",
        mapper=mapper,
        reducer=reducer,
        num_partitions=num_partitions,
    )


def split_job1_output(
    output: Iterable[Pair],
) -> tuple[list[Pair], list[Pair]]:
    """Separate Job 1 output into (candidate pairs, partial-score pairs).

    Candidate pairs are re-keyed to ``(item_id, (user, rating))`` and the
    partial pairs to ``((member, peer), PartialSimilarity)`` so they can
    feed Jobs 3 and 2 respectively.
    """
    candidates: list[Pair] = []
    partials: list[Pair] = []
    for key, value in output:
        tag = key[0]
        if tag == CANDIDATE_TAG:
            candidates.append((key[1], value))
        elif tag == PARTIAL_TAG:
            partials.append(((key[1], key[2]), value))
        else:  # pragma: no cover - defensive
            raise ValueError(f"unexpected Job 1 output tag {tag!r}")
    return candidates, partials


# ---------------------------------------------------------------------------
# Job 2 — assemble simU from the partial components and apply δ.
# ---------------------------------------------------------------------------


def make_job2(
    threshold: float,
    min_common_items: int = 2,
    num_partitions: int = 1,
) -> MapReduceJob:
    """Build Job 2: finish the Pearson computation and filter by ``δ``."""

    def mapper(pair_key: Any, partial: Any) -> Iterable[Pair]:
        yield (pair_key, partial)

    def combiner(pair_key: Any, partials: Sequence[Any]) -> Iterable[Any]:
        # Pre-aggregate the component sums, like a Hadoop combiner would.
        yield PartialSimilarity(
            product=sum(p.product for p in partials),
            member_sq=sum(p.member_sq for p in partials),
            peer_sq=sum(p.peer_sq for p in partials),
            count=sum(p.count for p in partials),
        )

    def reducer(pair_key: Any, partials: Sequence[Any]) -> Iterable[Pair]:
        product = sum(p.product for p in partials)
        member_sq = sum(p.member_sq for p in partials)
        peer_sq = sum(p.peer_sq for p in partials)
        count = sum(p.count for p in partials)
        if count < min_common_items:
            return
        denominator = math.sqrt(member_sq) * math.sqrt(peer_sq)
        if denominator == 0.0:
            return
        similarity = product / denominator
        if similarity >= threshold:
            yield (pair_key, similarity)

    return MapReduceJob(
        name="job2-similarity",
        mapper=mapper,
        reducer=reducer,
        combiner=combiner,
        num_partitions=num_partitions,
    )


def make_packed_similarity_job(
    matrix: RatingMatrix,
    group_members: Sequence[str],
    threshold: float,
    min_common_items: int = 2,
    num_partitions: int = 1,
) -> MapReduceJob:
    """Job 2 on the packed kernel: score members against all non-members.

    The pair-partial route of :func:`make_job1` + :func:`make_job2`
    shuffles one :class:`PartialSimilarity` per (member, peer, co-rated
    item) — the dominant cost of the Figure 2 pipeline.  This variant
    keys the job by *member* and lets each reducer call run one
    :func:`repro.kernels.pearson_one_vs_many` sweep over the shared
    :class:`~repro.kernels.PackedRatings` view, so the whole similarity
    phase shuffles ``|G|`` records instead of the co-rating volume.

    The input pairs are ``(member_id, None)`` — one per group member
    (see :func:`packed_similarity_input`).  The output is the Job 2
    contract, ``((member, peer), simU)`` with ``simU >= threshold``;
    scores differ from the partial-sum route by summation order only
    (last-ulp), and when ``threshold <= 0`` the table may carry 0.0
    scores for pairs the partial route never formed — those add 0 to
    both sums of Equation 1, so Job 3's output is unaffected.

    The mapper/reducer closures capture ``matrix``; as with the other
    jobs, run them on the serial or thread backend.
    """
    members = set(group_members)

    def mapper(member_id: Any, payload: Any) -> Iterable[Pair]:
        yield (member_id, payload)

    def reducer(member_id: Any, _payloads: Sequence[Any]) -> Iterable[Pair]:
        packed = get_packed(matrix)
        candidates = [
            user_id for user_id in matrix.user_ids() if user_id not in members
        ]
        scores = pearson_one_vs_many(
            packed, member_id, candidates, min_common_items
        )
        for peer_id in candidates:
            similarity = scores[peer_id]
            if similarity >= threshold:
                yield ((member_id, peer_id), similarity)

    return MapReduceJob(
        name="job2-similarity-packed",
        mapper=mapper,
        reducer=reducer,
        num_partitions=num_partitions,
    )


def packed_similarity_input(group_members: Sequence[str]) -> list[Pair]:
    """The ``(member_id, None)`` input pairs of the packed Job 2."""
    return [(member_id, None) for member_id in group_members]


def similarity_table(output: Iterable[Pair]) -> dict[str, dict[str, float]]:
    """Convert Job 2 output into ``{member: {peer: simU}}``."""
    table: dict[str, dict[str, float]] = {}
    for (member_id, peer_id), similarity in output:
        table.setdefault(member_id, {})[peer_id] = similarity
    return table


# ---------------------------------------------------------------------------
# Job 3 — per-member relevance (Equation 1) and group relevance.
# ---------------------------------------------------------------------------


def make_job3(
    group_members: Sequence[str],
    similarities: Mapping[str, Mapping[str, float]],
    aggregation: AggregationStrategy,
    num_partitions: int = 1,
) -> MapReduceJob:
    """Build Job 3 for the candidate items of Job 1.

    ``similarities`` is the Job 2 output table (side input).  The reducer
    of each candidate item computes ``relevance(member, item)`` for every
    member that has at least one similar rater, and emits the group
    relevance only when *all* members have a score (Definition 2
    requires a prediction from each member).
    """
    members = list(group_members)

    def mapper(item_id: Any, user_rating: Any) -> Iterable[Pair]:
        yield (item_id, user_rating)

    def reducer(item_id: Any, user_ratings: Sequence[Any]) -> Iterable[Pair]:
        ratings = {user_id: float(value) for user_id, value in user_ratings}
        member_scores: dict[str, float] = {}
        for member_id in members:
            peer_sims = similarities.get(member_id, {})
            numerator = 0.0
            denominator = 0.0
            for rater_id, rating in ratings.items():
                similarity = peer_sims.get(rater_id)
                if similarity is None:
                    continue
                numerator += similarity * rating
                denominator += similarity
            if denominator != 0.0:
                member_scores[member_id] = numerator / denominator
        if len(member_scores) != len(members):
            # At least one member has no usable peers for this item; the
            # item cannot be aggregated for the whole group.
            return
        group_score = aggregation.aggregate(
            [member_scores[member_id] for member_id in members]
        )
        yield (item_id, {"members": member_scores, "group": group_score})

    return MapReduceJob(
        name="job3-relevance",
        mapper=mapper,
        reducer=reducer,
        num_partitions=num_partitions,
    )
