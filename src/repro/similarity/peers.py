"""Peer selection (Definition 1 of the paper).

The peers ``P_u`` of a user ``u`` are "all those users ``u'`` which are
similar to ``u`` w.r.t. a similarity function ``simU`` and a threshold
``δ``".  :class:`PeerSelector` implements that definition on top of any
:class:`~repro.similarity.base.UserSimilarity`, with two practical
refinements that the library exposes but does not enable by default:

* an optional cap on the number of peers (``max_peers``), keeping only
  the most similar ones;
* an optional explicit candidate pool (the MapReduce implementation of
  Section IV only considers users *outside* the group as potential
  peers — the same restriction can be expressed here).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from ..data.ratings import RatingMatrix
from .base import UserSimilarity


@dataclass(frozen=True)
class Peer:
    """One selected peer with its similarity score."""

    user_id: str
    similarity: float


class PeerSelector:
    """Select the peers ``P_u`` of users according to Definition 1.

    Parameters
    ----------
    similarity:
        The ``simU`` function.
    threshold:
        The ``δ`` threshold; a candidate with ``simU >= δ`` is a peer.
    max_peers:
        Optional cap; when set, only the ``max_peers`` most similar
        peers are kept (ties broken by user id for determinism).
    """

    def __init__(
        self,
        similarity: UserSimilarity,
        threshold: float = 0.0,
        max_peers: int | None = None,
    ) -> None:
        if max_peers is not None and max_peers <= 0:
            raise ValueError("max_peers must be positive or None")
        self.similarity = similarity
        self.threshold = threshold
        self.max_peers = max_peers

    def peers(
        self,
        user_id: str,
        candidates: Iterable[str],
    ) -> list[Peer]:
        """Peers of ``user_id`` among ``candidates``, most similar first.

        The user itself is never returned, regardless of ``candidates``.
        """
        scored: list[Peer] = []
        for candidate in candidates:
            if candidate == user_id:
                continue
            score = self.similarity.similarity(user_id, candidate)
            if score >= self.threshold:
                scored.append(Peer(user_id=candidate, similarity=score))
        scored.sort(key=lambda peer: (-peer.similarity, peer.user_id))
        if self.max_peers is not None:
            scored = scored[: self.max_peers]
        return scored

    def peer_map(
        self,
        user_ids: Iterable[str],
        candidates: Iterable[str],
    ) -> dict[str, list[Peer]]:
        """Peers for every user in ``user_ids`` against the same candidates."""
        candidate_list = list(candidates)
        return {
            user_id: self.peers(user_id, candidate_list) for user_id in user_ids
        }

    def peers_from_matrix(
        self,
        user_id: str,
        matrix: RatingMatrix,
        exclude: Iterable[str] = (),
    ) -> list[Peer]:
        """Peers of ``user_id`` among every user of ``matrix``.

        ``exclude`` removes additional users from the candidate pool
        (the MapReduce formulation excludes the other group members).
        """
        excluded = set(exclude) | {user_id}
        candidates = [uid for uid in matrix.user_ids() if uid not in excluded]
        return self.peers(user_id, candidates)


def peers_as_mapping(peers: Iterable[Peer]) -> dict[str, float]:
    """Convert a peer list into a ``{user_id: similarity}`` mapping."""
    return {peer.user_id: peer.similarity for peer in peers}


def mapping_as_peers(scores: Mapping[str, float]) -> list[Peer]:
    """Convert a ``{user_id: similarity}`` mapping into a sorted peer list."""
    peers = [Peer(user_id=user_id, similarity=score) for user_id, score in scores.items()]
    peers.sort(key=lambda peer: (-peer.similarity, peer.user_id))
    return peers
