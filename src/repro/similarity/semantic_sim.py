"""Semantic user similarity (Section V.C, Equation 4).

Two users are compared through their health problems:

1. every problem maps to a concept of the SNOMED-like ontology and the
   similarity of two problems is a decreasing function of the shortest
   path between their concepts (Section V.C.1);
2. the overall similarity of two users is the *harmonic mean* of the
   pairwise problem similarities over all pairs of problems from the
   two profiles (Section V.C.2, Equation 4).

The harmonic mean is undefined when any pairwise similarity is 0; since
our path-based similarities are strictly positive for connected
ontologies, that situation only arises for users without mappable
problems, which score 0.
"""

from __future__ import annotations

from ..data.users import UserRegistry
from ..ontology.ontology import HealthOntology
from ..ontology.pathsim import ConceptSimilarity, path_similarity
from .base import UserSimilarity


def harmonic_mean(values: list[float]) -> float:
    """Harmonic mean of strictly positive values (Equation 4).

    Returns 0 for an empty list and for any list containing a
    non-positive entry (the harmonic mean is undefined there; 0 is the
    conservative "not similar" answer).
    """
    if not values:
        return 0.0
    if any(value <= 0.0 for value in values):
        return 0.0
    return len(values) / sum(1.0 / value for value in values)


class SemanticSimilarity(UserSimilarity):
    """``SS(u, u')`` — harmonic mean of problem-to-problem similarities.

    Scores lie in ``(0, 1]`` for users with mappable problems and 0
    otherwise.

    Parameters
    ----------
    users:
        Registry providing the patient profiles (their problem lists).
    ontology:
        Concept hierarchy used for the path computations.
    concept_similarity:
        The problem-to-problem similarity function; defaults to
        ``1 / (1 + shortest_path)`` (:func:`path_similarity`).
    skip_unknown_concepts:
        When true (default) problems whose concept id is missing from
        the ontology are ignored; when false they raise.
    """

    name = "semantic"

    def __init__(
        self,
        users: UserRegistry,
        ontology: HealthOntology,
        concept_similarity: ConceptSimilarity = path_similarity,
        skip_unknown_concepts: bool = True,
    ) -> None:
        self.users = users
        self.ontology = ontology
        self.concept_similarity = concept_similarity
        self.skip_unknown_concepts = skip_unknown_concepts
        self._concept_cache: dict[tuple[str, str], float] = {}

    def invalidate_user_ratings(self, user_id: str) -> None:
        """No-op: semantic scores do not depend on ratings.

        The concept cache is keyed by ontology concepts (not users) and
        user concepts are read from the registry on every call, so
        profile updates need no action here either.
        """

    # -- problem level ---------------------------------------------------------

    def problem_similarity(self, concept_a: str, concept_b: str) -> float:
        """Similarity of two problems via their ontology concepts."""
        key = (concept_a, concept_b) if concept_a <= concept_b else (concept_b, concept_a)
        if key not in self._concept_cache:
            self._concept_cache[key] = self.concept_similarity(
                self.ontology, concept_a, concept_b
            )
        return self._concept_cache[key]

    def _user_concepts(self, user_id: str) -> list[str]:
        user = self.users.get(user_id)
        concepts = []
        for concept_id in user.problem_concepts():
            if concept_id in self.ontology:
                concepts.append(concept_id)
            elif not self.skip_unknown_concepts:
                # Delegate the error to the ontology accessor for a
                # consistent exception type.
                self.ontology.get(concept_id)
        return concepts

    # -- user level ------------------------------------------------------------------

    def pairwise_problem_similarities(
        self, user_a: str, user_b: str
    ) -> list[float]:
        """All cross-profile problem similarities ``x_i`` of Equation 4."""
        concepts_a = self._user_concepts(user_a)
        concepts_b = self._user_concepts(user_b)
        return [
            self.problem_similarity(concept_a, concept_b)
            for concept_a in concepts_a
            for concept_b in concepts_b
        ]

    def similarity(self, user_a: str, user_b: str) -> float:
        if user_a == user_b:
            return 1.0
        values = self.pairwise_problem_similarities(user_a, user_b)
        return harmonic_mean(values)
