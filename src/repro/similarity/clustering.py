"""Clustering-based peer pre-selection (related-work extension).

The paper's related work (Section VII) notes that "clustering has been
employed to pre-partition users into clusters of similar users and rely
on cluster members for recommendations" (Ntoutsi et al. [17]).  Scanning
every user for every peer query is quadratic; pre-clustering makes peer
search scale to large patient populations at a small accuracy cost.

This module implements that refinement without external dependencies:

* :class:`RatingVectorizer` — turns users into mean-centred sparse
  rating vectors;
* :class:`KMeansClusterer` — a small k-means over sparse vectors with
  cosine assignment and deterministic seeding;
* :class:`ClusteredPeerSelector` — a drop-in replacement for
  :class:`~repro.similarity.peers.PeerSelector` that only evaluates the
  exact similarity against users in the query user's cluster (optionally
  the closest ``num_probe_clusters`` clusters).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..data.ratings import RatingMatrix
from ..text.vectors import SparseVector
from .base import UserSimilarity
from .peers import Peer, PeerSelector


class RatingVectorizer:
    """Represent each user as a mean-centred sparse vector of ratings."""

    def __init__(self, matrix: RatingMatrix, center: bool = True) -> None:
        self.matrix = matrix
        self.center = center

    def vector(self, user_id: str) -> SparseVector:
        """The (optionally mean-centred) rating vector of ``user_id``."""
        ratings = self.matrix.items_of(user_id)
        if not ratings:
            return SparseVector()
        if not self.center:
            return SparseVector(ratings)
        mean = sum(ratings.values()) / len(ratings)
        centred = {item_id: value - mean for item_id, value in ratings.items()}
        return SparseVector(centred)

    def vectors(self, user_ids: Iterable[str]) -> dict[str, SparseVector]:
        """Vectors for several users."""
        return {user_id: self.vector(user_id) for user_id in user_ids}


@dataclass
class Cluster:
    """One cluster: its centroid and the member user ids."""

    centroid: SparseVector
    members: list[str] = field(default_factory=list)


class KMeansClusterer:
    """Cosine k-means over sparse user vectors.

    Parameters
    ----------
    num_clusters:
        Number of clusters ``k``.
    max_iterations:
        Maximum number of assignment/update rounds.
    seed:
        Seed of the deterministic centroid initialisation.
    """

    def __init__(
        self, num_clusters: int = 8, max_iterations: int = 20, seed: int = 7
    ) -> None:
        if num_clusters <= 0:
            raise ValueError("num_clusters must be positive")
        if max_iterations <= 0:
            raise ValueError("max_iterations must be positive")
        self.num_clusters = num_clusters
        self.max_iterations = max_iterations
        self.seed = seed

    def fit(self, vectors: dict[str, SparseVector]) -> list[Cluster]:
        """Cluster the users; returns the final clusters.

        Users with empty vectors are assigned to the first cluster (they
        carry no signal either way).  The number of clusters is capped at
        the number of non-empty vectors.
        """
        user_ids = sorted(vectors)
        non_empty = [uid for uid in user_ids if len(vectors[uid])]
        k = min(self.num_clusters, max(1, len(non_empty)))
        rng = random.Random(self.seed)
        seeds = rng.sample(non_empty, k) if non_empty else user_ids[:1]
        centroids = [vectors[uid].normalized() for uid in seeds]

        assignment: dict[str, int] = {}
        for _ in range(self.max_iterations):
            new_assignment = {
                user_id: self._closest(vectors[user_id], centroids)
                for user_id in user_ids
            }
            if new_assignment == assignment:
                break
            assignment = new_assignment
            centroids = self._update_centroids(vectors, assignment, len(centroids))

        clusters = [Cluster(centroid=centroid) for centroid in centroids]
        for user_id, index in assignment.items():
            clusters[index].members.append(user_id)
        return clusters

    @staticmethod
    def _closest(vector: SparseVector, centroids: Sequence[SparseVector]) -> int:
        best_index = 0
        best_score = float("-inf")
        for index, centroid in enumerate(centroids):
            score = vector.cosine(centroid)
            if score > best_score:
                best_score = score
                best_index = index
        return best_index

    @staticmethod
    def _update_centroids(
        vectors: dict[str, SparseVector],
        assignment: dict[str, int],
        num_clusters: int,
    ) -> list[SparseVector]:
        sums: list[SparseVector] = [SparseVector() for _ in range(num_clusters)]
        counts = [0] * num_clusters
        for user_id, index in assignment.items():
            vector = vectors[user_id]
            if len(vector) == 0:
                continue
            sums[index] = sums[index].add(vector)
            counts[index] += 1
        centroids: list[SparseVector] = []
        for index, total in enumerate(sums):
            if counts[index] == 0:
                centroids.append(total)
            else:
                centroids.append(total.scale(1.0 / counts[index]).normalized())
        return centroids


class ClusteredPeerSelector:
    """Peer selection restricted to the query user's cluster(s).

    A drop-in alternative to :class:`~repro.similarity.peers.PeerSelector`
    for large user populations: the exact ``simU`` is only evaluated
    against the members of the ``num_probe_clusters`` clusters whose
    centroids are closest to the query user's vector.

    Parameters
    ----------
    similarity:
        The exact ``simU`` used inside the probed clusters.
    matrix:
        The rating matrix (used both for vectorisation and for the
        candidate universe).
    threshold, max_peers:
        Same semantics as :class:`PeerSelector` (Definition 1).
    num_clusters:
        Number of k-means clusters.
    num_probe_clusters:
        How many of the closest clusters to search (1 = only the user's
        own cluster; more probes trade speed for recall).
    """

    def __init__(
        self,
        similarity: UserSimilarity,
        matrix: RatingMatrix,
        threshold: float = 0.0,
        max_peers: int | None = None,
        num_clusters: int = 8,
        num_probe_clusters: int = 1,
        seed: int = 7,
    ) -> None:
        if num_probe_clusters <= 0:
            raise ValueError("num_probe_clusters must be positive")
        self.exact_selector = PeerSelector(
            similarity, threshold=threshold, max_peers=max_peers
        )
        self.matrix = matrix
        self.num_probe_clusters = num_probe_clusters
        self.vectorizer = RatingVectorizer(matrix)
        clusterer = KMeansClusterer(num_clusters=num_clusters, seed=seed)
        self._vectors = self.vectorizer.vectors(matrix.user_ids())
        self.clusters = clusterer.fit(self._vectors)

    # -- introspection ---------------------------------------------------------

    @property
    def num_clusters(self) -> int:
        """Number of fitted clusters."""
        return len(self.clusters)

    def cluster_of(self, user_id: str) -> int:
        """Index of the cluster containing ``user_id`` (-1 when unknown)."""
        for index, cluster in enumerate(self.clusters):
            if user_id in cluster.members:
                return index
        return -1

    def cluster_sizes(self) -> list[int]:
        """Member counts of every cluster."""
        return [len(cluster.members) for cluster in self.clusters]

    # -- peer search --------------------------------------------------------------

    def candidate_pool(self, user_id: str) -> list[str]:
        """Users in the probed clusters (excluding the query user)."""
        vector = self._vectors.get(user_id, self.vectorizer.vector(user_id))
        scored = sorted(
            range(len(self.clusters)),
            key=lambda index: -vector.cosine(self.clusters[index].centroid),
        )
        pool: list[str] = []
        for index in scored[: self.num_probe_clusters]:
            pool.extend(self.clusters[index].members)
        return [candidate for candidate in pool if candidate != user_id]

    def peers(self, user_id: str, exclude: Iterable[str] = ()) -> list[Peer]:
        """Peers of ``user_id`` inside the probed clusters (Definition 1)."""
        excluded = set(exclude)
        candidates = [
            candidate
            for candidate in self.candidate_pool(user_id)
            if candidate not in excluded
        ]
        return self.exact_selector.peers(user_id, candidates)
