"""User similarity measures (Section V of the paper) and peer selection."""

from .base import PrecomputedSimilarity, UserSimilarity
from .clustering import (
    Cluster,
    ClusteredPeerSelector,
    KMeansClusterer,
    RatingVectorizer,
)
from .hybrid import HybridSimilarity
from .peers import Peer, PeerSelector, mapping_as_peers, peers_as_mapping
from .profile_sim import ProfileSimilarity
from .ratings_sim import (
    CosineRatingSimilarity,
    JaccardRatingSimilarity,
    PearsonRatingSimilarity,
)
from .semantic_sim import SemanticSimilarity, harmonic_mean

__all__ = [
    "Cluster",
    "ClusteredPeerSelector",
    "CosineRatingSimilarity",
    "HybridSimilarity",
    "KMeansClusterer",
    "JaccardRatingSimilarity",
    "Peer",
    "PeerSelector",
    "PearsonRatingSimilarity",
    "PrecomputedSimilarity",
    "ProfileSimilarity",
    "RatingVectorizer",
    "SemanticSimilarity",
    "UserSimilarity",
    "harmonic_mean",
    "mapping_as_peers",
    "peers_as_mapping",
]
