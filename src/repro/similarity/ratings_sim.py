"""Rating-based user similarity (Section V.A, Equation 2).

The paper's first similarity measure is the Pearson correlation over
co-rated items: "if two users have rated documents in a similar way,
then we can say that they are similar, since they share the same
interests."  This module implements that measure plus two common
alternatives (cosine over raw ratings and Jaccard over rated-item sets)
used by the similarity ablation benchmark.
"""

from __future__ import annotations

import math
from typing import Iterable

from ..data.ratings import RatingMatrix
from .base import UserSimilarity


class PearsonRatingSimilarity(UserSimilarity):
    """``RS(u, u')`` — Pearson correlation over co-rated items (Eq. 2).

    Scores lie in ``[-1, 1]``.  Pairs with fewer than
    ``min_common_items`` co-rated items score 0, as do pairs where one
    user has zero rating variance on the common items (the correlation
    is undefined there).

    Parameters
    ----------
    matrix:
        The rating matrix the measure reads from.
    min_common_items:
        Minimum number of co-rated items for a meaningful score.
    mean_over_common_only:
        Equation 2 centers each user's ratings with ``μ_u`` computed
        over *all* of the user's ratings.  Setting this flag computes the
        mean over the co-rated subset only (the other textbook variant);
        the default follows the paper.
    """

    name = "ratings"

    def __init__(
        self,
        matrix: RatingMatrix,
        min_common_items: int = 2,
        mean_over_common_only: bool = False,
    ) -> None:
        if min_common_items < 1:
            raise ValueError("min_common_items must be at least 1")
        self.matrix = matrix
        self.min_common_items = min_common_items
        self.mean_over_common_only = mean_over_common_only
        self._mean_cache: dict[str, float] = {}

    def _mean(self, user_id: str) -> float:
        if user_id not in self._mean_cache:
            self._mean_cache[user_id] = self.matrix.mean_rating(user_id)
        return self._mean_cache[user_id]

    def invalidate_cache(self) -> None:
        """Drop cached user means (call after mutating the matrix)."""
        self._mean_cache.clear()

    def invalidate_user(self, user_id: str) -> None:
        """Drop the cached mean of one user (after a rating change)."""
        self._mean_cache.pop(user_id, None)

    def similarity(self, user_a: str, user_b: str) -> float:
        if user_a == user_b:
            return 1.0
        ratings_a = self.matrix.items_of(user_a)
        ratings_b = self.matrix.items_of(user_b)
        common = set(ratings_a) & set(ratings_b)
        if len(common) < self.min_common_items:
            return 0.0
        if self.mean_over_common_only:
            mean_a = sum(ratings_a[i] for i in common) / len(common)
            mean_b = sum(ratings_b[i] for i in common) / len(common)
        else:
            mean_a = self._mean(user_a)
            mean_b = self._mean(user_b)
        numerator = 0.0
        sum_sq_a = 0.0
        sum_sq_b = 0.0
        for item_id in common:
            deviation_a = ratings_a[item_id] - mean_a
            deviation_b = ratings_b[item_id] - mean_b
            numerator += deviation_a * deviation_b
            sum_sq_a += deviation_a * deviation_a
            sum_sq_b += deviation_b * deviation_b
        denominator = math.sqrt(sum_sq_a) * math.sqrt(sum_sq_b)
        if denominator == 0.0:
            return 0.0
        return numerator / denominator

    def similarities(
        self, user_id: str, candidates: Iterable[str]
    ) -> dict[str, float]:
        """Batched ``RS(u, ·)`` against many candidates.

        The default implementation performs a full set intersection per
        candidate, which makes building a neighbour index quadratic in
        dict lookups.  This override walks the inverted index of the
        user's rated items *once*, counting co-rated items per
        candidate, and only evaluates the Pearson formula for the
        candidates that reach ``min_common_items``.  Scores are
        bit-identical to :meth:`similarity` because qualifying pairs go
        through the same code path.
        """
        scores = {
            candidate: 0.0 for candidate in candidates if candidate != user_id
        }
        ratings_a = self.matrix.items_of(user_id)
        if not ratings_a or not scores:
            return scores
        overlap: dict[str, int] = {}
        for item_id in ratings_a:
            for user_b in self.matrix.iter_raters(item_id):
                if user_b in scores:
                    overlap[user_b] = overlap.get(user_b, 0) + 1
        for user_b, count in overlap.items():
            if count >= self.min_common_items:
                scores[user_b] = self.similarity(user_id, user_b)
        return scores


class CosineRatingSimilarity(UserSimilarity):
    """Cosine similarity over the users' raw rating vectors.

    Scores lie in ``[0, 1]`` for non-negative rating scales.  Included
    as an ablation alternative to the paper's Pearson choice.
    """

    name = "ratings-cosine"

    def __init__(self, matrix: RatingMatrix, min_common_items: int = 1) -> None:
        if min_common_items < 1:
            raise ValueError("min_common_items must be at least 1")
        self.matrix = matrix
        self.min_common_items = min_common_items

    def similarity(self, user_a: str, user_b: str) -> float:
        if user_a == user_b:
            return 1.0
        ratings_a = self.matrix.items_of(user_a)
        ratings_b = self.matrix.items_of(user_b)
        common = set(ratings_a) & set(ratings_b)
        if len(common) < self.min_common_items:
            return 0.0
        numerator = sum(ratings_a[i] * ratings_b[i] for i in common)
        norm_a = math.sqrt(sum(v * v for v in ratings_a.values()))
        norm_b = math.sqrt(sum(v * v for v in ratings_b.values()))
        if norm_a == 0.0 or norm_b == 0.0:
            return 0.0
        return numerator / (norm_a * norm_b)


class JaccardRatingSimilarity(UserSimilarity):
    """Jaccard overlap of the rated-item sets (ignores the scores).

    Scores lie in ``[0, 1]``.  A cheap structural baseline used in the
    similarity ablation.
    """

    name = "ratings-jaccard"

    def __init__(self, matrix: RatingMatrix) -> None:
        self.matrix = matrix

    def similarity(self, user_a: str, user_b: str) -> float:
        if user_a == user_b:
            return 1.0
        items_a = self.matrix.item_ids_of(user_a)
        items_b = self.matrix.item_ids_of(user_b)
        union = items_a | items_b
        if not union:
            return 0.0
        return len(items_a & items_b) / len(union)
