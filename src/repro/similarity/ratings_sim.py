"""Rating-based user similarity (Section V.A, Equation 2).

The paper's first similarity measure is the Pearson correlation over
co-rated items: "if two users have rated documents in a similar way,
then we can say that they are similar, since they share the same
interests."  This module implements that measure plus two common
alternatives (cosine over raw ratings and Jaccard over rated-item sets)
used by the similarity ablation benchmark.

Pearson runs on one of two interchangeable kernels (the ``kernel``
argument, mirrored by :attr:`repro.config.RecommenderConfig.kernel`):

* ``"packed"`` (default) — the CSR kernels of :mod:`repro.kernels`:
  integer-interned ids, sorted-merge intersections, precomputed means
  and deviations, an inverted index for candidate overlap counting;
* ``"dict"`` — the oracle: straight dict-of-dicts arithmetic over the
  :class:`~repro.data.ratings.RatingMatrix`.

Both kernels sum each pair's co-rated terms in the same **canonical
order** — the matrix's item insertion order, which is also the packed
interning order — so their scores are bit-identical (asserted by the
cross-kernel parity suite), not merely close.
"""

from __future__ import annotations

import math
import weakref
from typing import Iterable

from ..data.ratings import RatingMatrix
from ..kernels import (
    DEFAULT_KERNEL,
    KERNEL_NAMES,
    PackedRatings,
    SpillError,
    get_packed,
    pearson_one_vs_many,
    pearson_pair,
)
from .base import UserSimilarity


class PearsonRatingSimilarity(UserSimilarity):
    """``RS(u, u')`` — Pearson correlation over co-rated items (Eq. 2).

    Scores lie in ``[-1, 1]``.  Pairs with fewer than
    ``min_common_items`` co-rated items score 0, as do pairs where one
    user has zero rating variance on the common items (the correlation
    is undefined there).

    Parameters
    ----------
    matrix:
        The rating matrix the measure reads from.
    min_common_items:
        Minimum number of co-rated items for a meaningful score.
    mean_over_common_only:
        Equation 2 centers each user's ratings with ``μ_u`` computed
        over *all* of the user's ratings.  Setting this flag computes the
        mean over the co-rated subset only (the other textbook variant);
        the default follows the paper.
    kernel:
        ``"packed"`` (default) computes through the CSR kernels of
        :mod:`repro.kernels`; ``"dict"`` keeps the dict-of-dicts oracle
        path.  Scores are bit-identical either way — this is purely a
        performance knob.
    """

    name = "ratings"

    def __init__(
        self,
        matrix: RatingMatrix,
        min_common_items: int = 2,
        mean_over_common_only: bool = False,
        kernel: str = DEFAULT_KERNEL,
    ) -> None:
        if min_common_items < 1:
            raise ValueError("min_common_items must be at least 1")
        if kernel not in KERNEL_NAMES:
            raise ValueError(
                f"unknown kernel {kernel!r}; expected one of {KERNEL_NAMES}"
            )
        self.matrix = matrix
        self.min_common_items = min_common_items
        self.mean_over_common_only = mean_over_common_only
        self.kernel = kernel
        self._mean_cache: dict[str, float] = {}
        self._packed = None
        self._item_rank: dict[str, int] = {}
        self._item_rank_version = -1
        # Per-shard sub-views: children created by with_private_packed()
        # own a *private* PackedRatings (their own dirty set and repack
        # lock), held weakly here so invalidations fan out for exactly
        # as long as a shard holds its measure alive.
        self._children: "weakref.WeakSet[PearsonRatingSimilarity]" = (
            weakref.WeakSet()
        )
        self._private_packed = False
        self._parent: "weakref.ref[PearsonRatingSimilarity] | None" = None

    def _mean(self, user_id: str) -> float:
        if user_id not in self._mean_cache:
            self._mean_cache[user_id] = self.matrix.mean_rating(user_id)
        return self._mean_cache[user_id]

    def _packed_view(self):
        if self._packed is None:
            if self._private_packed:
                self._packed = self._open_private_view()
            else:
                self._packed = get_packed(self.matrix)
        return self._packed

    def _open_private_view(self) -> PackedRatings:
        """A packed view owned by this measure alone (see with_private_packed).

        When the shared view the parent reads is mmap-backed, the
        private view maps the *same* spill — the operating system
        shares the pages, so per-shard views at scale cost interning
        tables, not CSR copies.  Otherwise (or when the spill has gone
        stale) the row data is packed privately from the matrix.
        """
        parent = self._parent() if self._parent is not None else None
        shared = parent._packed if parent is not None else None
        if shared is not None and shared.spill_backed and shared._spill_dir:
            try:
                return PackedRatings.open_mmap(shared._spill_dir, self.matrix)
            except (SpillError, OSError):
                pass
        return PackedRatings(self.matrix)

    def with_private_packed(self) -> "PearsonRatingSimilarity":
        """A clone of this measure holding its own packed view.

        :class:`~repro.serving.sharding.ShardedNeighborIndex` gives each
        shard one so parallel shard builds never serialise on a single
        repack lock, and a dirty mark from one shard's home user does
        not force every other shard through a repack check.  On the
        ``"dict"`` kernel there is no packed state to privatise and
        ``self`` is returned unchanged.

        The parent keeps a weak reference to every child and forwards
        :meth:`invalidate_user` / :meth:`invalidate_cache` marks, so
        the serving layer keeps invalidating only the measure it holds.
        Scores are bit-identical: private views pack from the same
        matrix in the same canonical order.
        """
        if self.kernel != "packed":
            return self
        clone = PearsonRatingSimilarity(
            self.matrix,
            min_common_items=self.min_common_items,
            mean_over_common_only=self.mean_over_common_only,
            kernel=self.kernel,
        )
        clone._private_packed = True
        clone._parent = weakref.ref(self)
        self._children.add(clone)
        return clone

    def __getstate__(self) -> dict:
        # The packed view and the oracle's rank map rebuild lazily on
        # the far side of a process hop (pool workers repack from
        # their own replayed matrix), so neither the CSR arrays nor an
        # O(items) derivable dict ever cross the boundary.  Children
        # and parent links are process-local wiring (weakrefs do not
        # pickle); the far side rebuilds its own sharding.
        state = self.__dict__.copy()
        state["_packed"] = None
        state["_item_rank"] = {}
        state["_item_rank_version"] = -1
        state["_children"] = None
        state["_parent"] = None
        state["_private_packed"] = False
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._children = weakref.WeakSet()

    def _canonical_common(
        self, ratings_a: dict[str, float], ratings_b: dict[str, float]
    ) -> list[str]:
        """The co-rated items in canonical (item insertion) order.

        The canonical order makes the per-pair float summation
        deterministic — independent of set/hash iteration order — and
        equal to the packed kernel's ascending interned-id merge order,
        which is what makes the two kernels bit-identical.
        """
        common = set(ratings_a) & set(ratings_b)
        if len(common) <= 1:
            return list(common)
        version = self.matrix.version
        if self._item_rank_version != version:
            self._item_rank = {
                item_id: rank
                for rank, item_id in enumerate(self.matrix.iter_item_ids())
            }
            self._item_rank_version = version
        return sorted(common, key=self._item_rank.__getitem__)

    def invalidate_cache(self) -> None:
        """Drop all cached per-user state (call after mutating the matrix).

        Fans out to every live child created by
        :meth:`with_private_packed`, so per-shard packed views go stale
        together with the shared one.
        """
        self._mean_cache.clear()
        if self._packed is not None:
            self._packed.mark_all_dirty()
        for child in tuple(self._children):
            child.invalidate_cache()

    def invalidate_user(self, user_id: str) -> None:
        """Drop the cached state of one user (after a rating change).

        Fans out to every live :meth:`with_private_packed` child.
        """
        self._mean_cache.pop(user_id, None)
        if self._packed is not None:
            self._packed.mark_dirty(user_id)
        for child in tuple(self._children):
            child.invalidate_user(user_id)

    def similarity(self, user_a: str, user_b: str) -> float:
        if user_a == user_b:
            return 1.0
        if self.kernel == "packed":
            return pearson_pair(
                self._packed_view(),
                user_a,
                user_b,
                self.min_common_items,
                self.mean_over_common_only,
            )
        ratings_a = self.matrix.items_of(user_a)
        ratings_b = self.matrix.items_of(user_b)
        common = self._canonical_common(ratings_a, ratings_b)
        if len(common) < self.min_common_items:
            return 0.0
        if self.mean_over_common_only:
            mean_a = sum(ratings_a[i] for i in common) / len(common)
            mean_b = sum(ratings_b[i] for i in common) / len(common)
        else:
            mean_a = self._mean(user_a)
            mean_b = self._mean(user_b)
        numerator = 0.0
        sum_sq_a = 0.0
        sum_sq_b = 0.0
        for item_id in common:
            deviation_a = ratings_a[item_id] - mean_a
            deviation_b = ratings_b[item_id] - mean_b
            numerator += deviation_a * deviation_b
            sum_sq_a += deviation_a * deviation_a
            sum_sq_b += deviation_b * deviation_b
        denominator = math.sqrt(sum_sq_a) * math.sqrt(sum_sq_b)
        if denominator == 0.0:
            return 0.0
        return numerator / denominator

    def similarities(
        self, user_id: str, candidates: Iterable[str]
    ) -> dict[str, float]:
        """Batched ``RS(u, ·)`` against many candidates.

        On the packed kernel this is
        :func:`repro.kernels.pearson_one_vs_many` — one inverted-index
        walk over interned ints, then sorted-merge scoring of the
        qualifying pairs.  The dict path keeps the same shape over the
        string-keyed matrix: walk the inverted index of the user's
        rated items once, count co-rated items per candidate, and only
        evaluate the Pearson formula for the candidates that reach
        ``min_common_items``.  Scores are bit-identical between the
        kernels and to :meth:`similarity`.
        """
        if self.kernel == "packed":
            return pearson_one_vs_many(
                self._packed_view(),
                user_id,
                candidates,
                self.min_common_items,
                self.mean_over_common_only,
            )
        ratings_a = self.matrix.items_of(user_id)
        if not ratings_a:
            # Empty-profile users score 0 against everyone; skip the
            # overlap walk (and its bookkeeping allocations) entirely.
            return {
                candidate: 0.0 for candidate in candidates if candidate != user_id
            }
        scores = {
            candidate: 0.0 for candidate in candidates if candidate != user_id
        }
        if not scores:
            return scores
        overlap: dict[str, int] = {}
        for item_id in ratings_a:
            for user_b in self.matrix.iter_raters(item_id):
                if user_b in scores:
                    overlap[user_b] = overlap.get(user_b, 0) + 1
        for user_b, count in overlap.items():
            if count >= self.min_common_items:
                scores[user_b] = self.similarity(user_id, user_b)
        return scores


class CosineRatingSimilarity(UserSimilarity):
    """Cosine similarity over the users' raw rating vectors.

    Scores lie in ``[0, 1]`` for non-negative rating scales.  Included
    as an ablation alternative to the paper's Pearson choice.  Per-user
    vector norms are cached (they only depend on the user's own row)
    and dropped through the same ``invalidate_user`` hooks Pearson's
    mean cache uses.
    """

    name = "ratings-cosine"

    def __init__(self, matrix: RatingMatrix, min_common_items: int = 1) -> None:
        if min_common_items < 1:
            raise ValueError("min_common_items must be at least 1")
        self.matrix = matrix
        self.min_common_items = min_common_items
        self._norm_cache: dict[str, float] = {}

    def _norm(self, user_id: str) -> float:
        norm = self._norm_cache.get(user_id)
        if norm is None:
            ratings = self.matrix.items_of(user_id)
            norm = math.sqrt(sum(v * v for v in ratings.values()))
            self._norm_cache[user_id] = norm
        return norm

    def invalidate_cache(self) -> None:
        """Drop every cached norm (call after mutating the matrix)."""
        self._norm_cache.clear()

    def invalidate_user(self, user_id: str) -> None:
        """Drop the cached norm of one user (after a rating change)."""
        self._norm_cache.pop(user_id, None)

    def similarity(self, user_a: str, user_b: str) -> float:
        if user_a == user_b:
            return 1.0
        ratings_a = self.matrix.items_of(user_a)
        ratings_b = self.matrix.items_of(user_b)
        common = set(ratings_a) & set(ratings_b)
        if len(common) < self.min_common_items:
            return 0.0
        numerator = sum(ratings_a[i] * ratings_b[i] for i in common)
        norm_a = self._norm(user_a)
        norm_b = self._norm(user_b)
        if norm_a == 0.0 or norm_b == 0.0:
            return 0.0
        return numerator / (norm_a * norm_b)


class JaccardRatingSimilarity(UserSimilarity):
    """Jaccard overlap of the rated-item sets (ignores the scores).

    Scores lie in ``[0, 1]``.  A cheap structural baseline used in the
    similarity ablation.
    """

    name = "ratings-jaccard"

    def __init__(self, matrix: RatingMatrix) -> None:
        self.matrix = matrix

    def similarity(self, user_a: str, user_b: str) -> float:
        if user_a == user_b:
            return 1.0
        items_a = self.matrix.item_ids_of(user_a)
        items_b = self.matrix.item_ids_of(user_b)
        union = items_a | items_b
        if not union:
            return 0.0
        return len(items_a & items_b) / len(union)
