"""Weighted combination of the three similarity measures.

Section V presents the ratings, profile and semantic measures as
complementary views on "how to exploit health-related information for
computing similarities between users".  :class:`HybridSimilarity`
combines any subset of them with non-negative weights, which is the
natural way to use all three at once and the configuration the
``similarity="hybrid"`` option of :class:`~repro.config.RecommenderConfig`
selects.
"""

from __future__ import annotations

from typing import Sequence

from ..exceptions import ConfigurationError
from .base import UserSimilarity


class HybridSimilarity(UserSimilarity):
    """Weighted average of component similarity measures.

    Parameters
    ----------
    components:
        The similarity measures to combine (at least one).
    weights:
        Non-negative weights, one per component.  They are normalised to
        sum to one; an all-zero weight vector is rejected.
    """

    name = "hybrid"

    def __init__(
        self,
        components: Sequence[UserSimilarity],
        weights: Sequence[float] | None = None,
    ) -> None:
        if not components:
            raise ConfigurationError("HybridSimilarity needs at least one component")
        if weights is None:
            weights = [1.0] * len(components)
        if len(weights) != len(components):
            raise ConfigurationError(
                f"got {len(weights)} weights for {len(components)} components"
            )
        if any(weight < 0 for weight in weights):
            raise ConfigurationError("weights must be non-negative")
        total = float(sum(weights))
        if total == 0.0:
            raise ConfigurationError("weights must not all be zero")
        self.components = list(components)
        self.weights = [weight / total for weight in weights]

    def similarity(self, user_a: str, user_b: str) -> float:
        if user_a == user_b:
            return 1.0
        return sum(
            weight * component.similarity(user_a, user_b)
            for component, weight in zip(self.components, self.weights)
        )

    def component_scores(self, user_a: str, user_b: str) -> dict[str, float]:
        """Per-component breakdown of the hybrid score (for reporting)."""
        return {
            component.name: component.similarity(user_a, user_b)
            for component in self.components
        }
