"""Weighted combination of the three similarity measures.

Section V presents the ratings, profile and semantic measures as
complementary views on "how to exploit health-related information for
computing similarities between users".  :class:`HybridSimilarity`
combines any subset of them with non-negative weights, which is the
natural way to use all three at once and the configuration the
``similarity="hybrid"`` option of :class:`~repro.config.RecommenderConfig`
selects.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..exceptions import ConfigurationError
from .base import UserSimilarity


class HybridSimilarity(UserSimilarity):
    """Weighted average of component similarity measures.

    Parameters
    ----------
    components:
        The similarity measures to combine (at least one).
    weights:
        Non-negative weights, one per component.  They are normalised to
        sum to one; an all-zero weight vector is rejected.
    """

    name = "hybrid"

    def __init__(
        self,
        components: Sequence[UserSimilarity],
        weights: Sequence[float] | None = None,
    ) -> None:
        if not components:
            raise ConfigurationError("HybridSimilarity needs at least one component")
        if weights is None:
            weights = [1.0] * len(components)
        if len(weights) != len(components):
            raise ConfigurationError(
                f"got {len(weights)} weights for {len(components)} components"
            )
        if any(weight < 0 for weight in weights):
            raise ConfigurationError("weights must be non-negative")
        total = float(sum(weights))
        if total == 0.0:
            raise ConfigurationError("weights must not all be zero")
        self.components = list(components)
        self.weights = [weight / total for weight in weights]

    def similarity(self, user_a: str, user_b: str) -> float:
        if user_a == user_b:
            return 1.0
        return sum(
            weight * component.similarity(user_a, user_b)
            for component, weight in zip(self.components, self.weights)
        )

    def similarities(
        self, user_id: str, candidates: Iterable[str]
    ) -> dict[str, float]:
        """Batched hybrid scores, delegating to the components' batched paths."""
        candidate_list = [c for c in candidates if c != user_id]
        combined = {candidate: 0.0 for candidate in candidate_list}
        for component, weight in zip(self.components, self.weights):
            component_scores = component.similarities(user_id, candidate_list)
            for candidate in candidate_list:
                combined[candidate] += weight * component_scores.get(candidate, 0.0)
        return combined

    def invalidate_user(self, user_id: str) -> None:
        """Propagate cache invalidation to every component."""
        for component in self.components:
            component.invalidate_user(user_id)

    def invalidate_user_ratings(self, user_id: str) -> None:
        """Propagate a ratings-only invalidation to every component.

        Components that ignore ratings (profile, semantic) treat this
        as a no-op, so a rating ingest does not trigger a corpus-wide
        TF-IDF refit.
        """
        for component in self.components:
            component.invalidate_user_ratings(user_id)

    @property
    def profile_corpus_sensitive(self) -> bool:  # type: ignore[override]
        """Whether any component reacts corpus-wide to profile edits."""
        return any(
            component.profile_corpus_sensitive for component in self.components
        )

    def component_scores(self, user_a: str, user_b: str) -> dict[str, float]:
        """Per-component breakdown of the hybrid score (for reporting)."""
        return {
            component.name: component.similarity(user_a, user_b)
            for component in self.components
        }
