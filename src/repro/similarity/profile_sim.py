"""Profile-based user similarity (Section V.B, Equation 3).

The paper flattens every user profile into one text document, computes
TF-IDF vectors over the resulting corpus (Definition 4) and compares
users with the cosine of their vectors (Equation 3).
:class:`ProfileSimilarity` performs exactly those steps on top of a
:class:`~repro.data.users.UserRegistry`; profile vectors are computed
lazily and cached.
"""

from __future__ import annotations

from ..data.users import UserRegistry
from ..text.tfidf import TfIdfModel
from ..text.tokenizer import DEFAULT_TOKENIZER, Tokenizer
from ..text.vectors import SparseVector
from .base import UserSimilarity


class ProfileSimilarity(UserSimilarity):
    """``CS(u, u')`` — TF-IDF cosine over flattened user profiles.

    Scores lie in ``[0, 1]``.  Users whose profile text is empty (or
    consists only of out-of-vocabulary terms) score 0 against everyone.

    Parameters
    ----------
    users:
        Registry providing the profiles.  The TF-IDF model is fitted on
        the profile documents of *all* registered users, matching the
        paper's "total number of documents" ``N`` in Definition 4.
    tokenizer:
        Text pipeline used for both fitting and transformation.
    """

    name = "profile"
    profile_corpus_sensitive = True

    def __init__(
        self,
        users: UserRegistry,
        tokenizer: Tokenizer = DEFAULT_TOKENIZER,
    ) -> None:
        self.users = users
        self.tokenizer = tokenizer
        self._model = TfIdfModel(tokenizer=tokenizer)
        self._vector_cache: dict[str, SparseVector] = {}
        self._fitted = False

    # -- model management ---------------------------------------------------

    def fit(self) -> "ProfileSimilarity":
        """(Re)fit the TF-IDF model on all registered profiles."""
        documents = [user.profile_text() for user in self.users]
        self._model.fit(documents)
        self._vector_cache.clear()
        self._fitted = True
        return self

    def refresh(self) -> None:
        """Refit after the registry or any profile changed."""
        self.fit()

    def invalidate_user(self, user_id: str) -> None:
        """Refit after one user's profile changed.

        A profile edit shifts the corpus-wide IDF weights (Definition
        4), so every cached vector is stale — a full refit is the only
        correct response.  Nothing happens when the model was never
        fitted yet.
        """
        if self._fitted:
            self.fit()

    def invalidate_user_ratings(self, user_id: str) -> None:
        """No-op: profile vectors do not depend on ratings."""

    @property
    def model(self) -> TfIdfModel:
        """The underlying TF-IDF model (fitted on first use)."""
        self._ensure_fitted()
        return self._model

    def _ensure_fitted(self) -> None:
        if not self._fitted:
            self.fit()

    # -- vectors ---------------------------------------------------------------

    def profile_vector(self, user_id: str) -> SparseVector:
        """TF-IDF vector of the user's flattened profile."""
        self._ensure_fitted()
        if user_id not in self._vector_cache:
            user = self.users.get(user_id)
            self._vector_cache[user_id] = self._model.transform(user.profile_text())
        return self._vector_cache[user_id]

    # -- similarity -------------------------------------------------------------

    def similarity(self, user_a: str, user_b: str) -> float:
        if user_a == user_b:
            return 1.0
        vector_a = self.profile_vector(user_a)
        vector_b = self.profile_vector(user_b)
        return vector_a.cosine(vector_b)
