"""Common interface of the user-to-user similarity measures.

Section V presents three ways to measure the similarity between two
users (ratings, profile text, semantic/ontology).  Each one implements
:class:`UserSimilarity`: a callable that maps a pair of user ids to a
score, plus an optional vectorised helper for computing all similarities
of a user against a set of candidates.  Implementations are free to
cache whatever intermediate state they need (TF-IDF vectors, mean
ratings, ...), which keeps peer search over large user sets tractable.
"""

from __future__ import annotations

import functools
from abc import ABC, abstractmethod
from typing import Iterable, Mapping

from ..exec import ExecutionBackend, chunk_evenly, resolve_backend

#: Per-process worker state for the process-backend batch path: the
#: measure and candidate pool shipped once per worker via the backend's
#: initializer instead of once per task.
_WORKER_STATE: dict[str, object] = {}


def _init_similarity_worker(
    measure: "UserSimilarity", candidates: list[str]
) -> None:
    _WORKER_STATE["measure"] = measure
    _WORKER_STATE["candidates"] = candidates


def _similarity_rows_task(user_chunk: list[str]) -> list[dict[str, float]]:
    measure = _WORKER_STATE["measure"]
    candidates = _WORKER_STATE["candidates"]
    return [measure.similarities(user_id, candidates) for user_id in user_chunk]


class UserSimilarity(ABC):
    """Abstract user-to-user similarity measure ``simU``.

    Subclasses document their score range; the peer-selection threshold
    ``δ`` of Definition 1 is interpreted against that range.
    """

    #: Human readable name used by reports and the CLI.
    name: str = "similarity"

    #: Whether a *profile* edit of one user can shift the scores of
    #: pairs not involving that user (e.g. TF-IDF: one profile changes
    #: the corpus-wide IDF weights).  The serving layer falls back to
    #: full invalidation on profile updates when this is set.
    profile_corpus_sensitive: bool = False

    @abstractmethod
    def similarity(self, user_a: str, user_b: str) -> float:
        """Return ``simU(user_a, user_b)``.

        Implementations must be symmetric; they return 0 when there is
        insufficient information to compare the two users (no co-rated
        items, empty profiles, ...).
        """

    def __call__(self, user_a: str, user_b: str) -> float:
        return self.similarity(user_a, user_b)

    def similarities(
        self, user_id: str, candidates: Iterable[str]
    ) -> dict[str, float]:
        """Similarity of ``user_id`` against every candidate.

        The default implementation simply loops; subclasses can override
        it when a batched computation is cheaper.
        """
        return {
            candidate: self.similarity(user_id, candidate)
            for candidate in candidates
            if candidate != user_id
        }

    def similarities_many(
        self,
        user_ids: Iterable[str],
        candidates: Iterable[str],
        backend: "ExecutionBackend | str | None" = None,
    ) -> dict[str, dict[str, float]]:
        """One :meth:`similarities` row per user, through a backend.

        The rows are computed independently, so they fan out on the
        execution backend: threads share this measure in place, while
        the process backend ships :meth:`picklable_measure` and the
        candidate pool to each worker once and chunks the users.  Row
        order follows ``user_ids``; scores are bit-identical across
        backends.
        """
        users = list(user_ids)
        candidate_list = list(candidates)
        backend = resolve_backend(backend)
        if backend.requires_pickling:
            chunks = chunk_evenly(users, max(1, backend.workers * 4))
            row_chunks = backend.map_items(
                _similarity_rows_task,
                chunks,
                initializer=_init_similarity_worker,
                initargs=(self.picklable_measure(), candidate_list),
            )
            rows = [row for chunk in row_chunks for row in chunk]
        else:
            rows = backend.map_items(
                functools.partial(self._similarities_for, candidate_list), users
            )
        return dict(zip(users, rows))

    def _similarities_for(
        self, candidates: list[str], user_id: str
    ) -> dict[str, float]:
        """Argument-flipped :meth:`similarities` (partial-friendly)."""
        return self.similarities(user_id, candidates)

    def picklable_measure(self) -> "UserSimilarity":
        """The measure to ship across a process boundary.

        Measures are plain data and return ``self``; decorators holding
        unpicklable state (locks, caches) override this to unwrap.
        Scores must be bit-identical to this measure's own.
        """
        return self

    def invalidate_user(self, user_id: str) -> None:
        """Drop any cached state about ``user_id``.

        Called by the serving layer after a rating or profile update so
        that subsequent scores reflect the new data.  The default is a
        no-op; measures that cache per-user state (means, vectors)
        override it.
        """

    def invalidate_user_ratings(self, user_id: str) -> None:
        """Drop cached state of ``user_id`` that depends on ratings.

        Called after a rating ingest.  The default delegates to
        :meth:`invalidate_user` (safe for rating-based measures);
        measures that ignore ratings entirely (profile text, ontology)
        override this as a no-op so a rating write does not trigger an
        expensive profile recomputation.
        """
        self.invalidate_user(user_id)

    def pairwise(self, user_ids: Iterable[str]) -> dict[tuple[str, str], float]:
        """Similarity for every unordered pair of ``user_ids``."""
        users = list(user_ids)
        scores: dict[tuple[str, str], float] = {}
        for index, user_a in enumerate(users):
            for user_b in users[index + 1 :]:
                scores[(user_a, user_b)] = self.similarity(user_a, user_b)
        return scores


class PrecomputedSimilarity(UserSimilarity):
    """A similarity backed by an explicit score table.

    Useful in tests, for injecting hand-crafted scenarios, and as the
    output representation of the MapReduce similarity job (Job 2).
    Missing pairs score ``default`` (0 by default).
    """

    name = "precomputed"

    def __init__(
        self,
        scores: Mapping[tuple[str, str], float],
        default: float = 0.0,
    ) -> None:
        self._scores: dict[tuple[str, str], float] = {}
        for (user_a, user_b), value in scores.items():
            self._scores[self._key(user_a, user_b)] = float(value)
        self._default = default

    @staticmethod
    def _key(user_a: str, user_b: str) -> tuple[str, str]:
        return (user_a, user_b) if user_a <= user_b else (user_b, user_a)

    def similarity(self, user_a: str, user_b: str) -> float:
        if user_a == user_b:
            return 1.0
        return self._scores.get(self._key(user_a, user_b), self._default)

    def set(self, user_a: str, user_b: str, value: float) -> None:
        """Store a similarity score for the unordered pair."""
        self._scores[self._key(user_a, user_b)] = float(value)

    def known_pairs(self) -> list[tuple[str, str]]:
        """All pairs with an explicit score."""
        return list(self._scores.keys())
