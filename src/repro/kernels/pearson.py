"""Packed Pearson kernels (Equation 2 over CSR rows).

Two entry points mirror the dict-path surfaces of
:class:`~repro.similarity.ratings_sim.PearsonRatingSimilarity`:

* :func:`pearson_pair` — one ``RS(u, u')`` score via a C-speed
  intersection of the two rows' interned key views;
* :func:`pearson_one_vs_many` — a batched row against many candidates
  through a **fused inverted-index sweep**: one walk over the user's
  rated items accumulates, for *every* co-rater at once, the overlap
  count, the numerator and both squared-deviation sums.  No per-pair
  set construction, no per-pair merge, no string hashing — the batch
  costs O(Σ_{i∈I(u)} |U(i)|) regardless of the candidate count.

Both are **bit-identical** to the dict oracle: packed rows are sorted
by ascending interned item id, interning follows the matrix's item
insertion order, and the oracle sums each pair's co-rated terms in
exactly that order — so every accumulator sees the same floats in the
same sequence (the sweep hands candidate ``v`` its terms while walking
``u``'s sorted row, which *is* ascending order over the common items).
"""

from __future__ import annotations

import math
import time
from typing import Iterable

from ..obs import is_enabled, observe_kernel
from .packed import PackedRatings


def overlap_counts(packed: PackedRatings, user_int: int) -> list[int]:
    """Co-rated item counts of one user against *every* user.

    One walk of the inverted index over the user's rated items; entry
    ``counts[v]`` is ``|I(u) ∩ I(v)|`` (and ``counts[user_int]`` the
    user's own row length).  Pure integer arithmetic — no float order
    concerns — and the packed replacement for the dict path's
    ``iter_raters`` walk.
    """
    counts = [0] * packed.num_users
    inv_users = packed.inv_users
    for item_int in packed.row_items[user_int]:
        for rater in inv_users[item_int]:
            counts[rater] += 1
    return counts


def _pair_score_ints(
    packed: PackedRatings,
    a_int: int,
    b_int: int,
    min_common_items: int,
    mean_over_common_only: bool,
) -> float:
    """Equation 2 for one interned pair (no self/unknown handling)."""
    map_a = packed.row_maps[a_int]
    map_b = packed.row_maps[b_int]
    common = map_a.keys() & map_b.keys()
    count = len(common)
    if count < min_common_items:
        return 0.0
    ordered = sorted(common)
    if mean_over_common_only:
        mean_a = sum(map_a[i] for i in ordered) / count
        mean_b = sum(map_b[i] for i in ordered) / count
    else:
        mean_a = packed.means[a_int]
        mean_b = packed.means[b_int]
    numerator = 0.0
    sum_sq_a = 0.0
    sum_sq_b = 0.0
    for item_int in ordered:
        deviation_a = map_a[item_int] - mean_a
        deviation_b = map_b[item_int] - mean_b
        numerator += deviation_a * deviation_b
        sum_sq_a += deviation_a * deviation_a
        sum_sq_b += deviation_b * deviation_b
    denominator = math.sqrt(sum_sq_a) * math.sqrt(sum_sq_b)
    if denominator == 0.0:
        return 0.0
    return numerator / denominator


def pearson_pair(
    packed: PackedRatings,
    user_a: str,
    user_b: str,
    min_common_items: int = 2,
    mean_over_common_only: bool = False,
) -> float:
    """``RS(user_a, user_b)`` over the packed rows.

    Matches the dict path exactly: self-pairs score 1, users unknown to
    the matrix score 0, pairs under ``min_common_items`` co-rated items
    score 0, zero-variance overlaps score 0.
    """
    if user_a == user_b:
        return 1.0
    packed.ensure_current()
    a_int = packed.user_index.get(user_a)
    b_int = packed.user_index.get(user_b)
    if a_int is None or b_int is None:
        return 0.0
    return _pair_score_ints(
        packed, a_int, b_int, min_common_items, mean_over_common_only
    )


def pearson_one_vs_many(
    packed: PackedRatings,
    user_id: str,
    candidates: Iterable[str],
    min_common_items: int = 2,
    mean_over_common_only: bool = False,
) -> dict[str, float]:
    """Batched ``RS(u, ·)`` against many candidates, packed.

    The paper's variant (full-row means) runs as one fused sweep over
    the inverted index; the ``mean_over_common_only`` variant needs the
    overlap known *before* any term can be centered, so it counts
    overlaps in one sweep and scores the qualifying pairs individually.
    Candidates equal to ``user_id`` are excluded, everyone else starts
    at 0.0 — the dict batch contract.

    Each call is timed into the default metrics registry as
    ``kernel_ms{kernel="pearson_one_vs_many"}``.
    """
    if not is_enabled():
        return _one_vs_many(
            packed, user_id, candidates, min_common_items, mean_over_common_only
        )
    started = time.perf_counter()
    try:
        return _one_vs_many(
            packed, user_id, candidates, min_common_items, mean_over_common_only
        )
    finally:
        observe_kernel("pearson_one_vs_many", started)


def _one_vs_many(
    packed: PackedRatings,
    user_id: str,
    candidates: Iterable[str],
    min_common_items: int,
    mean_over_common_only: bool,
) -> dict[str, float]:
    """The uninstrumented body of :func:`pearson_one_vs_many`."""
    scores = {candidate: 0.0 for candidate in candidates if candidate != user_id}
    if not scores:
        return scores
    packed.ensure_current()
    user_int = packed.user_index.get(user_id)
    if user_int is None:
        return scores
    user_index = packed.user_index
    if mean_over_common_only:
        counts = overlap_counts(packed, user_int)
        for candidate in scores:
            candidate_int = user_index.get(candidate)
            if (
                candidate_int is not None
                and counts[candidate_int] >= min_common_items
            ):
                scores[candidate] = _pair_score_ints(
                    packed, user_int, candidate_int, min_common_items, True
                )
        return scores
    num_users = packed.num_users
    counts = [0] * num_users
    numerators = [0.0] * num_users
    sums_sq_a = [0.0] * num_users
    sums_sq_b = [0.0] * num_users
    means = packed.means
    inv_users = packed.inv_users
    inv_values = packed.inv_values
    for item_int, deviation_a in zip(
        packed.row_items[user_int], packed.row_devs[user_int]
    ):
        deviation_a_sq = deviation_a * deviation_a
        for rater, value in zip(inv_users[item_int], inv_values[item_int]):
            deviation_b = value - means[rater]
            numerators[rater] += deviation_a * deviation_b
            sums_sq_a[rater] += deviation_a_sq
            sums_sq_b[rater] += deviation_b * deviation_b
            counts[rater] += 1
    sqrt = math.sqrt
    for candidate in scores:
        candidate_int = user_index.get(candidate)
        if candidate_int is None or counts[candidate_int] < min_common_items:
            continue
        denominator = sqrt(sums_sq_a[candidate_int]) * sqrt(
            sums_sq_b[candidate_int]
        )
        if denominator != 0.0:
            scores[candidate] = numerators[candidate_int] / denominator
    return scores
