"""Packed prediction kernels (Equation 1 over the inverted index).

:func:`predict_table_packed` is the layout-first replacement for
:func:`repro.core.relevance.predict_table` on the serving layer's
single-user path: instead of copying a ``{user: rating}`` dict per
candidate item (``matrix.users_of``) and hashing peer-id *strings*
against it, the kernel stamps the item's raters into a reusable
per-user scratch array and walks the peer list as interned ints.

Two variants avoid ever *decoding* the candidate set:

* :func:`predict_row_packed` — the full unrated row of one user, with
  candidates enumerated directly in intern space (no string candidate
  list in, one decode per emitted score out).  This is the serving
  layer's relevance-row kernel; it removed a latent double decode where
  candidate ids were rendered to strings only for the prediction call
  to re-intern them.
* :func:`predict_topk_packed` — the same row, emitted straight into a
  bounded heap of size ``k`` instead of materialising the full score
  dict; the heap orders by the pinned score-desc/item-asc tie-break, so
  its output equals ``rank_items(predict_row_packed(...), k)``.

Each kernel picks between two inner-loop strategies per call (see
:func:`_probe_beats_stamp`): stamping the item's raters into a scratch
array, or probing each peer's own row map.  Stamping amortises when the
peer set is huge; probing is immune to item popularity, which matters
once a bounded ``max_peers`` peer set meets a Zipf-headed catalogue at
10⁵+ users.

Bit-identity with the dict path holds because the accumulation order is
the *peer* order (the dict path iterates ``peer_similarities`` and
probes each peer's rating; so do the kernels), and stamping/probing only
changes how "did this peer rate it?" is answered, not which floats are
summed.
"""

from __future__ import annotations

import heapq
import time
from typing import Mapping, Sequence

from ..obs import is_enabled, observe_kernel
from .packed import PackedRatings


def predict_table_packed(
    packed: PackedRatings,
    user_id: str,
    peer_similarities: Mapping[str, float],
    candidate_items: Sequence[str],
    default_score: float | None = None,
) -> dict[str, float]:
    """Equation 1 over many candidate items for a fixed peer set, packed.

    Same contract as :func:`repro.core.relevance.predict_table`: items
    the user already rated keep their actual rating, items whose
    prediction is undefined (no peer rated them, or zero similarity
    mass) are omitted unless ``default_score`` is given.

    Each call is timed into the default metrics registry as
    ``kernel_ms{kernel="predict_table_packed"}``.
    """
    if not is_enabled():
        return _predict_table(
            packed, user_id, peer_similarities, candidate_items, default_score
        )
    started = time.perf_counter()
    try:
        return _predict_table(
            packed, user_id, peer_similarities, candidate_items, default_score
        )
    finally:
        observe_kernel("predict_table_packed", started)


def _predict_table(
    packed: PackedRatings,
    user_id: str,
    peer_similarities: Mapping[str, float],
    candidate_items: Sequence[str],
    default_score: float | None,
) -> dict[str, float]:
    """The uninstrumented body of :func:`predict_table_packed`."""
    packed.ensure_current()
    user_int = packed.user_index.get(user_id)
    own_ratings: dict[int, float] = (
        packed.row_maps[user_int] if user_int is not None else {}
    )
    # Resolve the peers to ints once, keeping the mapping's iteration
    # order — that order is the dict path's accumulation order.  Peers
    # unknown to the matrix never rated anything, so dropping them up
    # front skips probes the dict path would answer with None anyway.
    user_index = packed.user_index
    peer_ints: list[tuple[int, float]] = []
    for peer_id, similarity in peer_similarities.items():
        peer_int = user_index.get(peer_id)
        if peer_int is not None:
            peer_ints.append((peer_int, similarity))
    item_index = packed.item_index
    probe = _probe_beats_stamp(packed, len(peer_ints), len(candidate_items))
    if probe:
        row_maps = packed.row_maps
        peer_rows = [(sim, row_maps[peer_int]) for peer_int, sim in peer_ints]
    else:
        inv_users = packed.inv_users
        inv_values = packed.inv_values
        # Stamp scratch, allocated per call: the serving layer runs batch
        # requests as concurrent readers (thread backend), so this state
        # must not be shared — a second caller's token would invalidate a
        # first caller's stamps mid-item.  Per *item* the token trick
        # still avoids O(users) clearing.
        stamp = [0] * packed.num_users
        value = [0.0] * packed.num_users
    token = 0
    predictions: dict[str, float] = {}
    for item_id in candidate_items:
        item_int = item_index.get(item_id)
        if item_int is not None:
            existing = own_ratings.get(item_int)
            if existing is not None:
                predictions[item_id] = existing
                continue
            numerator = 0.0
            denominator = 0.0
            if probe:
                for similarity, peer_row in peer_rows:
                    rating = peer_row.get(item_int)
                    if rating is not None:
                        numerator += similarity * rating
                        denominator += similarity
            else:
                token += 1
                raters = inv_users[item_int]
                ratings = inv_values[item_int]
                for position, rater in enumerate(raters):
                    stamp[rater] = token
                    value[rater] = ratings[position]
                for peer_int, similarity in peer_ints:
                    if stamp[peer_int] == token:
                        numerator += similarity * value[peer_int]
                        denominator += similarity
            if denominator != 0.0:
                predictions[item_id] = numerator / denominator
                continue
        # Unknown item, or an undefined prediction.
        if default_score is not None:
            predictions[item_id] = default_score
    return predictions


def _probe_beats_stamp(
    packed: PackedRatings, num_peers: int, num_candidates: int
) -> bool:
    """Pick the Equation-1 inner-loop strategy for one prediction call.

    Two bit-identical ways to answer "did this peer rate this item?"
    exist (both accumulate in peer order, so the float sums match):

    * **stamp** — mark every rater of the item in a scratch array,
      then read the peers' marks: O(Σ|U(i)|) stamping over the
      candidate items plus O(peers) reads per item.  Wins when the
      peer set is a large fraction of the user base.
    * **probe** — look each item up in every peer's own (int-keyed)
      row map: O(peers) dict probes per item, independent of item
      popularity.  Wins when a bounded peer set (``max_peers``) meets
      a Zipf-headed catalogue, where stamping degenerates to touching
      nearly every rating in the matrix per row.

    The stamping total over a full row is about ``num_ratings``; a
    probe costs roughly two array reads.  Hence: probe when
    ``2 · peers · candidates < num_ratings``.
    """
    return 2 * num_peers * num_candidates < packed._num_ratings


def _resolve_peers(
    packed: PackedRatings, peer_similarities: Mapping[str, float]
) -> list[tuple[int, float]]:
    """Peer ids interned once, preserving the mapping's iteration order.

    That order is the dict path's accumulation order; peers unknown to
    the matrix never rated anything, so dropping them up front skips
    probes the dict path would answer with ``None`` anyway.
    """
    user_index = packed.user_index
    peer_ints: list[tuple[int, float]] = []
    for peer_id, similarity in peer_similarities.items():
        peer_int = user_index.get(peer_id)
        if peer_int is not None:
            peer_ints.append((peer_int, similarity))
    return peer_ints


def predict_row_packed(
    packed: PackedRatings,
    user_id: str,
    peer_similarities: Mapping[str, float],
    default_score: float | None = None,
) -> dict[str, float]:
    """Equation 1 over *every* item the user has not rated, packed.

    Equivalent to ``predict_table_packed(packed, user_id,
    peer_similarities, matrix.unrated_items(user_id,
    matrix.item_ids()))`` — the serving layer's relevance-row shape —
    but the candidate set is enumerated directly in intern space, so no
    string candidate list is built and each emitted item id is decoded
    exactly once.  Timed as ``kernel_ms{kernel="predict_row_packed"}``.
    """
    started = time.perf_counter()
    packed.ensure_current()
    user_int = packed.user_index.get(user_id)
    own_ratings: dict[int, float] = (
        packed.row_maps[user_int] if user_int is not None else {}
    )
    peer_ints = _resolve_peers(packed, peer_similarities)
    item_ids = packed.item_ids
    predictions: dict[str, float] = {}
    if _probe_beats_stamp(packed, len(peer_ints), packed.num_items):
        row_maps = packed.row_maps
        peer_rows = [(sim, row_maps[peer_int]) for peer_int, sim in peer_ints]
        for item_int in range(packed.num_items):
            if item_int in own_ratings:
                continue
            numerator = 0.0
            denominator = 0.0
            for similarity, peer_row in peer_rows:
                rating = peer_row.get(item_int)
                if rating is not None:
                    numerator += similarity * rating
                    denominator += similarity
            if denominator != 0.0:
                predictions[item_ids[item_int]] = numerator / denominator
            elif default_score is not None:
                predictions[item_ids[item_int]] = default_score
        observe_kernel("predict_row_packed", started)
        return predictions
    inv_users = packed.inv_users
    inv_values = packed.inv_values
    stamp = [0] * packed.num_users
    value = [0.0] * packed.num_users
    token = 0
    for item_int in range(packed.num_items):
        if item_int in own_ratings:
            continue
        token += 1
        raters = inv_users[item_int]
        ratings = inv_values[item_int]
        for position, rater in enumerate(raters):
            stamp[rater] = token
            value[rater] = ratings[position]
        numerator = 0.0
        denominator = 0.0
        for peer_int, similarity in peer_ints:
            if stamp[peer_int] == token:
                numerator += similarity * value[peer_int]
                denominator += similarity
        if denominator != 0.0:
            predictions[item_ids[item_int]] = numerator / denominator
        elif default_score is not None:
            predictions[item_ids[item_int]] = default_score
    observe_kernel("predict_row_packed", started)
    return predictions


class _HeapEntry:
    """A candidate in the bounded top-k heap.

    ``heapq`` keeps the *smallest* entry at the root, so "smallest"
    must mean "worst under the pinned ranking": lower score first, and
    among equal scores the lexicographically larger item id (ascending
    item id wins ties in the ranking, so the larger id is worse).
    """

    __slots__ = ("score", "item_id")

    def __init__(self, score: float, item_id: str) -> None:
        self.score = score
        self.item_id = item_id

    def __lt__(self, other: "_HeapEntry") -> bool:
        if self.score != other.score:
            return self.score < other.score
        return self.item_id > other.item_id


def predict_topk_packed(
    packed: PackedRatings,
    user_id: str,
    peer_similarities: Mapping[str, float],
    k: int,
    default_score: float | None = None,
) -> list[tuple[str, float]]:
    """Top-``k`` of the user's unrated row, emitted straight into a heap.

    Returns ``(item_id, score)`` pairs in ranking order — exactly
    ``[(s.item_id, s.score) for s in
    rank_items(predict_row_packed(...), k)]`` — without materialising
    the full score dict: each candidate either displaces the heap root
    or is dropped on the spot.  Item ids are unique, so the pinned
    (score desc, item asc) ranking is a total order and heap selection
    is trivially equal to sort-then-slice, ties included.  Timed as
    ``kernel_ms{kernel="predict_topk_packed"}``.
    """
    started = time.perf_counter()
    packed.ensure_current()
    if k <= 0:
        observe_kernel("predict_topk_packed", started)
        return []
    user_int = packed.user_index.get(user_id)
    own_ratings: dict[int, float] = (
        packed.row_maps[user_int] if user_int is not None else {}
    )
    peer_ints = _resolve_peers(packed, peer_similarities)
    item_ids = packed.item_ids
    probe = _probe_beats_stamp(packed, len(peer_ints), packed.num_items)
    if probe:
        row_maps = packed.row_maps
        peer_rows = [(sim, row_maps[peer_int]) for peer_int, sim in peer_ints]
    else:
        inv_users = packed.inv_users
        inv_values = packed.inv_values
        stamp = [0] * packed.num_users
        value = [0.0] * packed.num_users
    token = 0
    heap: list[_HeapEntry] = []
    for item_int in range(packed.num_items):
        if item_int in own_ratings:
            continue
        numerator = 0.0
        denominator = 0.0
        if probe:
            for similarity, peer_row in peer_rows:
                rating = peer_row.get(item_int)
                if rating is not None:
                    numerator += similarity * rating
                    denominator += similarity
        else:
            token += 1
            raters = inv_users[item_int]
            ratings = inv_values[item_int]
            for position, rater in enumerate(raters):
                stamp[rater] = token
                value[rater] = ratings[position]
            for peer_int, similarity in peer_ints:
                if stamp[peer_int] == token:
                    numerator += similarity * value[peer_int]
                    denominator += similarity
        if denominator != 0.0:
            score = numerator / denominator
        elif default_score is not None:
            score = default_score
        else:
            continue
        if len(heap) < k:
            heapq.heappush(heap, _HeapEntry(score, item_ids[item_int]))
        else:
            root = heap[0]
            item_id = item_ids[item_int]
            if score > root.score or (
                score == root.score and item_id < root.item_id
            ):
                heapq.heapreplace(heap, _HeapEntry(score, item_id))
    ranked = sorted(heap, key=lambda entry: (-entry.score, entry.item_id))
    observe_kernel("predict_topk_packed", started)
    return [(entry.item_id, entry.score) for entry in ranked]
