"""Packed prediction-table kernel (Equation 1 over the inverted index).

:func:`predict_table_packed` is the layout-first replacement for
:func:`repro.core.relevance.predict_table` on the serving layer's
single-user path: instead of copying a ``{user: rating}`` dict per
candidate item (``matrix.users_of``) and hashing peer-id *strings*
against it, the kernel stamps the item's raters into a reusable
per-user scratch array and walks the peer list as interned ints.

Bit-identity with the dict path holds because the accumulation order is
the *peer* order (the dict path iterates ``peer_similarities`` and
probes each peer's rating; so does the kernel), and stamping only
changes how the probe is answered, not which floats are summed.
"""

from __future__ import annotations

import time
from typing import Mapping, Sequence

from ..obs import is_enabled, observe_kernel
from .packed import PackedRatings


def predict_table_packed(
    packed: PackedRatings,
    user_id: str,
    peer_similarities: Mapping[str, float],
    candidate_items: Sequence[str],
    default_score: float | None = None,
) -> dict[str, float]:
    """Equation 1 over many candidate items for a fixed peer set, packed.

    Same contract as :func:`repro.core.relevance.predict_table`: items
    the user already rated keep their actual rating, items whose
    prediction is undefined (no peer rated them, or zero similarity
    mass) are omitted unless ``default_score`` is given.

    Each call is timed into the default metrics registry as
    ``kernel_ms{kernel="predict_table_packed"}``.
    """
    if not is_enabled():
        return _predict_table(
            packed, user_id, peer_similarities, candidate_items, default_score
        )
    started = time.perf_counter()
    try:
        return _predict_table(
            packed, user_id, peer_similarities, candidate_items, default_score
        )
    finally:
        observe_kernel("predict_table_packed", started)


def _predict_table(
    packed: PackedRatings,
    user_id: str,
    peer_similarities: Mapping[str, float],
    candidate_items: Sequence[str],
    default_score: float | None,
) -> dict[str, float]:
    """The uninstrumented body of :func:`predict_table_packed`."""
    packed.ensure_current()
    user_int = packed.user_index.get(user_id)
    own_ratings: dict[int, float] = (
        packed.row_maps[user_int] if user_int is not None else {}
    )
    # Resolve the peers to ints once, keeping the mapping's iteration
    # order — that order is the dict path's accumulation order.  Peers
    # unknown to the matrix never rated anything, so dropping them up
    # front skips probes the dict path would answer with None anyway.
    user_index = packed.user_index
    peer_ints: list[tuple[int, float]] = []
    for peer_id, similarity in peer_similarities.items():
        peer_int = user_index.get(peer_id)
        if peer_int is not None:
            peer_ints.append((peer_int, similarity))
    item_index = packed.item_index
    inv_users = packed.inv_users
    inv_values = packed.inv_values
    # Stamp scratch, allocated per call: the serving layer runs batch
    # requests as concurrent readers (thread backend), so this state
    # must not be shared — a second caller's token would invalidate a
    # first caller's stamps mid-item.  Per *item* the token trick still
    # avoids O(users) clearing.
    stamp = [0] * packed.num_users
    value = [0.0] * packed.num_users
    token = 0
    predictions: dict[str, float] = {}
    for item_id in candidate_items:
        item_int = item_index.get(item_id)
        if item_int is not None:
            existing = own_ratings.get(item_int)
            if existing is not None:
                predictions[item_id] = existing
                continue
            token += 1
            raters = inv_users[item_int]
            ratings = inv_values[item_int]
            for position, rater in enumerate(raters):
                stamp[rater] = token
                value[rater] = ratings[position]
            numerator = 0.0
            denominator = 0.0
            for peer_int, similarity in peer_ints:
                if stamp[peer_int] == token:
                    numerator += similarity * value[peer_int]
                    denominator += similarity
            if denominator != 0.0:
                predictions[item_id] = numerator / denominator
                continue
        # Unknown item, or an undefined prediction.
        if default_score is not None:
            predictions[item_id] = default_score
    return predictions
