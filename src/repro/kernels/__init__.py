"""``repro.kernels`` — packed CSR similarity / prediction kernels.

The layout-first compute layer: :class:`PackedRatings` mirrors a
:class:`~repro.data.ratings.RatingMatrix` as integer-interned,
contiguous CSR arrays (sorted rows, precomputed means and centered
deviations, a packed inverted index), and the kernel functions run the
paper's hot equations over that layout —

* :func:`pearson_one_vs_many` / :func:`pearson_pair` — Equation 2 via
  sorted-merge intersection over int ids;
* :func:`overlap_counts` — candidate co-rating counts through the
  packed inverted index;
* :func:`predict_table_packed` / :func:`predict_row_packed` /
  :func:`predict_topk_packed` — Equation 1 prediction tables (full,
  per-row, and bounded-heap top-k) for the recommend paths;
* :func:`items_unrated_by_all_packed` /
  :func:`candidate_ints_unrated_by_all` — the group candidate scan
  (Definition 2) as a set subtract in intern space;
* :meth:`PackedRatings.save` / :meth:`PackedRatings.open_mmap` /
  :func:`attach_spill` — the mmap'd on-disk spill of the CSR arrays
  (:mod:`repro.kernels.spill`), letting pool workers bootstrap by
  opening files instead of receiving a full state ship.

Everything is pure stdlib and **bit-identical** to the dict-of-dicts
oracle paths (same summation order within every pair); the
``kernel="packed"|"dict"`` knob on
:class:`~repro.config.RecommenderConfig` selects between them, with
``packed`` the default and ``dict`` retained as the oracle.
"""

from __future__ import annotations

from .packed import PackedRatings, attach_spill, get_packed
from .pearson import overlap_counts, pearson_one_vs_many, pearson_pair
from .relevance import predict_row_packed, predict_table_packed, predict_topk_packed
from .scan import candidate_ints_unrated_by_all, items_unrated_by_all_packed
from .spill import SPILL_MANIFEST_NAME, SpillError

#: Kernel implementations selectable via ``RecommenderConfig.kernel``.
KERNEL_NAMES: tuple[str, ...] = ("packed", "dict")

#: The kernel used when nothing is configured.
DEFAULT_KERNEL: str = "packed"

__all__ = [
    "DEFAULT_KERNEL",
    "KERNEL_NAMES",
    "PackedRatings",
    "SPILL_MANIFEST_NAME",
    "SpillError",
    "attach_spill",
    "candidate_ints_unrated_by_all",
    "get_packed",
    "items_unrated_by_all_packed",
    "overlap_counts",
    "pearson_one_vs_many",
    "pearson_pair",
    "predict_row_packed",
    "predict_table_packed",
    "predict_topk_packed",
]
