"""``repro.kernels`` — packed CSR similarity / prediction kernels.

The layout-first compute layer: :class:`PackedRatings` mirrors a
:class:`~repro.data.ratings.RatingMatrix` as integer-interned,
contiguous CSR arrays (sorted rows, precomputed means and centered
deviations, a packed inverted index), and the kernel functions run the
paper's hot equations over that layout —

* :func:`pearson_one_vs_many` / :func:`pearson_pair` — Equation 2 via
  sorted-merge intersection over int ids;
* :func:`overlap_counts` — candidate co-rating counts through the
  packed inverted index;
* :func:`predict_table_packed` — Equation 1 prediction tables for the
  single-user recommend path.

Everything is pure stdlib and **bit-identical** to the dict-of-dicts
oracle paths (same summation order within every pair); the
``kernel="packed"|"dict"`` knob on
:class:`~repro.config.RecommenderConfig` selects between them, with
``packed`` the default and ``dict`` retained as the oracle.
"""

from __future__ import annotations

from .packed import PackedRatings, get_packed
from .pearson import overlap_counts, pearson_one_vs_many, pearson_pair
from .relevance import predict_table_packed

#: Kernel implementations selectable via ``RecommenderConfig.kernel``.
KERNEL_NAMES: tuple[str, ...] = ("packed", "dict")

#: The kernel used when nothing is configured.
DEFAULT_KERNEL: str = "packed"

__all__ = [
    "DEFAULT_KERNEL",
    "KERNEL_NAMES",
    "PackedRatings",
    "get_packed",
    "overlap_counts",
    "pearson_one_vs_many",
    "pearson_pair",
    "predict_table_packed",
]
