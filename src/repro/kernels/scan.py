"""Packed candidate scan (Definition 2's group-unrated item set).

:func:`items_unrated_by_all_packed` is the layout-first replacement for
:meth:`repro.data.ratings.RatingMatrix.items_unrated_by_all` on the
group serving path: instead of probing ``has_rating`` with string keys
per (member, item) pair, the kernel stamps every member's packed row
into a byte mask and emits the unset positions — a set subtract in
intern space, decoded to item-id strings exactly once at the boundary.

Bit-identity with the dict path holds because the packed intern order
*is* the matrix item-insertion order (see
:class:`~repro.kernels.packed.PackedRatings`), which is the order
``items_unrated_by_all`` pins as its contract.
"""

from __future__ import annotations

import time
from array import array
from typing import Iterable

from ..obs import observe_kernel
from .packed import PackedRatings


def candidate_ints_unrated_by_all(
    packed: PackedRatings, member_ids: Iterable[str]
) -> array:
    """Item ints (ascending = intern order) no listed member has rated.

    Members unknown to the matrix rated nothing and are skipped, which
    matches the dict path answering every ``has_rating`` probe for them
    with ``False``.  Each call is timed into the default registry as
    ``kernel_ms{kernel="candidate_scan"}``.
    """
    packed.ensure_current()
    started = time.perf_counter()
    rated = bytearray(packed.num_items)
    user_index = packed.user_index
    row_items = packed.row_items
    for member_id in member_ids:
        member_int = user_index.get(member_id)
        if member_int is None:
            continue
        for item_int in row_items[member_int]:
            rated[item_int] = 1
    result = array(
        "l", (item_int for item_int, hit in enumerate(rated) if not hit)
    )
    observe_kernel("candidate_scan", started)
    return result


def items_unrated_by_all_packed(
    packed: PackedRatings, member_ids: Iterable[str]
) -> list[str]:
    """Decoded candidate scan, bit-identical to the dict oracle.

    Returns exactly ``packed.matrix.items_unrated_by_all(member_ids)``
    — same ids, same (item-insertion) order — computed in intern space
    and decoded once.
    """
    ints = candidate_ints_unrated_by_all(packed, member_ids)
    item_ids = packed.item_ids
    return [item_ids[item_int] for item_int in ints]
