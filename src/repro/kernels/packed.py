"""Packed, integer-interned CSR view of a :class:`RatingMatrix`.

The dict-of-dicts :class:`~repro.data.ratings.RatingMatrix` is the right
shape for mutation and for the paper-faithful oracle code, and the wrong
shape for the similarity/prediction inner loops: every pair score hashes
strings, builds throwaway sets and recomputes means.  This module packs
the same data into flat, contiguous storage once and lets the kernels in
:mod:`repro.kernels.pearson` / :mod:`repro.kernels.relevance` run over
integers:

* **interning tables** — user and item ids are mapped to dense ints in
  the matrix's *insertion order* (``matrix.user_ids()`` /
  ``matrix.item_ids()``), so the ascending-int order of a packed row is
  exactly the canonical co-rated summation order the dict oracle uses
  (see :class:`~repro.similarity.ratings_sim.PearsonRatingSimilarity`);
* **CSR rows** — per user, an ``array('l')`` of item ints sorted
  ascending with parallel ``array('d')`` arrays of raw ratings and of
  centered deviations (``value - μ_u``), plus the precomputed per-user
  mean;
* **an inverted index** — per item, parallel arrays of the rater ints
  and their raw ratings, powering candidate overlap counting and the
  prediction-table kernel without per-item dict copies.

Packing is cheap (one pass over the ratings) but not free, so packed
views are shared per matrix (:func:`get_packed`) and kept current
incrementally: the serving layer marks users dirty as it mutates the
matrix (:meth:`PackedRatings.mark_dirty`) and the next kernel call
repacks only those rows (:meth:`PackedRatings.ensure_current`).  Any
mutation the packed view was *not* told about — a removal, or a version
move with no dirty marks — falls back to a full rebuild, so results
stay correct (just slower) for out-of-band mutation patterns.

**Contract** (same as the Pearson mean cache): callers that mutate the
matrix directly must call the owning measure's ``invalidate_user`` (or
:meth:`PackedRatings.mark_dirty`) for every touched user before the
next kernel call.  The serving layer's ``ingest_rating`` /
``update_profile`` paths do this; the one unsupported pattern is
overwriting a rating of user A directly while only marking user B.
"""

from __future__ import annotations

import threading
import time
import weakref
from array import array
from itertools import islice

from ..data.ratings import RatingMatrix
from ..obs import get_registry, is_enabled


def _observe_repack(kind: str, started: float) -> None:
    """Record one hot-path repack into the default metrics registry.

    ``packed_repacks{kind=full|incremental}`` counts the events and
    ``repack_ms{kind=...}`` times them; the constructor's initial build
    is deliberately not counted — it is a build, not a re-pack.
    """
    if not is_enabled():
        return
    registry = get_registry()
    registry.observe(
        "repack_ms", (time.perf_counter() - started) * 1000.0, kind=kind
    )
    registry.inc("packed_repacks", kind=kind)

#: Shared packed views, one per live matrix (keyed by matrix identity).
#: Both sides are weak — the value holds the matrix strongly, so a
#: strong value reference here would pin the entry forever.  Consumers
#: (the similarity measure, the serving layer) hold the view strongly
#: for as long as they need it.
_REGISTRY: "weakref.WeakKeyDictionary[RatingMatrix, weakref.ref[PackedRatings]]" = (
    weakref.WeakKeyDictionary()
)


def get_packed(matrix: RatingMatrix) -> "PackedRatings":
    """The shared :class:`PackedRatings` view of ``matrix``.

    Views are cached per matrix *identity* (weakly, so a dropped matrix
    frees its packed arrays): the similarity measure, the neighbour
    index and the serving layer all read — and dirty-mark — the same
    packed state.
    """
    ref = _REGISTRY.get(matrix)
    packed = ref() if ref is not None else None
    if packed is None:
        packed = PackedRatings(matrix)
        _REGISTRY[matrix] = weakref.ref(packed)
    return packed


def attach_spill(matrix: RatingMatrix, directory) -> "PackedRatings":
    """Bind ``matrix``'s shared packed view to the spill at ``directory``.

    Tries :meth:`PackedRatings.open_mmap` and registers the mmap-backed
    view as the matrix's shared view, so every later
    :func:`get_packed` caller (the similarity measure, the serving
    layer) reads the mapped arrays.  Any :class:`SpillError` or OS
    failure falls back to the ordinary in-memory rebuild recipe —
    correctness never depends on a spill being present.  The outcome is
    counted as ``packed_spill_opens{outcome="mmap"|"fallback"}``.
    """
    from .spill import SpillError

    try:
        packed = PackedRatings.open_mmap(directory, matrix)
        outcome = "mmap"
    except (SpillError, OSError):
        packed = get_packed(matrix)
        outcome = "fallback"
    else:
        _REGISTRY[matrix] = weakref.ref(packed)
    if is_enabled():
        get_registry().inc("packed_spill_opens", outcome=outcome)
    return packed


class PackedRatings:
    """Flat CSR mirror of one :class:`RatingMatrix` (see module docs).

    All attributes are parallel per-int structures: ``row_items[u]``,
    ``row_values[u]``, ``row_devs[u]`` and ``row_maps[u]`` (an
    int-keyed dict for O(1) probes and C-speed key intersections)
    describe user int ``u``; ``inv_users[i]`` / ``inv_values[i]``
    describe item int ``i``.  Treat them as read-only outside this
    module; mutate the underlying matrix and call :meth:`mark_dirty` /
    :meth:`ensure_current` instead.
    """

    def __init__(self, matrix: RatingMatrix) -> None:
        self.matrix = matrix
        self._dirty: set[str] = set()
        self._stale = True  # force the initial full build
        self._spill_backed = False
        self._spill_dir: str | None = None
        # Serialises repacks: batch serving runs kernel calls as
        # concurrent readers, and two threads racing ensure_current()
        # after a mutation would both extend the interning tables.
        # Reentrant because the locked ensure_current/_repack_dirty
        # paths escalate to rebuild(), which locks on its own behalf
        # for direct callers.
        self._repack_lock = threading.RLock()
        self.rebuild()

    # -- construction --------------------------------------------------------

    def rebuild(self) -> None:
        """Re-derive every packed structure from the current matrix."""
        with self._repack_lock:
            self._rebuild()

    def _rebuild(self) -> None:
        matrix = self.matrix
        self.user_ids: list[str] = matrix.user_ids()
        self.user_index: dict[str, int] = {
            user_id: index for index, user_id in enumerate(self.user_ids)
        }
        self.item_ids: list[str] = matrix.item_ids()
        self.item_index: dict[str, int] = {
            item_id: index for index, item_id in enumerate(self.item_ids)
        }
        self.row_items: list[array] = []
        self.row_values: list[array] = []
        self.row_devs: list[array] = []
        self.row_maps: list[dict[int, float]] = []
        self.means: list[float] = []
        for user_id in self.user_ids:
            self._append_row(user_id)
        self.inv_users: list[array] = [array("l") for _ in self.item_ids]
        self.inv_values: list[array] = [array("d") for _ in self.item_ids]
        for user_int, items in enumerate(self.row_items):
            values = self.row_values[user_int]
            for position, item_int in enumerate(items):
                self.inv_users[item_int].append(user_int)
                self.inv_values[item_int].append(values[position])
        self._num_ratings = matrix.num_ratings
        self._version = matrix.version
        self._removals = matrix.removals
        self._dirty.clear()
        self._stale = False
        # A full rebuild always yields ordinary in-memory arrays, so a
        # spill-backed view that rebuilt is no longer mmap-backed.
        self._spill_backed = False

    def _packed_row(self, user_id: str) -> tuple[array, array, array, float]:
        """One user's row as (items, values, devs, mean), sorted by item int.

        The mean (and hence every deviation) is accumulated in the
        user's *row insertion order* — the identical operation sequence
        :meth:`RatingMatrix.mean_rating` performs — so packed means and
        deviations are bit-equal to what the dict oracle computes.
        """
        row = self.matrix.items_of(user_id)
        mean = sum(row.values()) / len(row)
        item_index = self.item_index
        pairs = sorted((item_index[item_id], value) for item_id, value in row.items())
        items = array("l", (pair[0] for pair in pairs))
        values = array("d", (pair[1] for pair in pairs))
        devs = array("d", (pair[1] - mean for pair in pairs))
        return items, values, devs, mean

    def _append_row(self, user_id: str) -> None:
        items, values, devs, mean = self._packed_row(user_id)
        self.row_items.append(items)
        self.row_values.append(values)
        self.row_devs.append(devs)
        self.row_maps.append(dict(zip(items, values)))
        self.means.append(mean)

    # -- dirtiness -----------------------------------------------------------

    @property
    def num_users(self) -> int:
        """Number of interned users."""
        return len(self.user_ids)

    @property
    def num_items(self) -> int:
        """Number of interned items."""
        return len(self.item_ids)

    def mark_dirty(self, user_id: str) -> None:
        """Record that ``user_id``'s ratings changed since the last repack."""
        with self._repack_lock:
            self._dirty.add(user_id)

    def mark_all_dirty(self) -> None:
        """Force a full rebuild at the next :meth:`ensure_current`."""
        with self._repack_lock:
            self._stale = True

    def ensure_current(self) -> None:
        """Bring the packed state up to the matrix, as cheaply as possible.

        In sync (the common case) this is two int compares.  With only
        dirty-marked additive mutations outstanding it reparses exactly
        the dirty rows (plus interning-table extensions for brand-new
        users/items).  Anything else — a removal, or a version move the
        packed view was never told about — triggers :meth:`rebuild`.

        Thread-safe: the serving layer's batch paths call the kernels
        from concurrent reader threads, so the staleness check and the
        repack run under one lock — at most the first caller mutates,
        the rest re-check and fall through.
        """
        matrix = self.matrix
        with self._repack_lock:
            if not self._stale and matrix.version == self._version:
                # Spurious marks (e.g. a profile-only invalidation):
                # the rows already match the matrix.
                if self._dirty:
                    self._dirty.clear()
                return
            if (
                self._stale
                or matrix.removals != self._removals
                or not self._dirty
            ):
                started = time.perf_counter()
                self.rebuild()
                _observe_repack("full", started)
                return
            if self._spill_backed:
                # Mutating an mmap-backed view: downgrade to writable
                # in-memory arrays first, then repack incrementally as
                # usual.  The spill on disk is untouched (and now
                # stale); re-save to refresh it.
                self._materialize()
            started = time.perf_counter()
            self._repack_dirty()
            _observe_repack("incremental", started)

    def _materialize(self) -> None:
        """Copy every mmap-backed structure into writable arrays.

        The "dirty-repack downgrade" of a spill-backed view: after this
        the instance is indistinguishable from one built in memory.
        Timed as ``repack_ms{kind="downgrade"}``.
        """
        started = time.perf_counter()
        self.row_items = [array("l", row) for row in self.row_items]
        self.row_values = [array("d", row) for row in self.row_values]
        self.row_devs = [array("d", row) for row in self.row_devs]
        self.row_maps = [
            dict(zip(items, values))
            for items, values in zip(self.row_items, self.row_values)
        ]
        self.means = list(self.means)
        self.inv_users = [array("l", row) for row in self.inv_users]
        self.inv_values = [array("d", row) for row in self.inv_values]
        self._spill_backed = False
        _observe_repack("downgrade", started)

    def _repack_dirty(self) -> None:
        matrix = self.matrix
        # New items/users append to the matrix dicts (no removals
        # happened, per the caller's check), so the interning tables
        # extend from a slice — insertion order, hence canonical
        # summation order, is preserved.
        for item_id in islice(matrix.iter_item_ids(), len(self.item_ids), None):
            self.item_index[item_id] = len(self.item_ids)
            self.item_ids.append(item_id)
            self.inv_users.append(array("l"))
            self.inv_values.append(array("d"))
        for user_id in islice(matrix.iter_user_ids(), len(self.user_ids), None):
            self.user_index[user_id] = len(self.user_ids)
            self.user_ids.append(user_id)
            self.row_items.append(array("l"))
            self.row_values.append(array("d"))
            self.row_devs.append(array("d"))
            self.row_maps.append({})
            self.means.append(0.0)
            self._dirty.add(user_id)
        ratings_delta = 0
        for user_id in self._dirty:
            user_int = self.user_index.get(user_id)
            if user_int is None:
                # Marked but never rated anything — nothing to pack.
                continue
            if not matrix.items_of(user_id):
                # An interned user lost their whole row; only remove()
                # can do that and it forces a full rebuild upstream,
                # but guard against it anyway.
                self.rebuild()
                return
            ratings_delta += self._repack_user(user_int, user_id)
        self._num_ratings += ratings_delta
        if self._num_ratings != matrix.num_ratings:
            # More mutated than was marked dirty; start over from the
            # matrix rather than serve a stale row.
            self.rebuild()
            return
        self._version = matrix.version
        self._dirty.clear()

    def _repack_user(self, user_int: int, user_id: str) -> int:
        """Repack one row and patch the inverted index; returns Δratings."""
        old_map = self.row_maps[user_int]
        items, values, devs, mean = self._packed_row(user_id)
        self.row_items[user_int] = items
        self.row_values[user_int] = values
        self.row_devs[user_int] = devs
        self.means[user_int] = mean
        new_map = dict(zip(items, values))
        self.row_maps[user_int] = new_map
        affected = old_map.keys() ^ new_map.keys()
        affected.update(
            item_int
            for item_int in old_map.keys() & new_map.keys()
            if old_map[item_int] != new_map[item_int]
        )
        user_index = self.user_index
        for item_int in affected:
            raters = self.matrix.users_of(self.item_ids[item_int])
            self.inv_users[item_int] = array(
                "l", (user_index[rater] for rater in raters)
            )
            self.inv_values[item_int] = array("d", raters.values())
        return len(new_map) - len(old_map)

    # -- spill ---------------------------------------------------------------

    @property
    def spill_backed(self) -> bool:
        """True while the packed arrays are read-only ``mmap`` views."""
        return self._spill_backed

    def save(self, directory) -> str:
        """Spill the packed CSR arrays to ``directory``; returns the fingerprint.

        Brings the view current first, then writes the
        :mod:`repro.kernels.spill` layout (atomic per-file writes,
        manifest last).  A no-op when the on-disk spill already carries
        the fingerprint of this state.
        """
        from .spill import write_spill

        with self._repack_lock:
            self.ensure_current()
            return write_spill(self, directory)

    @classmethod
    def open_mmap(cls, directory, matrix: RatingMatrix) -> "PackedRatings":
        """Open the spill at ``directory`` as an mmap-backed view of ``matrix``.

        The returned view shares the operating system's page-cache copy
        of the arrays with every other process that opened the same
        spill; nothing is deserialised beyond the interning tables.
        Raises :class:`~repro.kernels.spill.SpillError` when the spill
        is missing, torn, or disagrees with ``matrix`` — callers fall
        back to the in-memory rebuild recipe then (:func:`attach_spill`
        automates that).
        """
        from .spill import open_spill

        state = open_spill(directory, matrix)
        packed = cls.__new__(cls)
        packed.matrix = matrix
        packed._dirty = set()
        packed._stale = False
        packed._repack_lock = threading.RLock()
        packed.user_ids = state["user_ids"]
        packed.user_index = state["user_index"]
        packed.item_ids = state["item_ids"]
        packed.item_index = state["item_index"]
        packed.row_items = state["row_items"]
        packed.row_values = state["row_values"]
        packed.row_devs = state["row_devs"]
        packed.row_maps = state["row_maps"]
        packed.means = state["means"]
        packed.inv_users = state["inv_users"]
        packed.inv_values = state["inv_values"]
        packed._num_ratings = state["num_ratings"]
        packed._version = matrix.version
        packed._removals = matrix.removals
        packed._spill_backed = True
        # Remembered so sibling views (per-shard measures) can map the
        # same spill instead of packing their own private copy.
        packed._spill_dir = str(directory)
        return packed

    # -- pickling ------------------------------------------------------------

    def __reduce__(self):
        """Pickle as a rebuild recipe, not as the packed arrays.

        Shipping a worker the matrix and letting it repack locally is
        both smaller on the wire and exactly the delta-sync story: pool
        workers replay mutations into their own matrix copy and repack
        from it, so packed blobs never cross the process boundary.
        """
        return (PackedRatings, (self.matrix,))
