"""On-disk spill of the packed CSR layout, opened read-only via ``mmap``.

:meth:`~repro.kernels.packed.PackedRatings.save` flattens the per-user /
per-item CSR rows into a handful of binary array files plus a
fingerprinted ``manifest.json``;
:meth:`~repro.kernels.packed.PackedRatings.open_mmap` maps those files
back as zero-copy ``memoryview`` slices.  The point is worker
bootstrap: a pool worker that opens the spill shares one page-cache
copy of the arrays with every sibling and never receives the packed
state over a pipe — ``pool_stats()``'s ``bootstrap_bytes`` shows the
difference against a full state ship.

Layout of a spill directory::

    manifest.json     format/version, counts, fingerprint, file sizes
    users.json        interned user ids, insertion order
    items.json        interned item ids, insertion order
    row_offsets.bin   int64 CSR offsets, len num_users + 1
    row_items.bin     item ints, all user rows concatenated
    row_values.bin    raw ratings, parallel to row_items
    row_devs.bin      centred deviations, parallel to row_items
    means.bin         per-user means
    inv_offsets.bin   int64 CSR offsets, len num_items + 1
    inv_users.bin     rater ints, all item columns concatenated
    inv_values.bin    raw ratings, parallel to inv_users

Writes mirror the PR-3 snapshot discipline: every file is written to a
temporary name and atomically renamed, and the manifest is written
**last**, so a crash mid-save leaves either the previous generation or
a detectable mismatch — never a silently torn spill.  Opening validates
the manifest, the file sizes, the interning tables against the live
matrix (full id-list compare) and a deterministic sample of rows
against the matrix values; any disagreement raises :class:`SpillError`
so the caller can fall back to the in-memory rebuild recipe.

A spill-backed view is read-only: the first mutation the owner tells it
about (``mark_dirty`` + ``ensure_current``) *downgrades* it by copying
every structure into ordinary writable arrays, after which the normal
incremental repack proceeds.  See ``PackedRatings._materialize``.
"""

from __future__ import annotations

import hashlib
import json
import mmap
import os
from array import array
from pathlib import Path
from typing import Any, Iterator

from ..exceptions import SerializationError

#: Identifies the spill layout; bump on incompatible changes.
SPILL_FORMAT = "repro.packed-spill"
SPILL_VERSION = 1

#: Manifest file name inside a spill directory.
SPILL_MANIFEST_NAME = "manifest.json"

#: Binary array files and their :mod:`array` typecodes.
_ARRAY_FILES: tuple[tuple[str, str], ...] = (
    ("row_offsets.bin", "q"),
    ("row_items.bin", "l"),
    ("row_values.bin", "d"),
    ("row_devs.bin", "d"),
    ("means.bin", "d"),
    ("inv_offsets.bin", "q"),
    ("inv_users.bin", "l"),
    ("inv_values.bin", "d"),
)

#: Stride of the row-sample validation in :func:`open_spill`: one in
#: every ``_SAMPLE_STRIDE`` user rows is value-compared against the
#: live matrix, catching a same-shape / different-values stale spill
#: without an O(ratings) full scan.
_SAMPLE_STRIDE = 64


class SpillError(SerializationError):
    """Raised when a packed spill cannot be opened or trusted.

    Covers missing or torn files, manifests from another layout
    version or platform, and spills whose interning tables or sampled
    values disagree with the live matrix.  Callers treat this as "no
    usable spill" and rebuild from the matrix instead.
    """


def _ids_digest(ids: list[str]) -> str:
    """Order-sensitive digest of an interning table."""
    joined = "\x1f".join(ids)
    return hashlib.sha256(joined.encode("utf-8")).hexdigest()[:16]


def _values_digest(rows: Any) -> str:
    """Digest of every row's raw rating bytes, in row order.

    Catches the one staleness mode shape checks cannot: an in-place
    value overwrite that leaves counts and interning tables untouched.
    C-speed (``tobytes`` + sha256), so cheap relative to a save.
    """
    digest = hashlib.sha256()
    for row in rows:
        digest.update(row.tobytes())
    return digest.hexdigest()[:16]


def spill_fingerprint_of(
    num_users: int, num_items: int, num_ratings: int,
    user_ids: list[str], item_ids: list[str], values_digest: str,
) -> str:
    """Fingerprint binding a spill to one matrix state's shape, ids and values."""
    payload = {
        "users": num_users,
        "items": num_items,
        "ratings": num_ratings,
        "users_digest": _ids_digest(user_ids),
        "items_digest": _ids_digest(item_ids),
        "values_digest": values_digest,
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def _atomic_write_bytes(path: Path, blob: bytes) -> None:
    """Write ``blob`` to ``path`` via a temp file and atomic rename."""
    tmp = path.with_name(f"{path.name}.tmp-{os.getpid()}")
    tmp.write_bytes(blob)
    os.replace(tmp, path)


def _atomic_write_json(path: Path, payload: Any) -> None:
    """Atomically write ``payload`` as JSON."""
    _atomic_write_bytes(
        path, json.dumps(payload, separators=(",", ":")).encode("utf-8")
    )


def peek_fingerprint(directory: str | Path) -> str | None:
    """The fingerprint of the spill at ``directory``, or ``None``.

    A cheap manifest peek used to skip a re-save when the on-disk spill
    already matches the matrix state about to be written.
    """
    manifest_path = Path(directory) / SPILL_MANIFEST_NAME
    try:
        manifest = json.loads(manifest_path.read_text("utf-8"))
    except (OSError, ValueError):
        return None
    if (
        manifest.get("format") != SPILL_FORMAT
        or manifest.get("version") != SPILL_VERSION
    ):
        return None
    fingerprint = manifest.get("fingerprint")
    return fingerprint if isinstance(fingerprint, str) else None


def _flatten(rows: Any, typecode: str) -> tuple[array, array]:
    """Concatenate per-int CSR rows into ``(offsets, flat)`` arrays."""
    offsets = array("q", [0])
    flat = array(typecode)
    total = 0
    for row in rows:
        flat.extend(row)
        total += len(row)
        offsets.append(total)
    return offsets, flat


def write_spill(packed: Any, directory: str | Path) -> str:
    """Serialise ``packed`` (a current ``PackedRatings``) to ``directory``.

    Returns the spill fingerprint.  The caller (``PackedRatings.save``)
    is responsible for holding the repack lock and for having run
    ``ensure_current()`` first.
    """
    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    fingerprint = spill_fingerprint_of(
        packed.num_users,
        packed.num_items,
        packed._num_ratings,
        packed.user_ids,
        packed.item_ids,
        _values_digest(packed.row_values),
    )
    if peek_fingerprint(target) == fingerprint:
        return fingerprint
    row_offsets, flat_items = _flatten(packed.row_items, "l")
    _, flat_values = _flatten(packed.row_values, "d")
    _, flat_devs = _flatten(packed.row_devs, "d")
    means = array("d", packed.means)
    inv_offsets, flat_inv_users = _flatten(packed.inv_users, "l")
    _, flat_inv_values = _flatten(packed.inv_values, "d")
    blobs: dict[str, bytes] = {
        "row_offsets.bin": row_offsets.tobytes(),
        "row_items.bin": flat_items.tobytes(),
        "row_values.bin": flat_values.tobytes(),
        "row_devs.bin": flat_devs.tobytes(),
        "means.bin": means.tobytes(),
        "inv_offsets.bin": inv_offsets.tobytes(),
        "inv_users.bin": flat_inv_users.tobytes(),
        "inv_values.bin": flat_inv_values.tobytes(),
    }
    for name, blob in blobs.items():
        _atomic_write_bytes(target / name, blob)
    _atomic_write_json(target / "users.json", packed.user_ids)
    _atomic_write_json(target / "items.json", packed.item_ids)
    manifest = {
        "format": SPILL_FORMAT,
        "version": SPILL_VERSION,
        "fingerprint": fingerprint,
        "num_users": packed.num_users,
        "num_items": packed.num_items,
        "num_ratings": packed._num_ratings,
        "long_size": array("l").itemsize,
        "files": {name: len(blob) for name, blob in blobs.items()},
    }
    _atomic_write_json(target / SPILL_MANIFEST_NAME, manifest)
    return fingerprint


class _SpillRows:
    """Lazy list-like CSR rows over one flat mmap'd array.

    ``rows[i]`` is a zero-copy ``memoryview`` slice; iterating it
    yields plain ints/floats exactly like the in-memory ``array`` rows,
    so the kernels run unchanged over either representation.
    """

    __slots__ = ("_offsets", "_flat")

    def __init__(self, offsets: Any, flat: Any) -> None:
        self._offsets = offsets
        self._flat = flat

    def __len__(self) -> int:
        return len(self._offsets) - 1

    def __getitem__(self, index: int) -> Any:
        if index < 0:
            raise IndexError(index)
        return self._flat[self._offsets[index] : self._offsets[index + 1]]

    def __iter__(self) -> Iterator[Any]:
        for index in range(len(self)):
            yield self[index]


class _SpillRowMaps:
    """Lazy per-user ``{item_int: value}`` dicts over spill rows.

    Built on first access and memoised: the prediction kernels probe
    only the requesting user's map, so at most the actively-served
    users ever materialise a dict.
    """

    __slots__ = ("_items", "_values", "_cache")

    def __init__(self, items: _SpillRows, values: _SpillRows) -> None:
        self._items = items
        self._values = values
        self._cache: dict[int, dict[int, float]] = {}

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, index: int) -> dict[int, float]:
        got = self._cache.get(index)
        if got is None:
            got = dict(zip(self._items[index], self._values[index]))
            self._cache[index] = got
        return got

    def __iter__(self) -> Iterator[dict[int, float]]:
        for index in range(len(self)):
            yield self[index]


def _map_file(path: Path, typecode: str, expected_bytes: int) -> Any:
    """``mmap`` one array file read-only and cast it to ``typecode``."""
    try:
        size = path.stat().st_size
    except OSError as exc:
        raise SpillError(f"missing spill file {path}: {exc}") from exc
    if size != expected_bytes:
        raise SpillError(
            f"spill file {path} is {size} bytes, manifest says "
            f"{expected_bytes}; the spill is torn or from another save"
        )
    if size == 0:
        return memoryview(b"").cast(typecode)
    with open(path, "rb") as handle:
        mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
    return memoryview(mapped).cast(typecode)


def open_spill(directory: str | Path, matrix: Any) -> dict[str, Any]:
    """Open and validate the spill at ``directory`` against ``matrix``.

    Returns the packed structures as a name → object dict for
    ``PackedRatings.open_mmap`` to adopt.  Raises :class:`SpillError`
    when anything — manifest, sizes, interning tables, or the sampled
    row values — disagrees with the live matrix.
    """
    target = Path(directory)
    manifest_path = target / SPILL_MANIFEST_NAME
    try:
        manifest = json.loads(manifest_path.read_text("utf-8"))
    except OSError as exc:
        raise SpillError(f"no spill manifest at {manifest_path}: {exc}") from exc
    except ValueError as exc:
        raise SpillError(f"malformed spill manifest {manifest_path}: {exc}") from exc
    if manifest.get("format") != SPILL_FORMAT:
        raise SpillError(
            f"{manifest_path} is not a packed spill manifest "
            f"(format={manifest.get('format')!r})"
        )
    if manifest.get("version") != SPILL_VERSION:
        raise SpillError(
            f"spill layout version {manifest.get('version')!r} unsupported "
            f"(expected {SPILL_VERSION})"
        )
    if manifest.get("long_size") != array("l").itemsize:
        raise SpillError(
            "spill was written on a platform with a different C long size"
        )
    try:
        user_ids = json.loads((target / "users.json").read_text("utf-8"))
        item_ids = json.loads((target / "items.json").read_text("utf-8"))
    except (OSError, ValueError) as exc:
        raise SpillError(f"unreadable spill id tables in {target}: {exc}") from exc
    if user_ids != matrix.user_ids() or item_ids != matrix.item_ids():
        raise SpillError(
            f"spill {target} interning tables disagree with the matrix "
            "(different dataset, or ids in a different insertion order)"
        )
    if (
        manifest.get("num_users") != len(user_ids)
        or manifest.get("num_items") != len(item_ids)
        or manifest.get("num_ratings") != matrix.num_ratings
    ):
        raise SpillError(
            f"spill {target} counts disagree with the matrix "
            f"(manifest {manifest.get('num_users')}u/"
            f"{manifest.get('num_items')}i/{manifest.get('num_ratings')}r, "
            f"matrix {len(user_ids)}u/{len(item_ids)}i/"
            f"{matrix.num_ratings}r)"
        )
    sizes = manifest.get("files") or {}
    views: dict[str, Any] = {}
    for name, typecode in _ARRAY_FILES:
        declared = sizes.get(name)
        if not isinstance(declared, int):
            raise SpillError(f"spill manifest {manifest_path} misses file {name}")
        views[name] = _map_file(target / name, typecode, declared)
    num_users = len(user_ids)
    num_items = len(item_ids)
    num_ratings = matrix.num_ratings
    if (
        len(views["row_offsets.bin"]) != num_users + 1
        or len(views["inv_offsets.bin"]) != num_items + 1
        or len(views["row_items.bin"]) != num_ratings
        or len(views["means.bin"]) != num_users
        or len(views["inv_users.bin"]) != num_ratings
    ):
        raise SpillError(
            f"spill {target} array lengths disagree with its manifest counts"
        )
    row_items = _SpillRows(views["row_offsets.bin"], views["row_items.bin"])
    row_values = _SpillRows(views["row_offsets.bin"], views["row_values.bin"])
    row_devs = _SpillRows(views["row_offsets.bin"], views["row_devs.bin"])
    inv_users = _SpillRows(views["inv_offsets.bin"], views["inv_users.bin"])
    inv_values = _SpillRows(views["inv_offsets.bin"], views["inv_values.bin"])
    item_index = {item_id: index for index, item_id in enumerate(item_ids)}
    for user_int in range(0, num_users, _SAMPLE_STRIDE):
        row = matrix.items_of(user_ids[user_int])
        expected = {item_index[item_id]: value for item_id, value in row.items()}
        actual = dict(zip(row_items[user_int], row_values[user_int]))
        if expected != actual:
            raise SpillError(
                f"spill {target} row for user {user_ids[user_int]!r} "
                "disagrees with the matrix; the spill is stale"
            )
    return {
        "user_ids": user_ids,
        "user_index": {uid: index for index, uid in enumerate(user_ids)},
        "item_ids": item_ids,
        "item_index": item_index,
        "row_items": row_items,
        "row_values": row_values,
        "row_devs": row_devs,
        "row_maps": _SpillRowMaps(row_items, row_values),
        "means": views["means.bin"],
        "inv_users": inv_users,
        "inv_values": inv_values,
        "num_ratings": num_ratings,
    }
