"""Command-line interface of the library.

``repro-health`` (or ``python -m repro.cli``) exposes the main workflows
without writing any Python:

* ``generate`` — create a synthetic health or nutrition dataset and
  save it as JSON;
* ``recommend`` — run the caregiver pipeline on a dataset for a random
  or explicit group and print the fairness-aware recommendation;
* ``table2`` — reproduce the paper's Table II (brute force vs heuristic);
* ``prop1`` — verify Proposition 1 over a sweep of group sizes;
* ``ablation`` — run the aggregation / similarity / value-quality
  ablations;
* ``serve`` — load a dataset into a warm
  :class:`~repro.serving.RecommendationService` and answer a stream of
  JSONL requests, printing latency and cache statistics (``--strict``
  validates every response against the declared shapes; ``--listen
  HOST:PORT`` serves concurrent JSONL streams over TCP instead, with
  bounded in-flight admission control);
* ``worker`` — join a ``--backend remote`` fleet as a separate worker
  process, connecting to the parent's listener over TCP;
* ``stats`` — replay a request stream quietly and print the metrics
  registry (text, JSON, or Prometheus exposition format);
* ``validate`` — check a dataset JSON (and optional group file) against
  the declared shapes of :mod:`repro.validation`, printing one
  actionable line per violation.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from .config import KNOWN_EXEC_BACKENDS, KNOWN_KERNELS, RecommenderConfig
from .exec import DEFAULT_HEARTBEAT_INTERVAL, DEFAULT_IDLE_TTL
from .core.pipeline import CaregiverPipeline
from .data.datasets import generate_dataset
from .data.groups import Group, random_group
from .data.nutrition import generate_nutrition_dataset
from .data.serialization import load_dataset, save_dataset
from .eval.experiments import (
    run_aggregation_ablation,
    run_similarity_ablation,
    run_table2,
    run_value_quality,
    verify_proposition1,
)
from .eval.reporting import (
    format_aggregation_ablation,
    format_proposition1,
    format_similarity_ablation,
    format_table2,
    format_value_quality,
)


def _add_workload_arguments(sub: argparse.ArgumentParser) -> None:
    """Arguments shared by the ``serve`` and ``stats`` request replays."""
    sub.add_argument("dataset", help="path of a dataset JSON (or '-' to generate)")
    sub.add_argument(
        "requests",
        help="path of a JSONL request file (or '-' for a synthetic workload)",
    )
    sub.add_argument(
        "--synthetic-requests",
        type=int,
        default=100,
        help="size of the synthetic workload when requests is '-'",
    )
    sub.add_argument("--group-size", type=int, default=5)
    sub.add_argument("--z", type=int, default=10)
    sub.add_argument("--top-k", type=int, default=10)
    sub.add_argument(
        "--similarity",
        choices=["ratings", "profile", "semantic", "hybrid"],
        default="ratings",
    )
    sub.add_argument(
        "--aggregation", choices=["average", "minimum"], default="average"
    )
    sub.add_argument("--peer-threshold", type=float, default=0.2)
    sub.add_argument(
        "--kernel",
        choices=list(KNOWN_KERNELS),
        default="packed",
        help=(
            "similarity/prediction kernel: 'packed' runs the interned "
            "CSR kernels, 'dict' the dict-of-dicts oracle; scores are "
            "bit-identical across kernels"
        ),
    )
    sub.add_argument(
        "--backend",
        choices=list(KNOWN_EXEC_BACKENDS),
        default="serial",
        help=(
            "execution backend for the index build and batch requests; "
            "results are bit-identical across backends"
        ),
    )
    sub.add_argument(
        "--workers",
        type=int,
        default=None,
        help=(
            "worker count for the chosen backend (default: one CPU per "
            "worker for thread/process); with --backend serial, >1 falls "
            "back to a thread pool over runs of consecutive group requests"
        ),
    )
    sub.add_argument("--seed", type=int, default=7)


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-health",
        description="Fairness-aware group recommendations in the health domain",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser("generate", help="generate a synthetic dataset")
    generate.add_argument("output", help="path of the JSON dataset to write")
    generate.add_argument("--kind", choices=["health", "nutrition"], default="health")
    generate.add_argument("--users", type=int, default=100)
    generate.add_argument("--items", type=int, default=200)
    generate.add_argument("--ratings-per-user", type=int, default=25)
    generate.add_argument("--seed", type=int, default=7)

    recommend = subparsers.add_parser(
        "recommend", help="run the caregiver pipeline on a dataset"
    )
    recommend.add_argument("dataset", help="path of a dataset JSON (or '-' to generate)")
    recommend.add_argument("--group", nargs="*", default=None, help="member user ids")
    recommend.add_argument("--group-size", type=int, default=5)
    recommend.add_argument("--z", type=int, default=10)
    recommend.add_argument("--top-k", type=int, default=10)
    recommend.add_argument(
        "--similarity",
        choices=["ratings", "profile", "semantic", "hybrid"],
        default="ratings",
    )
    recommend.add_argument(
        "--aggregation", choices=["average", "minimum"], default="average"
    )
    recommend.add_argument("--seed", type=int, default=7)

    table2 = subparsers.add_parser("table2", help="reproduce Table II")
    table2.add_argument("--group-size", type=int, default=4)
    table2.add_argument("--repeats", type=int, default=1)
    table2.add_argument(
        "--max-subsets",
        type=int,
        default=None,
        help="skip cells that would enumerate more subsets than this",
    )
    table2.add_argument(
        "--backend",
        choices=list(KNOWN_EXEC_BACKENDS),
        default="serial",
        help="execution backend the (m, z) grid cells run on",
    )

    prop1 = subparsers.add_parser("prop1", help="verify Proposition 1")
    prop1.add_argument("--candidates", type=int, default=30)

    ablation = subparsers.add_parser("ablation", help="run an extension ablation")
    ablation.add_argument(
        "kind", choices=["aggregation", "similarity", "value-quality"]
    )
    ablation.add_argument("--seed", type=int, default=7)

    evaluate = subparsers.add_parser(
        "evaluate", help="offline accuracy of the similarity measures (holdout)"
    )
    evaluate.add_argument("dataset", help="path of a dataset JSON (or '-' to generate)")
    evaluate.add_argument("--test-fraction", type=float, default=0.2)
    evaluate.add_argument("--k", type=int, default=10)
    evaluate.add_argument("--seed", type=int, default=7)

    serve = subparsers.add_parser(
        "serve", help="answer a stream of requests from a warm service"
    )
    _add_workload_arguments(serve)
    serve.add_argument(
        "--pool-sync",
        choices=["delta", "full"],
        default="delta",
        help=(
            "with --backend pool: how stale resident workers re-sync after "
            "an update (broadcast a per-epoch mutation packet — one message "
            "per worker — or re-ship the full state)"
        ),
    )
    serve.add_argument(
        "--pool-min-workers",
        type=int,
        default=0,
        help=(
            "with --backend pool: autoscaling floor — idle workers shrink "
            "to this width after --pool-idle-ttl seconds (0 = pin at the "
            "--workers width)"
        ),
    )
    serve.add_argument(
        "--pool-max-workers",
        type=int,
        default=0,
        help=(
            "with --backend pool: autoscaling ceiling — the pool grows "
            "toward this width under batch queue depth (0 = pin at the "
            "--workers width)"
        ),
    )
    serve.add_argument(
        "--pool-idle-ttl",
        type=float,
        default=DEFAULT_IDLE_TTL,
        help=(
            "with --backend pool: seconds without a dispatch before the "
            "pool shrinks back to --pool-min-workers"
        ),
    )
    serve.add_argument(
        "--pool-target-p99-ms",
        type=float,
        default=0.0,
        help=(
            "with --backend pool: latency-target autoscaling — grow one "
            "worker while the windowed batch p99 exceeds this many ms, "
            "shrink one after it recovers below half the target "
            "(0 = queue-depth scaling only)"
        ),
    )
    serve.add_argument(
        "--shards",
        type=int,
        default=1,
        help="hash-shard the neighbor index into N independent partitions",
    )
    serve.add_argument(
        "--snapshot",
        default=None,
        metavar="PATH",
        help=(
            "neighbor-index snapshot: load it if PATH exists (rejecting a "
            "stale fingerprint), otherwise warm the index and save it "
            "there; a .json PATH is one file, a directory (or suffix-less) "
            "PATH gets the per-shard manifest layout with incremental saves"
        ),
    )
    serve.add_argument(
        "--packed-spill",
        default=None,
        metavar="DIR",
        help=(
            "with --kernel packed: spill the packed CSR arrays to DIR and "
            "mmap them back, so pool workers bootstrap from the shared "
            "page cache instead of a full state ship (the directory also "
            "holds the dataset snapshot and mutation journal workers "
            "replay on boot)"
        ),
    )
    serve.add_argument(
        "--similarity-cache", type=int, default=500_000, help="pair-score LRU capacity"
    )
    serve.add_argument(
        "--relevance-cache", type=int, default=10_000, help="relevance-row LRU capacity"
    )
    serve.add_argument(
        "--no-warm",
        action="store_true",
        help="skip the eager neighbor-index build (rows build lazily)",
    )
    serve.add_argument(
        "--quiet", action="store_true", help="suppress per-request output lines"
    )
    serve.add_argument(
        "--metrics",
        action="store_true",
        help=(
            "after the stream, dump the full metrics registry as "
            "Prometheus exposition text plus a JSON snapshot"
        ),
    )
    serve.add_argument(
        "--validation",
        choices=["strict", "log", "off"],
        default="off",
        help=(
            "response-shape enforcement: 'strict' fails a request whose "
            "answer violates the declared shapes, 'log' only counts "
            "violations (validation_failures{shape=...} in --metrics "
            "output), 'off' skips the checks"
        ),
    )
    serve.add_argument(
        "--strict",
        action="store_true",
        help="shorthand for --validation strict",
    )
    serve.add_argument(
        "--listen",
        default=None,
        metavar="HOST:PORT",
        help=(
            "instead of replaying the request file, serve concurrent "
            "JSONL request streams over TCP from the warm service "
            "(port 0 picks a free port; the bound address is printed)"
        ),
    )
    serve.add_argument(
        "--max-inflight",
        type=int,
        default=16,
        help=(
            "with --listen: cross-connection ceiling on concurrently "
            "executing requests; excess requests are rejected "
            'immediately with a typed {"error": "overloaded"} response'
        ),
    )
    serve.add_argument(
        "--max-requests",
        type=int,
        default=None,
        metavar="N",
        help=(
            "with --listen: stop after N successfully answered requests "
            "(default: serve until interrupted)"
        ),
    )
    serve.add_argument(
        "--remote-workers",
        type=int,
        default=0,
        help=(
            "with --backend remote: loopback worker processes the "
            "backend spawns (0 = the --workers width); externally "
            "started 'repro worker' processes join on top"
        ),
    )
    serve.add_argument(
        "--remote-heartbeat-interval",
        type=float,
        default=2.0,
        help=(
            "with --backend remote: seconds between a worker's "
            "heartbeat beacons"
        ),
    )
    serve.add_argument(
        "--remote-heartbeat-timeout",
        type=float,
        default=10.0,
        help=(
            "with --backend remote: seconds of mid-batch silence after "
            "which a worker is declared dead and its in-flight tasks "
            "are requeued onto the survivors"
        ),
    )
    serve.add_argument(
        "--remote-connect-timeout",
        type=float,
        default=30.0,
        help=(
            "with --backend remote: seconds to wait for workers to "
            "connect before a dispatch fails loudly"
        ),
    )
    serve.add_argument(
        "--degraded-mode",
        choices=["off", "serial"],
        default="off",
        help=(
            "with --backend remote: total-fleet-loss policy — 'off' "
            "fails the batch loudly, 'serial' falls back to "
            "bit-identical in-process serial execution (responses are "
            'marked "degraded": true)'
        ),
    )
    serve.add_argument(
        "--request-timeout",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help=(
            "with --listen: per-request time budget; an overrunning "
            'request is answered with {"error": "deadline"} '
            "(0 = no budget)"
        ),
    )

    worker = subparsers.add_parser(
        "worker",
        help="join a remote execution fleet as a worker process",
    )
    worker.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help=(
            "address of the parent RemoteBackend listener (printed by "
            "'repro serve --backend remote --listen ...')"
        ),
    )
    worker.add_argument(
        "--fingerprint",
        default=None,
        help=(
            "config fingerprint this worker expects to serve; the "
            "handshake fails loudly when the parent serves different "
            "recommendation semantics (default: accept the parent's)"
        ),
    )
    worker.add_argument(
        "--heartbeat-interval",
        type=float,
        default=DEFAULT_HEARTBEAT_INTERVAL,
        help="seconds between heartbeat beacons to the parent",
    )
    worker.add_argument(
        "--rejoin-attempts",
        type=int,
        default=0,
        metavar="N",
        help=(
            "reconnect with exponential backoff after a dropped "
            "connection, for up to N consecutive dead sessions; the "
            "worker is re-admitted at the parent's current epoch via a "
            "full BOOT (0 = exit on the first drop)"
        ),
    )

    validate = subparsers.add_parser(
        "validate",
        help="check a dataset (and optional group file) against the declared shapes",
    )
    validate.add_argument("dataset", help="path of a dataset JSON to check")
    validate.add_argument(
        "--groups",
        default=None,
        metavar="PATH",
        help=(
            "also check a JSON group file (a list of group objects, or "
            '{"groups": [...]}) including membership referential '
            "integrity against the dataset's user registry"
        ),
    )

    stats = subparsers.add_parser(
        "stats",
        help="replay a request stream quietly and print the metrics registry",
    )
    _add_workload_arguments(stats)
    stats.add_argument(
        "--format",
        choices=["text", "json", "prometheus"],
        default="text",
        help=(
            "text renders the latency/cache tables, json dumps the "
            "registry snapshot, prometheus emits exposition text"
        ),
    )

    return parser


def _command_generate(args: argparse.Namespace) -> int:
    if args.kind == "nutrition":
        dataset = generate_nutrition_dataset(
            num_users=args.users,
            num_recipes=args.items,
            ratings_per_user=args.ratings_per_user,
            seed=args.seed,
        )
    else:
        dataset = generate_dataset(
            num_users=args.users,
            num_items=args.items,
            ratings_per_user=args.ratings_per_user,
            seed=args.seed,
        )
    path = save_dataset(dataset, args.output)
    print(
        f"wrote {dataset.num_users} users, {dataset.num_items} items, "
        f"{dataset.num_ratings} ratings to {path}"
    )
    return 0


def _command_recommend(args: argparse.Namespace) -> int:
    if args.dataset == "-":
        dataset = generate_dataset(seed=args.seed)
    else:
        dataset = load_dataset(args.dataset)
    if args.group:
        group = Group(member_ids=list(args.group), caregiver_id="cli")
    else:
        group = random_group(dataset.users.ids(), args.group_size, seed=args.seed)
    config = RecommenderConfig(
        top_k=args.top_k,
        top_z=args.z,
        similarity=args.similarity,
        aggregation=args.aggregation,
    )
    pipeline = CaregiverPipeline(dataset, config)
    recommendation = pipeline.recommend(group)
    print(f"group: {', '.join(group.member_ids)}")
    print(f"fairness: {recommendation.report.fairness:.3f}")
    print(f"value:    {recommendation.report.value:.3f}")
    print("recommended items:")
    for item_id in recommendation.items:
        item = dataset.items.get(item_id) if item_id in dataset.items else None
        title = item.title if item else ""
        score = recommendation.candidates.item_group_relevance(item_id)
        print(f"  {item_id}  group-relevance={score:.3f}  {title}")
    return 0


def _command_table2(args: argparse.Namespace) -> int:
    result = run_table2(
        group_size=args.group_size,
        repeats=args.repeats,
        max_subsets=args.max_subsets,
        backend=args.backend,
    )
    print(format_table2(result))
    return 0


def _command_prop1(args: argparse.Namespace) -> int:
    rows = verify_proposition1(num_candidates=args.candidates)
    print(format_proposition1(rows))
    failures = [row for row in rows if not row.holds]
    return 1 if failures else 0


def _command_ablation(args: argparse.Namespace) -> int:
    if args.kind == "aggregation":
        print(format_aggregation_ablation(run_aggregation_ablation(seed=args.seed)))
    elif args.kind == "similarity":
        print(format_similarity_ablation(run_similarity_ablation(seed=args.seed)))
    else:
        print(format_value_quality(run_value_quality(seed=args.seed)))
    return 0


def _command_evaluate(args: argparse.Namespace) -> int:
    from .eval.reporting import format_table
    from .eval.validation import compare_similarities
    from .similarity.profile_sim import ProfileSimilarity
    from .similarity.ratings_sim import (
        CosineRatingSimilarity,
        JaccardRatingSimilarity,
        PearsonRatingSimilarity,
    )

    if args.dataset == "-":
        dataset = generate_dataset(seed=args.seed)
    else:
        dataset = load_dataset(args.dataset)
    results = compare_similarities(
        dataset.ratings,
        {
            "pearson": lambda train: PearsonRatingSimilarity(train),
            "cosine": lambda train: CosineRatingSimilarity(train),
            "jaccard": lambda train: JaccardRatingSimilarity(train),
            "profile": lambda train: ProfileSimilarity(dataset.users),
        },
        test_fraction=args.test_fraction,
        k=args.k,
        seed=args.seed,
    )
    rows = [
        [
            name,
            metrics["mae"],
            metrics["rmse"],
            metrics["coverage"],
            metrics["precision_at_k"],
            metrics["recall_at_k"],
            metrics["hit_rate"],
        ]
        for name, metrics in results.items()
    ]
    print(
        format_table(
            ["similarity", "MAE", "RMSE", "coverage", f"P@{args.k}", f"R@{args.k}", "hit rate"],
            rows,
            float_format="{:.3f}",
        )
    )
    return 0


def _command_validate(args: argparse.Namespace) -> int:
    """Check a dataset (and optional group file) against the shapes."""
    import json

    from .validation import validate_dataset_payload, validate_groups_payload

    def _read_json(path: str):
        try:
            return json.loads(Path(path).read_text(encoding="utf-8")), None
        except (OSError, json.JSONDecodeError) as exc:
            return None, f"error: cannot read {path}: {exc}"

    payload, problem = _read_json(args.dataset)
    if problem:
        print(problem, file=sys.stderr)
        return 2
    violations = validate_dataset_payload(payload)
    checked = [f"dataset {args.dataset}"]
    if args.groups:
        groups_payload, problem = _read_json(args.groups)
        if problem:
            print(problem, file=sys.stderr)
            return 2
        users = payload.get("users") if isinstance(payload, dict) else None
        known_ids = [
            entry.get("user_id")
            for entry in (users or {}).get("users", [])
            if isinstance(entry, dict) and isinstance(entry.get("user_id"), str)
        ]
        violations.extend(validate_groups_payload(groups_payload, known_ids))
        checked.append(f"groups {args.groups}")
    if violations:
        for violation in violations:
            print(violation)
        print(
            f"\nvalidation FAILED: {len(violations)} violation(s) across "
            f"{' + '.join(checked)}",
            file=sys.stderr,
        )
        return 1
    print(f"validation OK: {' + '.join(checked)} matched the declared shapes")
    return 0


def _workload_config(args: argparse.Namespace, **overrides) -> RecommenderConfig:
    """Build the service config shared by ``serve`` and ``stats``."""
    return RecommenderConfig(
        top_k=args.top_k,
        top_z=args.z,
        similarity=args.similarity,
        aggregation=args.aggregation,
        peer_threshold=args.peer_threshold,
        serve_workers=args.workers or 1,
        exec_backend=args.backend,
        # 0 = auto-detect CPUs; an explicit --workers pins the width.
        exec_workers=args.workers or 0,
        kernel=args.kernel,
        **overrides,
    )


def _load_workload(args: argparse.Namespace, dataset):
    if args.requests == "-":
        from .serving import synthetic_workload

        return synthetic_workload(
            dataset.users.ids(),
            num_requests=args.synthetic_requests,
            group_size=args.group_size,
            seed=args.seed,
        )
    from .serving import load_requests

    return load_requests(args.requests)


def _replay_requests(service, requests, args, emit) -> int:
    """Stream ``requests`` through ``service``; returns requests answered.

    Consecutive group requests form one batch so --workers can fan them
    out; user/rate requests are natural batch boundaries (a rate must
    invalidate before the next read).  With workers=1 and a serial
    backend the batch path degenerates to the sequential loop.  Latency
    is not timed here: every request path observes its own ``request_ms``
    histogram inside the service, one observation per request — the
    caller reads the distribution back from the registry.
    """
    from .obs import request_context

    number = 0
    pending: list = []

    def _flush() -> None:
        nonlocal number
        if not pending:
            return
        # One request id per batch: the recommend_many/exec_dispatch
        # spans of every request in the batch share it.
        with request_context(f"batch@{number + 1}"):
            results = service.recommend_many(
                [request.group() for request in pending],
                z=pending[0].z,
                workers=args.workers,
            )
        for request, recommendation in zip(pending, results):
            number += 1
            emit(number, request, recommendation)
        pending.clear()

    batching = (args.workers or 1) > 1 or args.backend != "serial"
    for request in requests:
        if request.kind == "group" and batching:
            # recommend_many takes one z for the whole batch; a z
            # change closes the current batch.
            if pending and pending[0].z != request.z:
                _flush()
            pending.append(request)
            continue
        _flush()
        number += 1
        with request_context(f"req-{number}"):
            if request.kind == "group":
                result = service.recommend_group(request.group(), z=request.z)
            elif request.kind == "user":
                result = service.recommend_user(request.user_id, k=request.k)
            else:
                service.ingest_rating(
                    request.user_id, request.item_id, request.value
                )
                result = None
        emit(number, request, result)
    _flush()
    return number


def _parse_endpoint(spec: str) -> tuple[str, int]:
    """Split a ``HOST:PORT`` CLI argument, validating the port."""
    host, separator, port_text = spec.rpartition(":")
    if not separator or not host:
        raise SystemExit(f"error: expected HOST:PORT, got {spec!r}")
    try:
        port = int(port_text)
    except ValueError:
        raise SystemExit(
            f"error: invalid port {port_text!r} in {spec!r}"
        ) from None
    if not 0 <= port <= 65535:
        raise SystemExit(f"error: port {port} out of range in {spec!r}")
    return host, port


def _serve_listen(service, registry, args: argparse.Namespace) -> int:
    """The ``serve --listen`` front end: JSONL request streams over TCP."""
    import time

    from .eval.reporting import format_latency_histogram, format_serving_stats
    from .obs import render_json
    from .serving import RequestServer

    host, port = _parse_endpoint(args.listen)
    # A remote backend shares the story: print the worker rendezvous
    # address so external `repro worker` processes can join the fleet.
    backend_listen = getattr(service.backend, "listen", None)
    if backend_listen is not None:
        worker_host, worker_port = backend_listen()
        print(
            f"remote workers join with: repro worker "
            f"--connect {worker_host}:{worker_port}"
        )
    server = RequestServer(
        service,
        host,
        port,
        max_inflight=args.max_inflight,
        request_timeout=args.request_timeout or None,
        metrics=registry,
    )
    bound_host, bound_port = server.start()
    print(
        f"listening on {bound_host}:{bound_port} "
        f"(max in-flight {args.max_inflight}"
        + (
            f", stopping after {args.max_requests} requests)"
            if args.max_requests is not None
            else ")"
        ),
        flush=True,
    )
    answered = registry.counter("server_requests")
    try:
        while (
            args.max_requests is None
            or answered.value < args.max_requests
        ):
            time.sleep(0.05)
    except KeyboardInterrupt:
        print("interrupted; shutting down")
    finally:
        # Drain in order: stop admitting new requests, then stop the
        # service's worker pool/fleet through the escalation path — a
        # SIGINT mid-stream must leave no orphan worker processes.
        server.stop()
        service.close()
    print()
    print(format_latency_histogram(
        registry.merged_histogram("request_ms", exclude_labels=("worker",))
    ))
    print(format_serving_stats(service.stats()))
    if args.metrics:
        print()
        print("== metrics (json) ==")
        print(render_json(registry, indent=2))
    return 0


def _command_worker(args: argparse.Namespace) -> int:
    from .exec import run_worker
    from .exec.wire import WireError
    from .resilience import RetryPolicy

    host, port = _parse_endpoint(args.connect)
    # N rejoin attempts = N+1 total sessions under the policy.
    rejoin = (
        RetryPolicy(max_attempts=args.rejoin_attempts + 1)
        if args.rejoin_attempts > 0
        else None
    )
    try:
        served = run_worker(
            host,
            port,
            fingerprint=args.fingerprint,
            heartbeat_interval=args.heartbeat_interval,
            rejoin=rejoin,
        )
    except WireError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 3
    except ConnectionError as exc:
        print(f"error: cannot reach {host}:{port}: {exc}", file=sys.stderr)
        return 3
    print(f"worker served {served} task item(s)")
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    from .eval.reporting import format_latency_histogram, format_serving_stats
    from .eval.timing import stopwatch
    from .obs import render_json, render_prometheus, reset_registry
    from .serving import RecommendationService

    # A fresh process-wide registry per invocation: kernel and service
    # metrics from an earlier command never bleed into this report.
    registry = reset_registry()
    if args.dataset == "-":
        dataset = generate_dataset(seed=args.seed)
    else:
        dataset = load_dataset(args.dataset)
    config = _workload_config(
        args,
        similarity_cache_size=args.similarity_cache,
        relevance_cache_size=args.relevance_cache,
        pool_sync=args.pool_sync,
        pool_min_workers=args.pool_min_workers,
        pool_max_workers=args.pool_max_workers,
        pool_idle_ttl=args.pool_idle_ttl,
        pool_target_p99_ms=args.pool_target_p99_ms,
        remote_workers=args.remote_workers,
        remote_heartbeat_interval=args.remote_heartbeat_interval,
        remote_heartbeat_timeout=args.remote_heartbeat_timeout,
        remote_connect_timeout=args.remote_connect_timeout,
        degraded_mode=args.degraded_mode,
        index_shards=args.shards,
        packed_spill=args.packed_spill or "",
        validation="strict" if args.strict else args.validation,
    )
    service = RecommendationService(dataset, config, metrics=registry)
    requests = _load_workload(args, dataset)

    from .serving.snapshot import MANIFEST_NAME, is_sharded_snapshot_path

    snapshot_path = Path(args.snapshot) if args.snapshot else None
    snapshot_present = snapshot_path is not None and (
        (snapshot_path / MANIFEST_NAME).exists()
        if is_sharded_snapshot_path(snapshot_path)
        else snapshot_path.exists()
    )
    if snapshot_present:
        from .exceptions import SnapshotError

        try:
            with stopwatch() as load_elapsed:
                loaded = service.load_snapshot(snapshot_path)
        except SnapshotError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(
            f"loaded neighbor-index snapshot: {loaded} rows from "
            f"{snapshot_path} in {load_elapsed():.1f} ms"
        )
    else:
        with stopwatch() as warm_elapsed:
            if not args.no_warm:
                built = service.warm()
                print(
                    f"warmed neighbor index: {built} rows in "
                    f"{warm_elapsed():.1f} ms"
                )
        # Never snapshot a cold index: with --no-warm there is nothing
        # worth saving, and an empty snapshot would suppress warm-up on
        # every later run.
        if snapshot_path is not None and not args.no_warm:
            service.save_snapshot(snapshot_path)
            print(f"saved neighbor-index snapshot to {snapshot_path}")

    if args.listen is not None:
        return _serve_listen(service, registry, args)

    def _emit(number: int, request, result) -> None:
        if args.quiet:
            return
        if request.kind == "group":
            line = (
                f"group [{', '.join(request.members)}] -> "
                f"{', '.join(result.items)} "
                f"(fairness={result.report.fairness:.3f})"
            )
        elif request.kind == "user":
            line = (
                f"user {request.user_id} -> "
                f"{', '.join(item.item_id for item in result)}"
            )
        else:
            line = (
                f"rate {request.user_id} {request.item_id} "
                f"= {request.value:g} (caches invalidated)"
            )
        print(f"[{number:4d}] {line}")

    with stopwatch() as total_elapsed:
        answered = _replay_requests(service, requests, args, _emit)
        total_ms = total_elapsed()

    throughput = answered / (total_ms / 1000.0) if total_ms > 0 else 0.0
    print()
    # The latency table is the registry's own per-request histogram
    # (merged over the group/user/ingest kinds) — batched requests are
    # observed one at a time inside the service, not as batch averages.
    print(format_latency_histogram(registry.merged_histogram("request_ms", exclude_labels=("worker",))))
    print(f"throughput: {throughput:.1f} requests/s")
    print()
    print(format_serving_stats(service.stats()))
    if args.metrics:
        print()
        print("== metrics (prometheus) ==")
        print(render_prometheus(registry), end="")
        print()
        print("== metrics (json) ==")
        print(render_json(registry, indent=2))
    return 0


def _command_stats(args: argparse.Namespace) -> int:
    from .eval.reporting import format_latency_histogram, format_serving_stats
    from .obs import render_json, render_prometheus, reset_registry
    from .serving import RecommendationService

    registry = reset_registry()
    if args.dataset == "-":
        dataset = generate_dataset(seed=args.seed)
    else:
        dataset = load_dataset(args.dataset)
    config = _workload_config(args)
    requests = _load_workload(args, dataset)
    with RecommendationService(dataset, config, metrics=registry) as service:
        service.warm()
        _replay_requests(service, requests, args, lambda *unused: None)
        if args.format == "prometheus":
            print(render_prometheus(registry), end="")
        elif args.format == "json":
            print(render_json(registry, indent=2))
        else:
            print(format_latency_histogram(registry.merged_histogram("request_ms", exclude_labels=("worker",))))
            print()
            print(format_serving_stats(service.stats()))
    return 0


_COMMANDS = {
    "generate": _command_generate,
    "recommend": _command_recommend,
    "table2": _command_table2,
    "prop1": _command_prop1,
    "ablation": _command_ablation,
    "evaluate": _command_evaluate,
    "serve": _command_serve,
    "stats": _command_stats,
    "validate": _command_validate,
    "worker": _command_worker,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handler = _COMMANDS[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
