"""Sequential (multi-round) fairness-aware group recommendations.

The paper's discussion section anticipates a system that keeps serving a
caregiver over time; the authors' follow-up work studies exactly this
*sequential* setting, where fairness should hold not only within one
recommendation list but across a sequence of them (a patient who was
ignored this week should be prioritised next week).

:class:`SequentialGroupRecommender` implements that extension on top of
the existing candidate model:

* each round selects ``z`` items among the candidates not yet shown in
  earlier rounds;
* member *weights* track how well each member has been served so far
  (satisfaction-aware priority): members with low cumulative
  satisfaction get a boost in the next round's pair ordering;
* the run records per-round fairness, value, and the cumulative
  fairness ("is there at least one round that was fair to u") so the
  caregiver can audit the whole sequence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from .candidates import GroupCandidates
from .fairness import FairnessReport, fairness_report
from .greedy import FairnessAwareGreedy, GroupRecommendation


@dataclass(frozen=True)
class SequentialRound:
    """The outcome of one round of the sequence."""

    round_index: int
    recommendation: GroupRecommendation
    member_weights: dict[str, float]

    @property
    def items(self) -> tuple[str, ...]:
        """Items recommended in this round."""
        return self.recommendation.items

    @property
    def fairness(self) -> float:
        """Within-round fairness of this round's selection."""
        return self.recommendation.fairness


@dataclass
class SequentialRunReport:
    """Aggregate view over a whole sequence of rounds."""

    rounds: list[SequentialRound] = field(default_factory=list)

    @property
    def num_rounds(self) -> int:
        """Number of executed rounds."""
        return len(self.rounds)

    def all_items(self) -> list[str]:
        """Every item recommended over the sequence, in order."""
        items: list[str] = []
        for round_result in self.rounds:
            items.extend(round_result.items)
        return items

    def mean_round_fairness(self) -> float:
        """Average within-round fairness."""
        if not self.rounds:
            return 0.0
        return sum(r.fairness for r in self.rounds) / len(self.rounds)

    def cumulative_report(self, candidates: GroupCandidates) -> FairnessReport:
        """Fairness of the *union* of all rounds (sequence-level fairness)."""
        return fairness_report(candidates, self.all_items())


class SequentialGroupRecommender:
    """Run the fairness-aware selection over several rounds.

    Parameters
    ----------
    base_selector:
        The per-round selection algorithm (Algorithm 1 by default).
    satisfaction_boost:
        How strongly under-served members are prioritised in later
        rounds.  0 disables the re-weighting (every round is independent
        apart from the exclusion of already-shown items).
    """

    def __init__(
        self,
        base_selector: FairnessAwareGreedy | None = None,
        satisfaction_boost: float = 1.0,
    ) -> None:
        if satisfaction_boost < 0:
            raise ValueError("satisfaction_boost must be non-negative")
        self.base_selector = base_selector or FairnessAwareGreedy()
        self.satisfaction_boost = satisfaction_boost

    # -- public API --------------------------------------------------------------

    def run(
        self,
        candidates: GroupCandidates,
        z: int,
        num_rounds: int,
    ) -> SequentialRunReport:
        """Execute ``num_rounds`` rounds of ``z`` recommendations each.

        Items already recommended in earlier rounds are removed from the
        candidate pool of later rounds; the run stops early when the
        pool is exhausted.
        """
        if z <= 0:
            raise ValueError("z must be positive")
        if num_rounds <= 0:
            raise ValueError("num_rounds must be positive")
        report = SequentialRunReport()
        shown: set[str] = set()
        weights = {member: 1.0 for member in candidates.group}

        for round_index in range(num_rounds):
            remaining = [
                item_id
                for item_id in candidates.group_relevance
                if item_id not in shown
            ]
            if not remaining:
                break
            round_candidates = candidates.restrict_to(remaining)
            ordered_members = self._member_order(weights)
            recommendation = self._select_with_member_order(
                round_candidates, z, ordered_members
            )
            shown.update(recommendation.items)
            weights = self._updated_weights(
                round_candidates, recommendation.items, weights
            )
            report.rounds.append(
                SequentialRound(
                    round_index=round_index,
                    recommendation=recommendation,
                    member_weights=dict(weights),
                )
            )
        return report

    # -- internals ------------------------------------------------------------------

    def _member_order(self, weights: dict[str, float]) -> list[str]:
        """Members sorted by descending priority (least served first)."""
        return [
            member
            for member, _ in sorted(
                weights.items(), key=lambda pair: (-pair[1], pair[0])
            )
        ]

    def _select_with_member_order(
        self,
        candidates: GroupCandidates,
        z: int,
        ordered_members: Sequence[str],
    ) -> GroupRecommendation:
        """Run the base selector with the group re-ordered by priority.

        Algorithm 1 serves members in the order they appear in the group,
        so placing under-served members first means they receive their
        best remaining items earliest in the round.
        """
        reordered = GroupCandidates(
            group=type(candidates.group)(
                member_ids=list(ordered_members),
                caregiver_id=candidates.group.caregiver_id,
                name=candidates.group.name,
            ),
            relevance=candidates.relevance,
            group_relevance=candidates.group_relevance,
            top_k=candidates.top_k,
        )
        return self.base_selector.select(reordered, z)

    def _updated_weights(
        self,
        candidates: GroupCandidates,
        selected: Sequence[str],
        weights: dict[str, float],
    ) -> dict[str, float]:
        """Raise the priority of members the round served poorly."""
        from ..eval.metrics import user_satisfaction

        updated: dict[str, float] = {}
        for member, weight in weights.items():
            satisfaction = user_satisfaction(candidates, list(selected), member)
            # Members with low satisfaction accumulate priority; a fully
            # satisfied member decays back towards the neutral weight 1.
            updated[member] = max(
                0.0, weight + self.satisfaction_boost * (1.0 - satisfaction)
            ) if satisfaction < 1.0 else 1.0
        return updated
