"""Group recommendation model (Section III.B, Definition 2).

:class:`GroupRecommender` wires the single-user recommender and an
aggregation strategy into the group pipeline the paper describes:

1. candidate items are the items *no* group member has rated;
2. the relevance of every candidate is predicted for every member with
   Equation 1 (peers are searched among the users outside the group,
   mirroring the MapReduce formulation of Section IV);
3. the per-member predictions are aggregated into the group relevance
   with the configured strategy (minimum or average in the paper);
4. the top-``k`` candidates by group relevance form the plain group
   recommendation, and the full candidate bundle feeds the
   fairness-aware selection algorithms.
"""

from __future__ import annotations

from typing import Sequence

from ..data.groups import Group
from ..data.ratings import RatingMatrix
from ..exceptions import EmptyGroupError
from ..kernels import DEFAULT_KERNEL, get_packed, items_unrated_by_all_packed
from ..similarity.base import UserSimilarity
from .aggregation import AggregationStrategy, AverageAggregation, get_aggregation
from .candidates import GroupCandidates
from .relevance import ScoredItem, SingleUserRecommender, rank_items


class GroupRecommender:
    """Aggregation-based group recommender (Definition 2).

    Parameters
    ----------
    matrix:
        The rating matrix.
    similarity:
        The user similarity measure feeding peer selection.
    aggregation:
        An :class:`AggregationStrategy` instance or its configuration
        name (``"average"``, ``"minimum"``, ...).
    peer_threshold:
        The ``δ`` of Definition 1.
    max_peers:
        Optional cap on the number of peers per member.
    top_k:
        The per-user ``k`` used for the fairness sets ``A_u``.
    exclude_group_from_peers:
        When true (default, and the behaviour of the paper's MapReduce
        jobs) the other group members are excluded from each member's
        peer set, so predictions rely on users outside the group.
    default_score:
        Score used for candidates that have no peer rating for a member;
        ``None`` drops such candidates from that member's table (they
        then disappear from the group candidates as well, since every
        member must score every candidate).
    kernel:
        ``"packed"`` (default) runs the group candidate scan over the
        packed CSR view; ``"dict"`` keeps the dict-of-dicts oracle.
        Results are bit-identical either way.
    """

    def __init__(
        self,
        matrix: RatingMatrix,
        similarity: UserSimilarity,
        aggregation: AggregationStrategy | str = "average",
        peer_threshold: float = 0.0,
        max_peers: int | None = None,
        top_k: int = 10,
        exclude_group_from_peers: bool = True,
        default_score: float | None = None,
        kernel: str = DEFAULT_KERNEL,
    ) -> None:
        if isinstance(aggregation, str):
            aggregation = get_aggregation(aggregation)
        self.matrix = matrix
        self.similarity = similarity
        self.kernel = kernel
        self.aggregation: AggregationStrategy = aggregation or AverageAggregation()
        self.top_k = top_k
        self.exclude_group_from_peers = exclude_group_from_peers
        self.single_user = SingleUserRecommender(
            matrix,
            similarity,
            peer_threshold=peer_threshold,
            max_peers=max_peers,
            default_score=default_score,
        )

    # -- candidate generation ------------------------------------------------

    def candidate_items(self, group: Group) -> list[str]:
        """Items of the matrix that no group member has rated.

        Both kernels return the same ids in the same (item-insertion)
        order; the packed path runs the scan in intern space.
        """
        if self.kernel == "packed":
            return items_unrated_by_all_packed(
                get_packed(self.matrix), group.member_ids
            )
        return self.matrix.items_unrated_by_all(group.member_ids)

    def member_relevance_table(
        self,
        group: Group,
        candidate_items: Sequence[str] | None = None,
    ) -> dict[str, dict[str, float]]:
        """``{member: {item: relevance(member, item)}}`` for the candidates."""
        if len(group) == 0:
            raise EmptyGroupError("group must not be empty")
        if candidate_items is None:
            candidate_items = self.candidate_items(group)
        exclude = group.member_ids if self.exclude_group_from_peers else []
        table: dict[str, dict[str, float]] = {}
        for member_id in group:
            other_members = [uid for uid in exclude if uid != member_id]
            table[member_id] = self.single_user.predict_items(
                member_id, candidate_items, exclude_peers=other_members
            )
        return table

    def build_candidates(
        self,
        group: Group,
        candidate_items: Sequence[str] | None = None,
        candidate_limit: int | None = None,
    ) -> GroupCandidates:
        """Build the :class:`GroupCandidates` bundle for the group.

        ``candidate_limit`` keeps only the ``m`` candidates with the best
        group relevance, matching the ``m`` knob of Section VI.
        """
        table = self.member_relevance_table(group, candidate_items)
        return GroupCandidates.from_relevance_table(
            group,
            table,
            aggregation=self.aggregation,
            top_k=self.top_k,
            candidate_limit=candidate_limit,
        )

    # -- plain group recommendation (Definition 2) -------------------------------

    def group_relevance(
        self,
        group: Group,
        candidate_items: Sequence[str] | None = None,
    ) -> dict[str, float]:
        """``relevanceG(G, i)`` for every candidate item."""
        table = self.member_relevance_table(group, candidate_items)
        return self.aggregation.aggregate_table(table)

    def recommend(
        self,
        group: Group,
        k: int = 10,
        candidate_items: Sequence[str] | None = None,
    ) -> list[ScoredItem]:
        """The ``k`` candidates with the highest group relevance."""
        scores = self.group_relevance(group, candidate_items)
        return rank_items(scores, k)

    def recommend_for_member(
        self, group: Group, member_id: str, k: int = 10
    ) -> list[ScoredItem]:
        """Single-user top-``k`` for one member over the group candidates."""
        if member_id not in group:
            raise EmptyGroupError(f"user {member_id!r} is not a member of the group")
        candidate_items = self.candidate_items(group)
        exclude = (
            [uid for uid in group.member_ids if uid != member_id]
            if self.exclude_group_from_peers
            else []
        )
        return self.single_user.recommend(
            member_id, k=k, candidate_items=candidate_items, exclude_peers=exclude
        )
