"""Brute-force optimal fairness-aware selection (Section III.D).

The reference method enumerates every ``(m choose z)`` subset ``D`` of
the candidate pool and keeps the one maximising ``value(G, D)``.  Its
complexity is exponential, which is exactly what Table II demonstrates;
it exists here as the ground-truth baseline for the heuristic and for
the quality-ratio ablation.
"""

from __future__ import annotations

import math
from itertools import combinations

from ..exceptions import InsufficientCandidatesError
from .candidates import GroupCandidates
from .fairness import fairness_report, total_group_relevance, satisfied_users
from .greedy import GroupRecommendation


def subset_count(m: int, z: int) -> int:
    """``(m choose z)`` — the number of subsets the brute force evaluates."""
    if z > m or z < 0:
        return 0
    return math.comb(m, z)


class BruteForceSelector:
    """Exhaustive search over all ``(m choose z)`` candidate subsets.

    Parameters
    ----------
    max_subsets:
        Safety valve: refuse to enumerate more than this many subsets
        (``None`` disables the check).  The paper itself could not push
        the brute force beyond ``m = 30`` for the same reason.
    """

    name = "brute-force"

    def __init__(self, max_subsets: int | None = 50_000_000) -> None:
        self.max_subsets = max_subsets

    def select(self, candidates: GroupCandidates, z: int) -> GroupRecommendation:
        """Return the subset of size ``z`` with the maximum ``value(G, D)``.

        Ties are broken towards the subset with the larger total group
        relevance and then lexicographically, so the result is
        deterministic.
        """
        if z <= 0:
            raise ValueError("z must be positive")
        item_ids = sorted(candidates.group_relevance)
        m = len(item_ids)
        if z > m:
            raise InsufficientCandidatesError(z, m)
        total = subset_count(m, z)
        if self.max_subsets is not None and total > self.max_subsets:
            raise MemoryError(
                f"brute force would enumerate {total} subsets "
                f"(limit {self.max_subsets}); reduce m or z"
            )

        group_size = len(candidates.group)
        best_subset: tuple[str, ...] | None = None
        best_key: tuple[float, float] | None = None
        for subset in combinations(item_ids, z):
            # Inline the fairness/value computation: this loop dominates
            # the Table II runtime, so avoid building reports per subset.
            satisfied = len(satisfied_users(candidates, subset))
            fairness_score = satisfied / group_size if group_size else 0.0
            relevance_sum = total_group_relevance(candidates, subset)
            value_score = fairness_score * relevance_sum
            key = (value_score, relevance_sum)
            if best_key is None or key > best_key:
                best_key = key
                best_subset = subset
        assert best_subset is not None  # z >= 1 and m >= z guarantee a subset
        report = fairness_report(candidates, list(best_subset))
        return GroupRecommendation(
            items=tuple(best_subset),
            report=report,
            algorithm=self.name,
        )


def brute_force_selection(
    candidates: GroupCandidates, z: int, max_subsets: int | None = 50_000_000
) -> GroupRecommendation:
    """Convenience wrapper: run the exhaustive search once."""
    return BruteForceSelector(max_subsets=max_subsets).select(candidates, z)
