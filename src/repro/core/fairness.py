"""Fairness of a recommendation set (Section III.C, Definition 3).

Given a group ``G`` and a set of recommendations ``D``:

* ``D`` is *fair to a user u* if it contains at least one item from the
  user's top-``k`` candidate set;
* ``fairness(G, D) = |G_D| / |G|`` where ``G_D`` is the set of users to
  whom ``D`` is fair;
* ``value(G, D) = fairness(G, D) · Σ_{i ∈ D} relevanceG(G, i)``.

The functions in this module evaluate those quantities on top of a
:class:`~repro.core.candidates.GroupCandidates` bundle; they are used by
every selection algorithm, by the evaluation metrics and by the tests of
Proposition 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence


from .candidates import GroupCandidates


def is_fair_to_user(
    candidates: GroupCandidates, selection: Iterable[str], user_id: str
) -> bool:
    """Whether ``selection`` contains at least one of the user's top-k items."""
    top_items = candidates.user_top_items(user_id)
    return any(item_id in top_items for item_id in selection)


def satisfied_users(
    candidates: GroupCandidates, selection: Iterable[str]
) -> list[str]:
    """``G_D`` — the group members to whom the selection is fair."""
    selection = list(selection)
    return [
        user_id
        for user_id in candidates.group
        if is_fair_to_user(candidates, selection, user_id)
    ]


def fairness(candidates: GroupCandidates, selection: Iterable[str]) -> float:
    """``fairness(G, D) = |G_D| / |G|`` (Definition 3)."""
    group_size = len(candidates.group)
    if group_size == 0:
        return 0.0
    return len(satisfied_users(candidates, selection)) / group_size


def total_group_relevance(
    candidates: GroupCandidates, selection: Iterable[str]
) -> float:
    """``Σ_{i ∈ D} relevanceG(G, i)`` over the selected items."""
    return sum(candidates.item_group_relevance(item_id) for item_id in selection)


def value(candidates: GroupCandidates, selection: Iterable[str]) -> float:
    """``value(G, D) = fairness(G, D) · Σ relevanceG(G, i)``."""
    selection = list(selection)
    return fairness(candidates, selection) * total_group_relevance(
        candidates, selection
    )


@dataclass(frozen=True)
class FairnessReport:
    """A full breakdown of Definition 3 for one selection.

    Attributes
    ----------
    selection:
        The evaluated item ids, in selection order.
    fairness:
        ``|G_D| / |G|``.
    value:
        ``fairness · Σ relevanceG``.
    total_relevance:
        ``Σ relevanceG`` over the selection.
    satisfied_users:
        The members to whom the selection is fair.
    unsatisfied_users:
        The remaining members.
    per_user_best_rank:
        For every member, the best (lowest) rank that any selected item
        achieves in that member's personal ranking — a finer-grained
        satisfaction signal than the binary fairness test.
    """

    selection: tuple[str, ...]
    fairness: float
    value: float
    total_relevance: float
    satisfied_users: tuple[str, ...]
    unsatisfied_users: tuple[str, ...]
    per_user_best_rank: dict[str, int | None]


def fairness_report(
    candidates: GroupCandidates, selection: Sequence[str]
) -> FairnessReport:
    """Evaluate a selection and return the full :class:`FairnessReport`."""
    selection = list(selection)
    selection_set = set(selection)
    satisfied = satisfied_users(candidates, selection)
    unsatisfied = [
        user_id for user_id in candidates.group if user_id not in set(satisfied)
    ]
    best_ranks: dict[str, int | None] = {}
    for user_id in candidates.group:
        ranking = candidates.user_ranking(user_id)
        best: int | None = None
        for rank, scored in enumerate(ranking):
            if scored.item_id in selection_set:
                best = rank
                break
        best_ranks[user_id] = best
    total = total_group_relevance(candidates, selection)
    fair = fairness(candidates, selection)
    return FairnessReport(
        selection=tuple(selection),
        fairness=fair,
        value=fair * total,
        total_relevance=total,
        satisfied_users=tuple(satisfied),
        unsatisfied_users=tuple(unsatisfied),
        per_user_best_rank=best_ranks,
    )
