"""Local-search refinement of the greedy selection (extension).

The paper notes that "a number of lower-complexity heuristics have been
proposed to locate subsets of elements" and picks the pair-based greedy
construction of Algorithm 1.  A natural follow-up — and the basis of the
quality ablation in ``benchmarks/bench_value_quality.py`` — is to refine
the greedy result with hill-climbing swaps: repeatedly try to exchange a
selected item for an unselected candidate whenever the exchange
increases ``value(G, D)``, until no improving swap exists or an
iteration budget is exhausted.

The swap refinement can only improve the value of the greedy solution
and stays polynomial (each pass is ``O(z · (m - z))`` evaluations), so
it sits strictly between Algorithm 1 and the brute force in the
cost/quality trade-off.
"""

from __future__ import annotations

from .candidates import GroupCandidates
from .fairness import fairness_report, value
from .greedy import FairnessAwareGreedy, GroupRecommendation


class SwapRefinementSelector:
    """Greedy construction followed by best-improvement swaps.

    Parameters
    ----------
    max_passes:
        Maximum number of full improvement passes (each pass scans every
        selected/unselected pair once).
    restrict_to_top_k:
        Forwarded to the underlying greedy constructor.
    """

    name = "greedy+swap"

    def __init__(
        self, max_passes: int = 10, restrict_to_top_k: bool = True
    ) -> None:
        if max_passes <= 0:
            raise ValueError("max_passes must be positive")
        self.max_passes = max_passes
        self.greedy = FairnessAwareGreedy(restrict_to_top_k=restrict_to_top_k)

    def select(self, candidates: GroupCandidates, z: int) -> GroupRecommendation:
        """Run greedy construction, then improve it with swaps."""
        initial = self.greedy.select(candidates, z)
        selection = list(initial.items)
        current_value = value(candidates, selection)
        all_items = set(candidates.group_relevance)

        for _ in range(self.max_passes):
            improved = False
            outside = sorted(all_items - set(selection))
            for position, selected_item in enumerate(list(selection)):
                best_replacement: str | None = None
                best_value = current_value
                for candidate_item in outside:
                    trial = list(selection)
                    trial[position] = candidate_item
                    trial_value = value(candidates, trial)
                    if trial_value > best_value:
                        best_value = trial_value
                        best_replacement = candidate_item
                if best_replacement is not None:
                    outside.remove(best_replacement)
                    outside.append(selected_item)
                    outside.sort()
                    selection[position] = best_replacement
                    current_value = best_value
                    improved = True
            if not improved:
                break

        report = fairness_report(candidates, selection)
        return GroupRecommendation(
            items=tuple(selection),
            report=report,
            algorithm=self.name,
        )


def swap_selection(
    candidates: GroupCandidates, z: int, max_passes: int = 10
) -> GroupRecommendation:
    """Convenience wrapper: greedy + swap refinement."""
    return SwapRefinementSelector(max_passes=max_passes).select(candidates, z)
