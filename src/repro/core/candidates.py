"""Candidate model shared by the fairness-aware selection algorithms.

The fairness definition (Definition 3) and the selection algorithms
(Algorithm 1, the brute force optimum and the local-search extension)
all operate on the same information:

* the group ``G``;
* the candidate items (items no group member has rated);
* the per-member relevance table ``relevance(u, i)``;
* the aggregated group relevance ``relevanceG(G, i)``;
* the per-member top-``k`` sets ``A_u`` used by the fairness test.

:class:`GroupCandidates` bundles those pieces.  It can be built from a
relevance table plus an aggregation strategy (the normal pipeline path)
or constructed directly from synthetic scores (how the Table II
benchmark controls the candidate pool size ``m``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..data.groups import Group
from ..exceptions import EmptyGroupError
from .aggregation import AggregationStrategy, AverageAggregation
from .relevance import ScoredItem, rank_items


@dataclass
class GroupCandidates:
    """Everything the fairness-aware selection needs about one group.

    Parameters
    ----------
    group:
        The caregiver group.
    relevance:
        ``{user_id: {item_id: relevance}}`` — per-member predictions for
        each candidate item.  Every member must score every candidate
        (the builder guarantees this by intersecting the per-user
        predictions).
    group_relevance:
        ``{item_id: relevanceG}`` — aggregated group scores.
    top_k:
        The ``k`` used to build the per-user fairness sets ``A_u``.
    """

    group: Group
    relevance: dict[str, dict[str, float]]
    group_relevance: dict[str, float]
    top_k: int
    _user_rankings: dict[str, list[ScoredItem]] = field(
        default_factory=dict, repr=False, compare=False
    )
    _user_top_sets: dict[str, set[str]] = field(
        default_factory=dict, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.top_k <= 0:
            raise ValueError("top_k must be positive")
        missing = [u for u in self.group if u not in self.relevance]
        if missing:
            raise ValueError(
                f"relevance table misses group members: {missing}"
            )
        # The fairness sets A_u only need the top-k prefix, which the
        # bounded-heap rank_items path selects without sorting the whole
        # table; the full per-member rankings build lazily on first
        # user_ranking() access.
        self._user_rankings = {}
        self._user_top_sets = {
            user_id: {
                item.item_id
                for item in rank_items(self.relevance[user_id], self.top_k)
            }
            for user_id in self.group
        }

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_relevance_table(
        cls,
        group: Group,
        relevance: Mapping[str, Mapping[str, float]],
        aggregation: AggregationStrategy | None = None,
        top_k: int = 10,
        candidate_limit: int | None = None,
    ) -> "GroupCandidates":
        """Build candidates from per-member predictions.

        Only items predicted for *every* member are kept (Definition 2
        needs a score from each member).  ``candidate_limit`` optionally
        truncates the pool to the ``m`` items with the best group
        relevance — this is the paper's ``m`` knob in Section VI.
        """
        if len(group) == 0:
            raise EmptyGroupError("group must not be empty")
        missing = [user_id for user_id in group if user_id not in relevance]
        if missing:
            raise ValueError(f"relevance table misses group members: {missing}")
        aggregation = aggregation or AverageAggregation()
        table: dict[str, dict[str, float]] = {
            user_id: dict(relevance[user_id]) for user_id in group
        }
        common_items = set(table[group.member_ids[0]])
        for user_id in group.member_ids[1:]:
            common_items &= set(table[user_id])
        table = {
            user_id: {
                item_id: scores[item_id]
                for item_id in common_items
            }
            for user_id, scores in table.items()
        }
        group_relevance = aggregation.aggregate_table(table)
        if candidate_limit is not None and candidate_limit < len(group_relevance):
            kept = {
                item.item_id
                for item in rank_items(group_relevance, candidate_limit)
            }
            group_relevance = {
                item_id: score
                for item_id, score in group_relevance.items()
                if item_id in kept
            }
            table = {
                user_id: {
                    item_id: score
                    for item_id, score in scores.items()
                    if item_id in kept
                }
                for user_id, scores in table.items()
            }
        return cls(
            group=group,
            relevance=table,
            group_relevance=group_relevance,
            top_k=top_k,
        )

    # -- access ---------------------------------------------------------------------

    @property
    def item_ids(self) -> list[str]:
        """Candidate item ids sorted by descending group relevance."""
        return [item.item_id for item in rank_items(self.group_relevance)]

    @property
    def num_candidates(self) -> int:
        """The candidate pool size ``m``."""
        return len(self.group_relevance)

    def user_ranking(self, user_id: str) -> list[ScoredItem]:
        """``A_u`` as a full ranking (most relevant candidate first)."""
        ranking = self._user_rankings.get(user_id)
        if ranking is None:
            ranking = rank_items(self.relevance[user_id])
            self._user_rankings[user_id] = ranking
        return list(ranking)

    def user_top_items(self, user_id: str) -> set[str]:
        """The top-``k`` candidate set of ``user_id`` (fairness test set)."""
        return set(self._user_top_sets[user_id])

    def user_relevance(self, user_id: str, item_id: str) -> float:
        """``relevance(u, i)`` for a candidate item."""
        return self.relevance[user_id][item_id]

    def item_group_relevance(self, item_id: str) -> float:
        """``relevanceG(G, i)`` for a candidate item."""
        return self.group_relevance[item_id]

    def top_group_items(self, n: int) -> list[ScoredItem]:
        """The ``n`` candidates with the highest group relevance."""
        return rank_items(self.group_relevance, n)

    def restrict_to(self, item_ids: Sequence[str]) -> "GroupCandidates":
        """A copy restricted to ``item_ids`` (used by ablations and tests)."""
        keep = [item_id for item_id in item_ids if item_id in self.group_relevance]
        return GroupCandidates(
            group=self.group,
            relevance={
                user_id: {item_id: scores[item_id] for item_id in keep}
                for user_id, scores in self.relevance.items()
            },
            group_relevance={
                item_id: self.group_relevance[item_id] for item_id in keep
            },
            top_k=self.top_k,
        )
