"""End-to-end caregiver recommendation pipeline.

This module mirrors Figure 1 of the paper in library form: the
recommendation engine reads patient profiles and document ratings and
produces, for a caregiver's group, a set of suggestions that is both
highly relevant and fair.  :class:`CaregiverPipeline` wires together

* a :class:`~repro.data.datasets.HealthDataset` (users, items, ratings,
  ontology);
* a :class:`~repro.config.RecommenderConfig` selecting the similarity
  measure, the aggregation semantics, ``δ``, ``k``, ``z`` and ``m``;
* the :class:`~repro.core.group.GroupRecommender` and the fairness-aware
  selection algorithm (Algorithm 1 by default).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import DEFAULT_CONFIG, RecommenderConfig, resolve_positive
from ..data.datasets import HealthDataset
from ..data.groups import Group
from ..exceptions import ConfigurationError
from ..similarity.base import UserSimilarity
from ..similarity.hybrid import HybridSimilarity
from ..similarity.profile_sim import ProfileSimilarity
from ..similarity.ratings_sim import PearsonRatingSimilarity
from ..similarity.semantic_sim import SemanticSimilarity
from .brute_force import BruteForceSelector
from .candidates import GroupCandidates
from .fairness import FairnessReport
from .greedy import FairnessAwareGreedy, GroupRecommendation
from .group import GroupRecommender
from .relevance import ScoredItem
from .swap import SwapRefinementSelector


def build_similarity(
    dataset: HealthDataset, config: RecommenderConfig
) -> UserSimilarity:
    """Instantiate the similarity measure selected by ``config``.

    ``"ratings"`` → Pearson (Eq. 2), ``"profile"`` → TF-IDF cosine
    (Eq. 3), ``"semantic"`` → ontology harmonic mean (Eq. 4), and
    ``"hybrid"`` → the weighted combination of all three.
    """
    if config.similarity == "ratings":
        return PearsonRatingSimilarity(dataset.ratings, kernel=config.kernel)
    if config.similarity == "profile":
        return ProfileSimilarity(dataset.users)
    if config.similarity == "semantic":
        return SemanticSimilarity(dataset.users, dataset.ontology)
    if config.similarity == "hybrid":
        return HybridSimilarity(
            [
                PearsonRatingSimilarity(dataset.ratings, kernel=config.kernel),
                ProfileSimilarity(dataset.users),
                SemanticSimilarity(dataset.users, dataset.ontology),
            ],
            weights=list(config.hybrid_weights),
        )
    raise ConfigurationError(f"unknown similarity {config.similarity!r}")


def build_selector(name: str):
    """Instantiate a fairness-aware selection algorithm by name."""
    selectors = {
        "greedy": FairnessAwareGreedy,
        "brute-force": BruteForceSelector,
        "swap": SwapRefinementSelector,
    }
    try:
        return selectors[name]()
    except KeyError:
        raise ConfigurationError(
            f"unknown selector {name!r}; expected one of {sorted(selectors)}"
        ) from None


@dataclass(frozen=True)
class CaregiverRecommendation:
    """The pipeline output handed to the caregiver.

    Attributes
    ----------
    group:
        The caregiver group the recommendation was computed for.
    selection:
        The fairness-aware selection (Algorithm 1 result by default).
    plain_top_z:
        The plain top-``z`` by group relevance (Definition 2 only),
        useful for comparing against the fairness-aware selection.
    candidates:
        The underlying candidate bundle, exposing per-member relevance
        tables for inspection.
    """

    group: Group
    selection: GroupRecommendation
    plain_top_z: tuple[ScoredItem, ...]
    candidates: GroupCandidates

    @property
    def items(self) -> tuple[str, ...]:
        """The recommended item ids, in selection order."""
        return self.selection.items

    @property
    def report(self) -> FairnessReport:
        """Fairness breakdown of the selection."""
        return self.selection.report


class CaregiverPipeline:
    """The full recommendation pipeline of the paper's system.

    Parameters
    ----------
    dataset:
        The data bundle (users, items, ratings, ontology).
    config:
        Recommendation parameters; defaults to
        :data:`~repro.config.DEFAULT_CONFIG`.
    selector:
        The fairness-aware selection algorithm name (``"greedy"``,
        ``"swap"`` or ``"brute-force"``).
    """

    def __init__(
        self,
        dataset: HealthDataset,
        config: RecommenderConfig = DEFAULT_CONFIG,
        selector: str = "greedy",
    ) -> None:
        self.dataset = dataset
        self.config = config
        self.similarity = build_similarity(dataset, config)
        self.selector = build_selector(selector)
        self.group_recommender = GroupRecommender(
            matrix=dataset.ratings,
            similarity=self.similarity,
            aggregation=config.aggregation,
            peer_threshold=config.peer_threshold,
            max_peers=config.max_peers,
            top_k=config.top_k,
            kernel=config.kernel,
        )

    def build_candidates(self, group: Group) -> GroupCandidates:
        """Candidate bundle for ``group`` (pool capped at ``m``)."""
        return self.group_recommender.build_candidates(
            group, candidate_limit=self.config.candidate_pool_size
        )

    def recommend(self, group: Group, z: int | None = None) -> CaregiverRecommendation:
        """Produce the caregiver recommendation for ``group``.

        ``z`` defaults to ``config.top_z``; an explicit non-positive
        ``z`` raises :class:`~repro.exceptions.ConfigurationError`
        (it used to silently fall back to the default).
        """
        z = resolve_positive(z, self.config.top_z, "z")
        candidates = self.build_candidates(group)
        selection = self.selector.select(candidates, z)
        plain = tuple(candidates.top_group_items(z))
        return CaregiverRecommendation(
            group=group,
            selection=selection,
            plain_top_z=plain,
            candidates=candidates,
        )

    def recommend_for_user(self, user_id: str, k: int | None = None) -> list[ScoredItem]:
        """Single-user recommendation (Section III.A) for one patient.

        ``k`` defaults to ``config.top_k``; an explicit non-positive
        ``k`` raises :class:`~repro.exceptions.ConfigurationError`.
        """
        k = resolve_positive(k, self.config.top_k, "k")
        return self.group_recommender.single_user.recommend(user_id, k=k)
