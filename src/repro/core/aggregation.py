"""Group aggregation strategies (Section III.B, Definition 2).

The paper employs two designs with different semantics:

* **minimum** ("least misery") — strong user preferences act as a veto:
  the group relevance of an item is the minimum member relevance;
* **average** — satisfy the majority: the group relevance is the mean of
  the member relevances.

Both are implemented here, together with the other classical designs
(maximum / "most pleasure", median, multiplicative and Borda count) used
by the aggregation ablation benchmark.  Every strategy consumes the
per-member relevance scores of a *single* item (matching Definition 2,
which aggregates "without considering the whole set of recommendations
returned to the group"), except the Borda strategy which by construction
needs the per-member rankings and therefore operates on the full
candidate table.
"""

from __future__ import annotations

import math
import statistics
from abc import ABC, abstractmethod
from typing import Mapping, Sequence

from ..exceptions import ConfigurationError


class AggregationStrategy(ABC):
    """Maps the member relevance scores of an item to one group score."""

    #: Name used in configuration and reports.
    name: str = "aggregation"

    @abstractmethod
    def aggregate(self, scores: Sequence[float]) -> float:
        """Aggregate the member scores of a single item.

        ``scores`` is never empty; callers guarantee one score per group
        member (using a default for members without a prediction).
        """

    def aggregate_table(
        self, relevance_table: Mapping[str, Mapping[str, float]]
    ) -> dict[str, float]:
        """Aggregate a full ``{user: {item: score}}`` table.

        Only items present for every user are aggregated — Definition 2
        requires a relevance estimate from each member.
        """
        users = list(relevance_table)
        if not users:
            return {}
        common_items = set(relevance_table[users[0]])
        for user_id in users[1:]:
            common_items &= set(relevance_table[user_id])
        return {
            item_id: self.aggregate(
                [relevance_table[user_id][item_id] for user_id in users]
            )
            for item_id in common_items
        }

    def __call__(self, scores: Sequence[float]) -> float:
        return self.aggregate(scores)


class AverageAggregation(AggregationStrategy):
    """Mean of the member scores — "satisfying the majority"."""

    name = "average"

    def aggregate(self, scores: Sequence[float]) -> float:
        if not scores:
            raise ValueError("cannot aggregate an empty score list")
        return sum(scores) / len(scores)


class MinimumAggregation(AggregationStrategy):
    """Minimum member score — least misery, "preferences act as a veto"."""

    name = "minimum"

    def aggregate(self, scores: Sequence[float]) -> float:
        if not scores:
            raise ValueError("cannot aggregate an empty score list")
        return min(scores)


class MaximumAggregation(AggregationStrategy):
    """Maximum member score — "most pleasure" (extension strategy)."""

    name = "maximum"

    def aggregate(self, scores: Sequence[float]) -> float:
        if not scores:
            raise ValueError("cannot aggregate an empty score list")
        return max(scores)


class MedianAggregation(AggregationStrategy):
    """Median member score — robust majority variant (extension strategy)."""

    name = "median"

    def aggregate(self, scores: Sequence[float]) -> float:
        if not scores:
            raise ValueError("cannot aggregate an empty score list")
        return float(statistics.median(scores))


class MultiplicativeAggregation(AggregationStrategy):
    """Geometric mean of the member scores (extension strategy).

    Rewards items that every member likes at least moderately; a single
    very low score drags the product down, giving semantics between
    average and least misery.  Scores must be non-negative.
    """

    name = "multiplicative"

    def aggregate(self, scores: Sequence[float]) -> float:
        if not scores:
            raise ValueError("cannot aggregate an empty score list")
        if any(score < 0 for score in scores):
            raise ValueError("multiplicative aggregation requires non-negative scores")
        product = math.prod(scores)
        return product ** (1.0 / len(scores))


class BordaAggregation(AggregationStrategy):
    """Borda count over the member rankings (extension strategy).

    Operates on the full relevance table: each member contributes
    ``|items| - rank`` points per item (best item gets the most points),
    and the group score of an item is the average of its points.  The
    per-item :meth:`aggregate` method is not meaningful for Borda and
    raises.
    """

    name = "borda"

    def aggregate(self, scores: Sequence[float]) -> float:
        raise NotImplementedError(
            "Borda aggregation is rank based; use aggregate_table instead"
        )

    def aggregate_table(
        self, relevance_table: Mapping[str, Mapping[str, float]]
    ) -> dict[str, float]:
        users = list(relevance_table)
        if not users:
            return {}
        common_items = set(relevance_table[users[0]])
        for user_id in users[1:]:
            common_items &= set(relevance_table[user_id])
        if not common_items:
            return {}
        points: dict[str, float] = {item_id: 0.0 for item_id in common_items}
        num_items = len(common_items)
        for user_id in users:
            ranked = sorted(
                common_items,
                key=lambda item_id: (-relevance_table[user_id][item_id], item_id),
            )
            for rank, item_id in enumerate(ranked):
                points[item_id] += float(num_items - 1 - rank)
        return {item_id: score / len(users) for item_id, score in points.items()}


#: Registry of all aggregation strategies keyed by their configuration name.
AGGREGATIONS: dict[str, type[AggregationStrategy]] = {
    "average": AverageAggregation,
    "minimum": MinimumAggregation,
    "maximum": MaximumAggregation,
    "median": MedianAggregation,
    "multiplicative": MultiplicativeAggregation,
    "borda": BordaAggregation,
}


def get_aggregation(name: str) -> AggregationStrategy:
    """Instantiate an aggregation strategy by configuration name."""
    try:
        return AGGREGATIONS[name]()
    except KeyError:
        raise ConfigurationError(
            f"unknown aggregation {name!r}; expected one of {sorted(AGGREGATIONS)}"
        ) from None
