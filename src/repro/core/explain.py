"""Human-readable explanations of a fairness-aware recommendation.

The paper's platform goal is to let caregivers *control* what reaches
their patients; an explanation of why each item was selected supports
that control (and the related work it cites — explanation-driven
recommendation — motivates the same).  This module turns the artefacts
the selection algorithms already produce (selection steps, per-member
relevance, fairness report) into structured explanation objects plus a
plain-text rendering suitable for a caregiver-facing UI or a log.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .candidates import GroupCandidates
from .greedy import GroupRecommendation


@dataclass(frozen=True)
class ItemExplanation:
    """Why a single item made it into the recommendation set."""

    item_id: str
    group_relevance: float
    #: Member whose relevance drove the greedy pick (empty for selectors
    #: that do not record steps, e.g. brute force).
    selected_for: str
    #: Member whose candidate list supplied the item (greedy only).
    drawn_from: str
    #: Members for whom the item belongs to their personal top-k.
    top_k_for: tuple[str, ...]
    #: ``relevance(u, item)`` for every member.
    member_relevance: dict[str, float]

    def best_member(self) -> str:
        """The member with the highest relevance for this item."""
        return max(
            self.member_relevance,
            key=lambda member: (self.member_relevance[member], member),
        )


@dataclass(frozen=True)
class RecommendationExplanation:
    """Explanation of a whole recommendation set."""

    items: tuple[ItemExplanation, ...]
    fairness: float
    satisfied_users: tuple[str, ...]
    unsatisfied_users: tuple[str, ...]

    def for_item(self, item_id: str) -> ItemExplanation:
        """The explanation of one selected item."""
        for item in self.items:
            if item.item_id == item_id:
                return item
        raise KeyError(f"item {item_id!r} is not part of the recommendation")

    def items_serving(self, user_id: str) -> list[ItemExplanation]:
        """All selected items that are in ``user_id``'s personal top-k."""
        return [item for item in self.items if user_id in item.top_k_for]


def explain_recommendation(
    candidates: GroupCandidates, recommendation: GroupRecommendation
) -> RecommendationExplanation:
    """Build the explanation for a selection over ``candidates``."""
    step_by_item = {step.item_id: step for step in recommendation.steps}
    explanations: list[ItemExplanation] = []
    for item_id in recommendation.items:
        step = step_by_item.get(item_id)
        member_relevance = {
            member: candidates.user_relevance(member, item_id)
            for member in candidates.group
        }
        top_k_for = tuple(
            member
            for member in candidates.group
            if item_id in candidates.user_top_items(member)
        )
        explanations.append(
            ItemExplanation(
                item_id=item_id,
                group_relevance=candidates.item_group_relevance(item_id),
                selected_for=step.target_user if step else "",
                drawn_from=step.source_user if step else "",
                top_k_for=top_k_for,
                member_relevance=member_relevance,
            )
        )
    report = recommendation.report
    return RecommendationExplanation(
        items=tuple(explanations),
        fairness=report.fairness,
        satisfied_users=report.satisfied_users,
        unsatisfied_users=report.unsatisfied_users,
    )


def render_explanation(
    explanation: RecommendationExplanation,
    item_titles: dict[str, str] | None = None,
    max_items: int | None = None,
) -> str:
    """Render an explanation as caregiver-readable text."""
    item_titles = item_titles or {}
    lines: list[str] = []
    lines.append(
        f"The set is fair to {len(explanation.satisfied_users)} of "
        f"{len(explanation.satisfied_users) + len(explanation.unsatisfied_users)} "
        f"patients (fairness {explanation.fairness:.2f})."
    )
    if explanation.unsatisfied_users:
        lines.append(
            "Patients without a personally relevant item: "
            + ", ".join(explanation.unsatisfied_users)
        )
    items = explanation.items if max_items is None else explanation.items[:max_items]
    for item in items:
        title = item_titles.get(item.item_id, "")
        title_part = f" ({title})" if title else ""
        reason: list[str] = [
            f"group relevance {item.group_relevance:.2f}",
        ]
        if item.selected_for:
            reason.append(
                f"picked because it is the best remaining match for {item.selected_for}"
            )
        if item.top_k_for:
            reason.append("personally relevant to " + ", ".join(item.top_k_for))
        lines.append(f"- {item.item_id}{title_part}: " + "; ".join(reason))
    return "\n".join(lines)


__all__ = [
    "ItemExplanation",
    "RecommendationExplanation",
    "explain_recommendation",
    "render_explanation",
]
