"""Core contribution: fairness-aware group recommendation."""

from .aggregation import (
    AGGREGATIONS,
    AggregationStrategy,
    AverageAggregation,
    BordaAggregation,
    MaximumAggregation,
    MedianAggregation,
    MinimumAggregation,
    MultiplicativeAggregation,
    get_aggregation,
)
from .brute_force import BruteForceSelector, brute_force_selection, subset_count
from .candidates import GroupCandidates
from .explain import (
    ItemExplanation,
    RecommendationExplanation,
    explain_recommendation,
    render_explanation,
)
from .fairness import (
    FairnessReport,
    fairness,
    fairness_report,
    is_fair_to_user,
    satisfied_users,
    total_group_relevance,
    value,
)
from .greedy import (
    FairnessAwareGreedy,
    GroupRecommendation,
    SelectionStep,
    greedy_selection,
)
from .group import GroupRecommender
from .pipeline import (
    CaregiverPipeline,
    CaregiverRecommendation,
    build_selector,
    build_similarity,
)
from .relevance import (
    ScoredItem,
    SingleUserRecommender,
    predict_relevance,
    rank_items,
)
from .sequential import (
    SequentialGroupRecommender,
    SequentialRound,
    SequentialRunReport,
)
from .swap import SwapRefinementSelector, swap_selection

__all__ = [
    "AGGREGATIONS",
    "AggregationStrategy",
    "AverageAggregation",
    "BordaAggregation",
    "BruteForceSelector",
    "CaregiverPipeline",
    "CaregiverRecommendation",
    "FairnessAwareGreedy",
    "FairnessReport",
    "GroupCandidates",
    "GroupRecommendation",
    "GroupRecommender",
    "ItemExplanation",
    "MaximumAggregation",
    "MedianAggregation",
    "MinimumAggregation",
    "MultiplicativeAggregation",
    "RecommendationExplanation",
    "ScoredItem",
    "SelectionStep",
    "SequentialGroupRecommender",
    "SequentialRound",
    "SequentialRunReport",
    "SingleUserRecommender",
    "SwapRefinementSelector",
    "brute_force_selection",
    "explain_recommendation",
    "build_selector",
    "build_similarity",
    "fairness",
    "fairness_report",
    "get_aggregation",
    "greedy_selection",
    "is_fair_to_user",
    "predict_relevance",
    "rank_items",
    "render_explanation",
    "satisfied_users",
    "subset_count",
    "swap_selection",
    "total_group_relevance",
    "value",
]
