"""Single-user relevance prediction (Section III.A, Equation 1).

Given a user ``u``, their peers ``P_u`` and an unrated item ``i``, the
relevance of ``i`` for ``u`` is the similarity-weighted average of the
peer ratings:

    relevance(u, i) = Σ_{u' ∈ P_u ∩ U(i)} simU(u, u') · rating(u', i)
                      ─────────────────────────────────────────────
                      Σ_{u' ∈ P_u ∩ U(i)} simU(u, u')

:class:`SingleUserRecommender` wraps the equation together with peer
selection and top-k ranking, producing the per-user recommendation lists
``A_u`` that both the plain group recommender and the fairness-aware
selection (Algorithm 1) consume.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from ..data.ratings import RatingMatrix
from ..similarity.base import UserSimilarity
from ..similarity.peers import Peer, PeerSelector


@dataclass(frozen=True)
class ScoredItem:
    """An item with a predicted relevance score for some user or group."""

    item_id: str
    score: float

    def as_tuple(self) -> tuple[str, float]:
        """Return ``(item_id, score)``."""
        return (self.item_id, self.score)


def predict_relevance(
    peer_similarities: Mapping[str, float],
    item_ratings: Mapping[str, float],
) -> float | None:
    """Evaluate Equation 1 from peer similarities and item ratings.

    Parameters
    ----------
    peer_similarities:
        ``{peer_id: simU(u, peer)}`` for the peers of the target user.
    item_ratings:
        ``{user_id: rating(user, i)}`` for the users that rated ``i``.

    Returns
    -------
    The predicted relevance, or ``None`` when no peer rated the item or
    the similarity mass is zero (the equation is undefined then).
    """
    numerator = 0.0
    denominator = 0.0
    for peer_id, similarity in peer_similarities.items():
        rating = item_ratings.get(peer_id)
        if rating is None:
            continue
        numerator += similarity * rating
        denominator += similarity
    if denominator == 0.0:
        return None
    return numerator / denominator


def predict_table(
    matrix: RatingMatrix,
    user_id: str,
    peer_similarities: Mapping[str, float],
    candidate_items: Sequence[str],
    default_score: float | None = None,
) -> dict[str, float]:
    """Equation 1 over many candidate items for a fixed peer set.

    This is the shared inner loop of :meth:`SingleUserRecommender.predict_items`
    and of the serving layer's cached relevance rows — both go through
    this function so warm and cold results are bit-identical.  Items the
    user already rated keep their actual rating; items with undefined
    predictions are omitted unless ``default_score`` is given.
    """
    predictions: dict[str, float] = {}
    for item_id in candidate_items:
        existing = matrix.get(user_id, item_id)
        if existing is not None:
            predictions[item_id] = existing
            continue
        predicted = predict_relevance(peer_similarities, matrix.users_of(item_id))
        if predicted is None:
            if default_score is not None:
                predictions[item_id] = default_score
            continue
        predictions[item_id] = predicted
    return predictions


#: ``rank_items`` switches from a full sort to bounded-heap selection
#: when ``k`` is smaller than this fraction of the score table.  Below
#: the ratio, ``heapq.nsmallest`` does O(n log k) comparisons instead of
#: O(n log n); above it, timsort's galloping wins.
RANK_HEAP_RATIO: int = 8


def rank_key(pair: tuple[str, float]) -> tuple[float, str]:
    """The pinned ranking order of an ``(item_id, score)`` pair.

    Score descending, ties broken by item id ascending.  Every ranking
    path in the library — the full sort, the bounded heap, and the
    packed top-k kernel — orders by exactly this key, which is what
    makes their outputs interchangeable bit for bit.
    """
    return (-pair[1], pair[0])


def rank_items(scores: Mapping[str, float], k: int | None = None) -> list[ScoredItem]:
    """Sort ``{item: score}`` by descending score (ties by item id).

    ``k`` limits the result to the top-k items; ``None`` keeps all.
    When ``k`` is small relative to the table (< ``len(scores) //
    RANK_HEAP_RATIO``) the selection runs on a bounded heap instead of a
    full sort; ``heapq.nsmallest`` is stable under its key, so the two
    paths return identical lists, ties included.
    """
    if k is not None and 0 <= k < len(scores) // RANK_HEAP_RATIO:
        ranked = heapq.nsmallest(k, scores.items(), key=rank_key)
    else:
        ranked = sorted(scores.items(), key=rank_key)
        if k is not None:
            ranked = ranked[:k]
    return [ScoredItem(item_id=item_id, score=score) for item_id, score in ranked]


class SingleUserRecommender:
    """Collaborative-filtering recommender for individual patients.

    Parameters
    ----------
    matrix:
        The rating matrix.
    similarity:
        The ``simU`` measure used for peer selection.
    peer_threshold:
        The ``δ`` of Definition 1.
    max_peers:
        Optional cap on the number of peers per user.
    default_score:
        Relevance assigned to items for which Equation 1 is undefined
        (no peer rated them).  ``None`` (the default) omits such items
        from the predictions entirely, which is the paper's behaviour.
    """

    def __init__(
        self,
        matrix: RatingMatrix,
        similarity: UserSimilarity,
        peer_threshold: float = 0.0,
        max_peers: int | None = None,
        default_score: float | None = None,
    ) -> None:
        self.matrix = matrix
        self.similarity = similarity
        self.peer_selector = PeerSelector(
            similarity, threshold=peer_threshold, max_peers=max_peers
        )
        self.default_score = default_score
        self._peer_cache: dict[tuple[str, frozenset[str]], dict[str, float]] = {}

    # -- peers ---------------------------------------------------------------

    def peers(self, user_id: str, exclude: Iterable[str] = ()) -> list[Peer]:
        """The peers ``P_u`` of ``user_id`` (excluding ``exclude`` users)."""
        return self.peer_selector.peers_from_matrix(
            user_id, self.matrix, exclude=exclude
        )

    def _peer_similarities(
        self, user_id: str, exclude: Iterable[str] = ()
    ) -> dict[str, float]:
        key = (user_id, frozenset(exclude))
        if key not in self._peer_cache:
            peers = self.peers(user_id, exclude=exclude)
            self._peer_cache[key] = {peer.user_id: peer.similarity for peer in peers}
        return self._peer_cache[key]

    def invalidate_cache(self) -> None:
        """Drop cached peer lists (call after mutating the matrix)."""
        self._peer_cache.clear()

    # -- relevance ---------------------------------------------------------------

    def relevance(
        self, user_id: str, item_id: str, exclude_peers: Iterable[str] = ()
    ) -> float | None:
        """Equation 1 for one ``(user, item)`` pair.

        Returns the user's actual rating when the item is already rated
        (a rated item needs no prediction), ``None`` when the prediction
        is undefined and no ``default_score`` is configured.
        """
        existing = self.matrix.get(user_id, item_id)
        if existing is not None:
            return existing
        peer_similarities = self._peer_similarities(user_id, exclude_peers)
        item_ratings = self.matrix.users_of(item_id)
        predicted = predict_relevance(peer_similarities, item_ratings)
        if predicted is None:
            return self.default_score
        return predicted

    def predict_items(
        self,
        user_id: str,
        candidate_items: Sequence[str],
        exclude_peers: Iterable[str] = (),
    ) -> dict[str, float]:
        """Relevance predictions for every candidate item.

        Items with undefined predictions are omitted unless a
        ``default_score`` was configured.
        """
        peer_similarities = self._peer_similarities(user_id, exclude_peers)
        return predict_table(
            self.matrix,
            user_id,
            peer_similarities,
            candidate_items,
            default_score=self.default_score,
        )

    def recommend(
        self,
        user_id: str,
        k: int = 10,
        candidate_items: Sequence[str] | None = None,
        exclude_peers: Iterable[str] = (),
    ) -> list[ScoredItem]:
        """The top-``k`` recommendation list ``A_u`` for ``user_id``.

        By default candidates are every item of the matrix the user has
        not rated yet.
        """
        if candidate_items is None:
            candidate_items = self.matrix.unrated_items(
                user_id, self.matrix.item_ids()
            )
        else:
            candidate_items = self.matrix.unrated_items(user_id, candidate_items)
        predictions = self.predict_items(
            user_id, candidate_items, exclude_peers=exclude_peers
        )
        return rank_items(predictions, k)
