"""Fairness-aware greedy selection (Algorithm 1 of the paper).

The algorithm incrementally builds the recommendation set ``D``: for
each ordered pair of distinct group members ``(u_x, u_y)`` it adds the
item of ``u_y``'s candidate list ``A_{u_y}`` with the maximum relevance
for ``u_x``, looping over the pairs until ``|D| = z``.

Two details are left implicit by the paper's pseudo-code and are made
explicit (and documented) here:

* ``D`` is a *set*: re-selecting an item already in ``D`` would not grow
  it, so each pair step picks the best item of ``A_{u_y}`` **not yet in
  D** — otherwise the ``while |D| < z`` loop could never terminate.
* If every candidate has been selected before ``z`` is reached (i.e.
  ``z ≥ m``), the loop stops early; the caller receives all ``m``
  candidates.

Because each round of the double loop considers every ordered pair, a
full round adds (up to) ``|G|·(|G|−1)`` items — one per pair — and every
member ``u_x`` receives an item that is maximally relevant *to them*
from some other member's list.  This is what makes Proposition 1 hold:
as soon as ``z ≥ |G|``, at least one full pass over the pairs with
``u_x`` in the first position has completed for every member, so every
member has one of their top candidates in ``D`` and the fairness is 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..exceptions import InsufficientCandidatesError
from .candidates import GroupCandidates
from .fairness import FairnessReport, fairness_report


@dataclass(frozen=True)
class SelectionStep:
    """One item added by the greedy algorithm (for introspection)."""

    item_id: str
    #: The member whose relevance was maximised (``u_x`` in Algorithm 1).
    target_user: str
    #: The member whose candidate list supplied the item (``u_y``).
    source_user: str
    #: ``relevance(u_x, item)`` at selection time.
    relevance: float


@dataclass(frozen=True)
class GroupRecommendation:
    """The result of a fairness-aware selection algorithm."""

    items: tuple[str, ...]
    report: FairnessReport
    algorithm: str
    steps: tuple[SelectionStep, ...] = ()

    @property
    def fairness(self) -> float:
        """``fairness(G, D)`` of the selected set."""
        return self.report.fairness

    @property
    def value(self) -> float:
        """``value(G, D)`` of the selected set."""
        return self.report.value


class FairnessAwareGreedy:
    """Algorithm 1 — the paper's fairness-aware heuristic.

    Parameters
    ----------
    restrict_to_top_k:
        When true, each member's candidate list ``A_{u_y}`` is their
        top-``k`` list (as in the paper, where ``A_u`` denotes the top-k
        recommendations of ``u``); when false the full candidate ranking
        is used.  The default follows the paper.
    """

    name = "greedy"

    def __init__(self, restrict_to_top_k: bool = True) -> None:
        self.restrict_to_top_k = restrict_to_top_k

    def _candidate_list(
        self, candidates: GroupCandidates, user_id: str
    ) -> list[str]:
        ranking = [item.item_id for item in candidates.user_ranking(user_id)]
        if self.restrict_to_top_k:
            return ranking[: candidates.top_k]
        return ranking

    def select(
        self, candidates: GroupCandidates, z: int, strict: bool = False
    ) -> GroupRecommendation:
        """Select ``z`` items for the group.

        Parameters
        ----------
        candidates:
            The candidate bundle (relevance tables + group relevance).
        z:
            Number of recommendations to return.
        strict:
            When true, raise :class:`InsufficientCandidatesError` if the
            pool cannot fill ``z`` items; when false return what exists.
        """
        if z <= 0:
            raise ValueError("z must be positive")
        members: Sequence[str] = candidates.group.member_ids
        pool_size = candidates.num_candidates
        if strict and z > pool_size:
            raise InsufficientCandidatesError(z, pool_size)

        candidate_lists = {
            user_id: self._candidate_list(candidates, user_id) for user_id in members
        }
        selected: list[str] = []
        selected_set: set[str] = set()
        steps: list[SelectionStep] = []

        if len(members) == 1:
            # Degenerate case: Algorithm 1 iterates over ordered pairs of
            # *distinct* members, so a single-member group would select
            # nothing.  The sensible (and fairness-1) behaviour is to return
            # the member's own best candidates.
            only = members[0]
            for item_id in candidate_lists[only]:
                if len(selected) >= min(z, pool_size):
                    break
                selected.append(item_id)
                selected_set.add(item_id)
                steps.append(
                    SelectionStep(
                        item_id=item_id,
                        target_user=only,
                        source_user=only,
                        relevance=candidates.user_relevance(only, item_id),
                    )
                )
            report = fairness_report(candidates, selected)
            return GroupRecommendation(
                items=tuple(selected),
                report=report,
                algorithm=self.name,
                steps=tuple(steps),
            )
        # Upper bound on the number of usable items: the union of the
        # members' candidate lists (the paper's D can only contain items
        # from some A_u).
        usable = set()
        for items in candidate_lists.values():
            usable.update(items)
        target = min(z, len(usable))

        while len(selected) < target:
            progressed = False
            for user_x in members:
                for user_y in members:
                    if user_x == user_y:
                        continue
                    best_item = self._best_unselected(
                        candidates, candidate_lists[user_y], user_x, selected_set
                    )
                    if best_item is None:
                        continue
                    selected.append(best_item)
                    selected_set.add(best_item)
                    steps.append(
                        SelectionStep(
                            item_id=best_item,
                            target_user=user_x,
                            source_user=user_y,
                            relevance=candidates.user_relevance(user_x, best_item),
                        )
                    )
                    progressed = True
                    if len(selected) >= target:
                        break
                if len(selected) >= target:
                    break
            if not progressed:
                # No pair could contribute a new item (all lists exhausted).
                break

        report = fairness_report(candidates, selected)
        return GroupRecommendation(
            items=tuple(selected),
            report=report,
            algorithm=self.name,
            steps=tuple(steps),
        )

    @staticmethod
    def _best_unselected(
        candidates: GroupCandidates,
        item_ids: Sequence[str],
        target_user: str,
        selected: set[str],
    ) -> str | None:
        """Item of ``item_ids`` not yet selected with max relevance for the user."""
        best_item: str | None = None
        best_score = float("-inf")
        for item_id in item_ids:
            if item_id in selected:
                continue
            score = candidates.user_relevance(target_user, item_id)
            if score > best_score or (
                score == best_score and (best_item is None or item_id < best_item)
            ):
                best_item = item_id
                best_score = score
        return best_item


def greedy_selection(
    candidates: GroupCandidates, z: int, restrict_to_top_k: bool = True
) -> GroupRecommendation:
    """Convenience wrapper: run Algorithm 1 once and return the result."""
    return FairnessAwareGreedy(restrict_to_top_k=restrict_to_top_k).select(
        candidates, z
    )
