"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class.  More specific subclasses exist for
the main failure categories (unknown entities, invalid ratings, empty
inputs, configuration problems, ...).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by the library."""


class UnknownUserError(ReproError, KeyError):
    """Raised when a user id is not present in a registry or matrix."""

    def __init__(self, user_id: str) -> None:
        super().__init__(f"unknown user: {user_id!r}")
        self.user_id = user_id


class UnknownItemError(ReproError, KeyError):
    """Raised when an item id is not present in a catalog or matrix."""

    def __init__(self, item_id: str) -> None:
        super().__init__(f"unknown item: {item_id!r}")
        self.item_id = item_id


class UnknownConceptError(ReproError, KeyError):
    """Raised when an ontology concept id cannot be resolved."""

    def __init__(self, concept_id: str) -> None:
        super().__init__(f"unknown ontology concept: {concept_id!r}")
        self.concept_id = concept_id


class InvalidRatingError(ReproError, ValueError):
    """Raised when a rating falls outside the allowed scale."""

    def __init__(self, value: float, low: float, high: float) -> None:
        super().__init__(
            f"rating {value!r} outside the allowed scale [{low}, {high}]"
        )
        self.value = value
        self.low = low
        self.high = high


class EmptyGroupError(ReproError, ValueError):
    """Raised when a caregiver group contains no members."""


class InsufficientCandidatesError(ReproError, ValueError):
    """Raised when fewer candidate items exist than the requested top-z."""

    def __init__(self, requested: int, available: int) -> None:
        super().__init__(
            f"requested {requested} recommendations but only "
            f"{available} candidate items are available"
        )
        self.requested = requested
        self.available = available


class ConfigurationError(ReproError, ValueError):
    """Raised for invalid configuration values (thresholds, weights, ...)."""


class SerializationError(ReproError):
    """Raised when persisted data cannot be parsed or written."""


class OntologyStructureError(ReproError, ValueError):
    """Raised when an ontology violates structural requirements.

    For example adding a concept whose parent does not exist, or creating
    a cycle in the IS-A hierarchy.
    """


class MapReduceError(ReproError, RuntimeError):
    """Raised when a MapReduce job is misconfigured or fails."""


class ExecutionError(ReproError, RuntimeError):
    """Raised when an execution backend cannot run a task.

    The most common cause is handing the process backend a task that
    cannot be pickled (a closure, a lambda, or state holding a lock);
    the error message names the offending callable.
    """


class DeadlineExceeded(ReproError, TimeoutError):
    """Raised when a request's time budget runs out before its work does.

    Carries the deadline's human-readable ``context`` (what was being
    attempted) and how far past the budget the check ran.  The JSONL
    front end maps it to a ``{"error": "deadline"}`` response; backend
    dispatch paths raise it between tasks, never mid-task, so a timed-
    out batch leaves no partially recorded results behind.
    """

    def __init__(self, context: str, budget: float, overrun: float) -> None:
        super().__init__(
            f"deadline exceeded in {context}: budget {budget:.3f}s "
            f"overrun by {overrun:.3f}s"
        )
        self.context = context
        self.budget = budget
        self.overrun = overrun


class ValidationError(ReproError, ValueError):
    """Raised when data or a served response violates a declared shape.

    Carries the individual :class:`~repro.validation.Violation` records
    so callers (and tests) can inspect exactly which shapes failed.  The
    serving layer raises it in ``validation="strict"`` mode; the
    ``repro validate`` CLI renders the same violations as exit-code-1
    diagnostics instead.
    """

    def __init__(self, summary: str, violations: tuple = ()) -> None:
        self.violations = tuple(violations)
        details = "; ".join(
            f"[{getattr(v, 'shape', '?')}] {getattr(v, 'message', v)}"
            for v in self.violations
        )
        message = f"{summary}: {details}" if details else summary
        super().__init__(message)


class SnapshotError(SerializationError):
    """Raised when an index snapshot cannot be loaded.

    Covers unreadable or malformed snapshot files as well as snapshots
    whose config/dataset fingerprint no longer matches the service that
    is trying to restore them.
    """
