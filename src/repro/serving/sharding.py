"""Hash-sharded neighbour index.

A single :class:`~repro.serving.index.NeighborIndex` serialises every
build and refresh behind one lock.  :class:`ShardedNeighborIndex` hash-
partitions users into ``num_shards`` independent
:class:`NeighborIndex` instances (CRC32 of the user id, the same
deterministic hash the MapReduce partitioner uses), so that

* each shard can be built or refreshed independently — and in parallel
  under a non-serial :class:`~repro.exec.ExecutionBackend`;
* an update only takes its home shard's lock for the row rebuild, while
  the single-entry patches fan out shard by shard.

Every query answers exactly what the flat index would: a user's row
lives wholly in one shard, so ``row``/``peers_excluding`` delegate, and
the cross-user queries (``users_with_neighbor``) union over shards.
"""

from __future__ import annotations

import zlib
from typing import Iterable, Mapping

from ..data.ratings import RatingMatrix
from ..exec import ExecutionBackend, resolve_backend
from ..similarity.base import UserSimilarity
from ..similarity.peers import Peer
from .index import NeighborIndex


def shard_of(user_id: str, num_shards: int) -> int:
    """Deterministic shard index of ``user_id`` (CRC32 hash)."""
    return zlib.crc32(user_id.encode("utf-8")) % num_shards


class ShardedNeighborIndex:
    """``num_shards`` independent :class:`NeighborIndex` partitions.

    Implements the same query/maintenance surface as the flat index —
    the service code is agnostic to which one it holds.

    Parameters
    ----------
    matrix, similarity, threshold:
        As for :class:`NeighborIndex`.  When the measure supports
        ``with_private_packed`` (the packed Pearson kernel) and there
        is more than one shard, each shard gets a private sub-view of
        the packed state so shard builds and refreshes never serialise
        on one repack lock; otherwise every shard shares the measure.
    num_shards:
        Number of hash partitions (>= 1).
    """

    def __init__(
        self,
        matrix: RatingMatrix,
        similarity: UserSimilarity,
        threshold: float = 0.0,
        num_shards: int = 2,
    ) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self.matrix = matrix
        self.similarity = similarity
        self.threshold = threshold
        self.num_shards = num_shards
        # Measures that can privatise their packed view (the Pearson
        # kernel, possibly under a CachedSimilarity wrapper) give each
        # shard its own sub-view, so parallel shard builds never
        # serialise on one global repack lock.  A single shard reads
        # the shared view — there is no contention to avoid.
        maker = getattr(similarity, "with_private_packed", None)
        if num_shards > 1 and callable(maker):
            measures = [maker() for _ in range(num_shards)]
        else:
            measures = [similarity] * num_shards
        self.shards = [
            NeighborIndex(matrix, measures[index], threshold)
            for index in range(num_shards)
        ]

    # -- routing ---------------------------------------------------------------

    def shard_index(self, user_id: str) -> int:
        """The shard number owning ``user_id``'s row."""
        return shard_of(user_id, self.num_shards)

    def shard(self, user_id: str) -> NeighborIndex:
        """The shard owning ``user_id``'s row."""
        return self.shards[self.shard_index(user_id)]

    def _users_by_shard(
        self, user_ids: Iterable[str] | None
    ) -> list[list[str]]:
        targets = (
            list(user_ids) if user_ids is not None else self.matrix.user_ids()
        )
        buckets: list[list[str]] = [[] for _ in range(self.num_shards)]
        for user_id in targets:
            buckets[self.shard_index(user_id)].append(user_id)
        return buckets

    # -- construction ----------------------------------------------------------

    def build(
        self,
        user_ids: Iterable[str] | None = None,
        backend: "ExecutionBackend | str | None" = None,
    ) -> int:
        """Build the missing rows of every shard; returns rows built.

        Each shard builds its own users; the per-user fan-out runs on
        ``backend`` exactly as the flat index's build does, so sharded
        and flat builds produce identical rows.
        """
        backend = resolve_backend(backend)
        return sum(
            self.shards[index].build(users, backend=backend)
            for index, users in enumerate(self._users_by_shard(user_ids))
            if users
        )

    def build_shard(
        self,
        index: int,
        backend: "ExecutionBackend | str | None" = None,
    ) -> int:
        """Build one shard's rows only (independent warm-up unit)."""
        users = self._users_by_shard(None)[index]
        return self.shards[index].build(users, backend=backend)

    # -- queries ---------------------------------------------------------------

    def row(self, user_id: str) -> list[Peer]:
        """The full thresholded peer list of ``user_id`` (built lazily)."""
        return self.shard(user_id).row(user_id)

    def peer_ids(self, user_id: str) -> set[str]:
        """The ids in ``user_id``'s thresholded peer list."""
        return self.shard(user_id).peer_ids(user_id)

    def peers_excluding(
        self,
        user_id: str,
        exclude: Iterable[str] = (),
        max_peers: int | None = None,
    ) -> list[Peer]:
        """``P_u`` with some users excluded and an optional cap applied."""
        return self.shard(user_id).peers_excluding(
            user_id, exclude, max_peers=max_peers
        )

    def users_with_neighbor(self, user_id: str) -> set[str]:
        """The indexed users (any shard) whose peer list has ``user_id``."""
        found: set[str] = set()
        for shard in self.shards:
            found |= shard.users_with_neighbor(user_id)
        return found

    @property
    def built_rows(self) -> int:
        """Number of users currently indexed across every shard."""
        return sum(shard.built_rows for shard in self.shards)

    @property
    def version(self) -> int:
        """Total mutation count across shards (see NeighborIndex.version)."""
        return sum(shard.version for shard in self.shards)

    def is_built(self, user_id: str) -> bool:
        """Whether ``user_id`` is currently indexed."""
        return self.shard(user_id).is_built(user_id)

    # -- maintenance -----------------------------------------------------------

    def refresh_user(self, user_id: str) -> set[str]:
        """Rebuild one user's row, patch their entry in every shard.

        Same contract as :meth:`NeighborIndex.refresh_user`: returns
        the users whose peer list changed (including ``user_id``).
        """
        self.shard(user_id).rebuild_row(user_id)
        changed = {user_id}
        for shard in self.shards:
            changed |= shard.patch_neighbor(user_id)
        return changed

    def invalidate_user(self, user_id: str) -> None:
        """Drop one user's row (it rebuilds lazily on next access)."""
        self.shard(user_id).invalidate_user(user_id)

    def clear(self) -> None:
        """Drop every row of every shard."""
        for shard in self.shards:
            shard.clear()

    # -- persistence -----------------------------------------------------------

    def snapshot_rows(self) -> dict[str, list[Peer]]:
        """Every built row across the shards (for snapshot persistence)."""
        rows: dict[str, list[Peer]] = {}
        for shard in self.shards:
            rows.update(shard.snapshot_rows())
        return rows

    def load_rows(self, rows: Mapping[str, Iterable[Peer]]) -> int:
        """Replace all rows, routing each to its owning shard."""
        self.clear()
        loaded = 0
        buckets: list[dict[str, list[Peer]]] = [
            {} for _ in range(self.num_shards)
        ]
        for user_id, row in rows.items():
            buckets[self.shard_index(user_id)][user_id] = list(row)
        for index, bucket in enumerate(buckets):
            loaded += self.shards[index].load_rows(bucket)
        return loaded
