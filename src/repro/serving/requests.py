"""Request model of the serving layer.

The CLI ``serve`` command replays a stream of requests against a
:class:`~repro.serving.service.RecommendationService`.  Requests live in
a JSONL file, one object per line:

* ``{"type": "group", "members": ["u0001", "u0007"], "z": 5}``
* ``{"type": "user", "user_id": "u0001", "k": 10}``
* ``{"type": "rate", "user_id": "u0001", "item_id": "d0004", "value": 4}``

``z`` / ``k`` are optional and default to the service configuration.
:func:`synthetic_workload` generates a repeated/overlapping group
workload (the shape the cache layer is built for) for demos and the
throughput benchmark.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator, Mapping, Sequence

from ..data.groups import Group

#: Request kinds understood by the serve loop.
REQUEST_KINDS: tuple[str, ...] = ("group", "user", "rate")


@dataclass(frozen=True)
class ServeRequest:
    """One parsed request of the serve loop."""

    kind: str
    user_id: str = ""
    members: tuple[str, ...] = ()
    item_id: str = ""
    value: float = 0.0
    z: int | None = None
    k: int | None = None
    attributes: dict[str, Any] = field(default_factory=dict)

    def group(self) -> Group:
        """The caregiver group of a ``group`` request."""
        return Group(member_ids=list(self.members), caregiver_id="serve")

    def to_dict(self) -> dict[str, Any]:
        """Serialise back to the JSONL wire shape."""
        if self.kind == "group":
            payload: dict[str, Any] = {
                "type": "group",
                "members": list(self.members),
            }
            if self.z is not None:
                payload["z"] = self.z
        elif self.kind == "user":
            payload = {"type": "user", "user_id": self.user_id}
            if self.k is not None:
                payload["k"] = self.k
        else:
            payload = {
                "type": "rate",
                "user_id": self.user_id,
                "item_id": self.item_id,
                "value": self.value,
            }
        return payload


def _optional_positive(payload: Mapping[str, Any], name: str) -> int | None:
    """Read an optional positive-int field (``z``/``k``) or fail the line.

    The serve loop resolves ``None`` to the config default; a present
    but non-positive value would otherwise only explode deep inside the
    service, killing the whole replay mid-stream.
    """
    value = payload.get(name)
    if value is None:
        return None
    value = int(value)
    if value <= 0:
        raise ValueError(f"{name!r} must be a positive integer, got {value}")
    return value


def parse_request(payload: Mapping[str, Any]) -> ServeRequest:
    """Build a :class:`ServeRequest` from one decoded JSONL object."""
    kind = payload.get("type")
    if kind not in REQUEST_KINDS:
        raise ValueError(
            f"unknown request type {kind!r}; expected one of {REQUEST_KINDS}"
        )
    if kind == "group":
        members = payload.get("members") or ()
        if not members:
            raise ValueError("group request needs a non-empty 'members' list")
        return ServeRequest(
            kind="group",
            members=tuple(str(member) for member in members),
            z=_optional_positive(payload, "z"),
        )
    if kind == "user":
        user_id = payload.get("user_id")
        if not user_id:
            raise ValueError("user request needs a 'user_id'")
        return ServeRequest(
            kind="user",
            user_id=str(user_id),
            k=_optional_positive(payload, "k"),
        )
    user_id = payload.get("user_id")
    item_id = payload.get("item_id")
    value = payload.get("value")
    if not user_id or not item_id or value is None:
        raise ValueError("rate request needs 'user_id', 'item_id' and 'value'")
    return ServeRequest(
        kind="rate", user_id=str(user_id), item_id=str(item_id), value=float(value)
    )


def load_requests(path: str | Path) -> list[ServeRequest]:
    """Parse every non-empty line of a JSONL request file."""
    return list(iter_requests(path))


def iter_requests(path: str | Path) -> Iterator[ServeRequest]:
    """Stream requests from a JSONL file, skipping blank lines."""
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped:
                continue
            try:
                payload = json.loads(stripped)
            except json.JSONDecodeError as error:
                raise ValueError(
                    f"{path}:{line_number}: invalid JSON: {error}"
                ) from None
            yield parse_request(payload)


def save_requests(requests: Sequence[ServeRequest], path: str | Path) -> Path:
    """Write requests as JSONL; returns the path."""
    target = Path(path)
    with open(target, "w", encoding="utf-8") as handle:
        for request in requests:
            handle.write(json.dumps(request.to_dict()) + "\n")
    return target


def synthetic_workload(
    user_ids: Sequence[str],
    num_requests: int = 100,
    group_size: int = 5,
    distinct_groups: int = 10,
    user_fraction: float = 0.0,
    seed: int = 7,
) -> list[ServeRequest]:
    """A repeated/overlapping group workload over ``user_ids``.

    ``distinct_groups`` caregiver groups are drawn from a shared member
    pool (so they overlap), then ``num_requests`` requests sample those
    groups with replacement — the traffic shape of a deployment where
    caregivers refresh their dashboards.  ``user_fraction`` mixes in
    single-user requests.
    """
    if group_size > len(user_ids):
        raise ValueError("group_size exceeds the number of users")
    if distinct_groups <= 0 or num_requests <= 0:
        raise ValueError("distinct_groups and num_requests must be positive")
    rng = random.Random(seed)
    # A pool ~2 groups wide keeps the drawn groups heavily overlapping.
    pool_size = min(len(user_ids), max(group_size * 2, group_size + 2))
    pool = rng.sample(list(user_ids), pool_size)
    groups = [
        tuple(rng.sample(pool, group_size)) for _ in range(distinct_groups)
    ]
    requests: list[ServeRequest] = []
    for _ in range(num_requests):
        if user_fraction > 0.0 and rng.random() < user_fraction:
            requests.append(
                ServeRequest(kind="user", user_id=rng.choice(list(user_ids)))
            )
        else:
            requests.append(
                ServeRequest(kind="group", members=rng.choice(groups))
            )
    return requests
