"""Precomputed peer neighbourhoods (Definition 1, served from memory).

Every group request needs, for each member, the peers above the
threshold ``δ``.  The cold pipeline recomputes them per request; the
:class:`NeighborIndex` computes each user's *uncapped* thresholded peer
list once and answers every later request by filtering.

Two properties keep the index exactly equivalent to
:class:`~repro.similarity.peers.PeerSelector`:

* rows are stored uncapped and sorted by ``(-similarity, user_id)``,
  so applying a group-exclusion filter followed by the ``max_peers``
  cap reproduces what the selector would compute against the reduced
  candidate pool;
* rows are built through the measure's (batched, possibly cached)
  :meth:`~repro.similarity.base.UserSimilarity.similarities`, whose
  scores are bit-identical to the pairwise path.

A reverse index (who lists ``u`` as a peer) powers the targeted
invalidation of :meth:`refresh_user`: after a rating update only the
touched user's row is rebuilt; every other built row is patched in
place with the new score of that single pair.
"""

from __future__ import annotations

import threading
from typing import Iterable, Mapping

from ..data.ratings import RatingMatrix
from ..exec import ExecutionBackend, chunk_evenly, resolve_backend
from ..similarity.base import UserSimilarity
from ..similarity.peers import Peer

#: Per-process worker state for process-backend builds: each worker
#: holds its own index over the shipped (fork-inherited) matrix and
#: measure, and returns already-thresholded peer rows — raw O(n²)
#: score tables never cross back to the parent.
_BUILD_WORKER: "NeighborIndex | None" = None


def _init_build_worker(
    matrix: RatingMatrix, similarity: UserSimilarity, threshold: float
) -> None:
    global _BUILD_WORKER
    _BUILD_WORKER = NeighborIndex(matrix, similarity, threshold)


def _build_rows_task(user_chunk: list[str]) -> list[tuple[str, list["Peer"]]]:
    assert _BUILD_WORKER is not None
    return [
        (user_id, _BUILD_WORKER._compute_row(user_id)[0])
        for user_id in user_chunk
    ]


class NeighborIndex:
    """Per-user thresholded peer lists over a rating matrix.

    Parameters
    ----------
    matrix:
        The rating matrix whose users form the candidate pool (matching
        :meth:`PeerSelector.peers_from_matrix`).
    similarity:
        The ``simU`` measure; typically a
        :class:`~repro.serving.cache.CachedSimilarity`.
    threshold:
        The ``δ`` of Definition 1 (``simU >= δ`` qualifies).
    """

    def __init__(
        self,
        matrix: RatingMatrix,
        similarity: UserSimilarity,
        threshold: float = 0.0,
    ) -> None:
        self.matrix = matrix
        self.similarity = similarity
        self.threshold = threshold
        self._rows: dict[str, list[Peer]] = {}
        self._reverse: dict[str, set[str]] = {}
        self._lock = threading.RLock()
        self._version = 0

    # -- construction --------------------------------------------------------

    def _row_from_scores(self, scores: Mapping[str, float]) -> list[Peer]:
        """Threshold-filter and sort a score row into a peer row."""
        row = [
            Peer(user_id=candidate, similarity=score)
            for candidate, score in scores.items()
            if score >= self.threshold
        ]
        row.sort(key=lambda peer: (-peer.similarity, peer.user_id))
        return row

    def _compute_row(self, user_id: str) -> tuple[list[Peer], dict[str, float]]:
        candidates = [uid for uid in self.matrix.user_ids() if uid != user_id]
        scores = self.similarity.similarities(user_id, candidates)
        return self._row_from_scores(scores), scores

    def _store_row(self, user_id: str, row: list[Peer]) -> None:
        old = self._rows.get(user_id)
        if old is not None:
            for peer in old:
                self._reverse.get(peer.user_id, set()).discard(user_id)
        self._rows[user_id] = row
        for peer in row:
            self._reverse.setdefault(peer.user_id, set()).add(user_id)
        self._version += 1

    def build(
        self,
        user_ids: Iterable[str] | None = None,
        backend: "ExecutionBackend | str | None" = None,
    ) -> int:
        """Eagerly index ``user_ids`` (default: every user of the matrix).

        Returns the number of rows built.  Already-indexed users are
        skipped, so repeated calls are cheap.  The missing rows fan out
        per user through ``backend``; each task thresholds its own row,
        so only peer rows (not O(users²) raw score tables) are ever
        held at once.  The rows are bit-identical for every backend,
        serial included.
        """
        targets = list(user_ids) if user_ids is not None else self.matrix.user_ids()
        with self._lock:
            seen: set[str] = set()
            missing = [
                uid
                for uid in targets
                if uid not in self._rows and not (uid in seen or seen.add(uid))
            ]
        if not missing:
            return 0
        backend = resolve_backend(backend)
        if backend.requires_pickling:
            chunks = chunk_evenly(missing, max(1, backend.workers * 4))
            row_chunks = backend.map_items(
                _build_rows_task,
                chunks,
                initializer=_init_build_worker,
                initargs=(
                    self.matrix,
                    self.similarity.picklable_measure(),
                    self.threshold,
                ),
            )
            computed = [pair for chunk in row_chunks for pair in chunk]
        else:
            rows = backend.map_items(self._computed_row, missing)
            computed = list(zip(missing, rows))
        built = 0
        with self._lock:
            for user_id, row in computed:
                if user_id in self._rows:
                    continue
                self._store_row(user_id, row)
                built += 1
        return built

    def _computed_row(self, user_id: str) -> list[Peer]:
        """:meth:`_compute_row` without the raw score table (map task)."""
        return self._compute_row(user_id)[0]

    # -- queries -------------------------------------------------------------

    def row(self, user_id: str) -> list[Peer]:
        """The full thresholded peer list of ``user_id`` (built lazily)."""
        with self._lock:
            cached = self._rows.get(user_id)
            if cached is None:
                cached, _ = self._compute_row(user_id)
                self._store_row(user_id, cached)
            return cached

    def peer_ids(self, user_id: str) -> set[str]:
        """The ids in ``user_id``'s thresholded peer list."""
        return {peer.user_id for peer in self.row(user_id)}

    def peers_excluding(
        self,
        user_id: str,
        exclude: Iterable[str] = (),
        max_peers: int | None = None,
    ) -> list[Peer]:
        """``P_u`` with some users excluded and an optional cap applied.

        Equivalent to running the peer selector against the candidate
        pool minus ``exclude`` — the row is already sorted, so filtering
        then slicing reproduces the threshold + cap semantics.
        """
        excluded = set(exclude)
        row = self.row(user_id)
        peers = [peer for peer in row if peer.user_id not in excluded]
        if max_peers is not None:
            peers = peers[:max_peers]
        return peers

    def users_with_neighbor(self, user_id: str) -> set[str]:
        """The indexed users whose peer list contains ``user_id``."""
        with self._lock:
            return set(self._reverse.get(user_id, set()))

    @property
    def built_rows(self) -> int:
        """Number of users currently indexed."""
        return len(self._rows)

    @property
    def version(self) -> int:
        """Monotonic mutation counter over the stored rows.

        Bumped whenever a row is stored, dropped or cleared.  Equal
        versions guarantee unchanged content, which is what the
        incremental per-shard snapshot save keys on; the converse does
        not hold (a rebuild to identical rows still bumps it).
        """
        with self._lock:
            return self._version

    def is_built(self, user_id: str) -> bool:
        """Whether ``user_id`` is currently indexed."""
        with self._lock:
            return user_id in self._rows

    # -- maintenance ---------------------------------------------------------

    def refresh_user(self, user_id: str) -> set[str]:
        """Rebuild one user's row and patch their entry everywhere else.

        After ``user_id``'s ratings or profile changed, ``simU(u, v)``
        changed for every ``v`` — but for each *other* built row only
        the single entry for ``u`` moves.  The row of ``u`` is rebuilt
        from scratch; every other built row is patched in place.

        Returns the set of users whose peer list changed (including
        ``user_id`` itself), which is exactly the set whose cached
        relevance rows the service must drop.
        """
        with self._lock:
            self.rebuild_row(user_id)
            return {user_id} | self.patch_neighbor(user_id)

    def rebuild_row(self, user_id: str) -> list[Peer]:
        """Recompute and store one user's row from current data.

        Compute and store happen under the index lock, so a concurrent
        lazy :meth:`row` build cannot interleave and resurrect a stale
        row.  Returns the new row.
        """
        with self._lock:
            row, _ = self._compute_row(user_id)
            self._store_row(user_id, row)
            return row

    def patch_neighbor(self, user_id: str) -> set[str]:
        """Re-evaluate ``user_id``'s entry in every *other* built row.

        After ``simU(·, user_id)`` changed, each built row needs only
        its single entry for ``user_id`` moved, added or removed.
        Returns the owners of the rows that changed.  (Rebuilding
        ``user_id``'s own row is the caller's job — a sharded index
        calls this on every shard but rebuilds the row once, in the
        home shard.)
        """
        with self._lock:
            changed: set[str] = set()
            for other, other_row in self._rows.items():
                if other == user_id:
                    continue
                old_entry = next(
                    (p for p in other_row if p.user_id == user_id), None
                )
                # Evaluate in the row owner's direction — the measures
                # are not bit-symmetric and the cold path computes
                # simU(owner, candidate).
                new_score = self.similarity.similarity(other, user_id)
                qualifies = new_score >= self.threshold
                if old_entry is None and not qualifies:
                    continue
                if (
                    old_entry is not None
                    and qualifies
                    and old_entry.similarity == new_score
                ):
                    continue
                patched = [p for p in other_row if p.user_id != user_id]
                if qualifies:
                    patched.append(Peer(user_id=user_id, similarity=new_score))
                    patched.sort(key=lambda peer: (-peer.similarity, peer.user_id))
                self._store_row(other, patched)
                changed.add(other)
            return changed

    def invalidate_user(self, user_id: str) -> None:
        """Drop one user's row (it rebuilds lazily on next access)."""
        with self._lock:
            row = self._rows.pop(user_id, None)
            if row is not None:
                for peer in row:
                    self._reverse.get(peer.user_id, set()).discard(user_id)
                self._version += 1

    def clear(self) -> None:
        """Drop every row."""
        with self._lock:
            if self._rows:
                self._version += 1
            self._rows.clear()
            self._reverse.clear()

    # -- persistence -----------------------------------------------------------

    def snapshot_rows(self) -> dict[str, list[Peer]]:
        """A copy of every built row (for snapshot persistence)."""
        with self._lock:
            return {uid: list(row) for uid, row in self._rows.items()}

    def load_rows(self, rows: Mapping[str, Iterable[Peer]]) -> int:
        """Replace the indexed rows with ``rows`` (snapshot restore).

        The reverse index is rebuilt from the loaded rows.  Returns the
        number of rows loaded.
        """
        with self._lock:
            if self._rows:
                # Dropping the previous rows is a content change even
                # when ``rows`` is empty — the version must move or an
                # incremental snapshot save would consider the shard
                # clean and keep the pre-load rows on disk.
                self._version += 1
            self._rows.clear()
            self._reverse.clear()
            for user_id, row in rows.items():
                self._store_row(user_id, list(row))
            return len(self._rows)
