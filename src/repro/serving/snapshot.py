"""Versioned persistence of warm neighbour-index state.

A warm :class:`~repro.serving.RecommendationService` has paid for every
user's thresholded peer row; a restart should not pay again.  This
module snapshots those rows and restores them, with two guards:

* a **format/version** header, so a future layout change fails loudly
  instead of deserialising garbage;
* a **fingerprint** combining the config's recommendation semantics
  (:meth:`~repro.config.RecommenderConfig.fingerprint`) with the
  dataset's shape — a snapshot built under a different threshold,
  similarity measure or dataset is *stale* and is rejected with
  :class:`~repro.exceptions.SnapshotError` rather than silently served.

Two layouts exist:

* a **single JSON file** (:func:`save_index_snapshot` /
  :func:`load_index_snapshot`) — simple, rewritten wholesale on every
  save;
* a **per-shard directory** (:func:`save_sharded_snapshot` /
  :func:`load_sharded_snapshot`) — a ``manifest.json`` plus one
  ``shard-NNNN.json`` per shard.  Saves are *incremental*: a shard
  whose rows did not change since the last save is not re-serialised
  or rewritten.  Every shard file carries the fingerprint and the
  manifest records each shard's content checksum, so a torn save
  (crash between shard writes and the manifest write), a truncated
  file, or a missing shard is detected at load time instead of being
  silently served.  Shard files are written to a temporary name and
  atomically renamed; the manifest is written **last**, so a crash
  mid-save leaves the previous manifest either fully consistent or
  detectably out of step with the shard files.

Scores round-trip bit-identically: ``json`` serialises floats with
``repr``, Python's shortest round-trippable representation.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Callable, Mapping, Sequence

from ..config import RecommenderConfig
from ..data.datasets import HealthDataset
from ..data.serialization import load_json, save_json
from ..exceptions import SerializationError, SnapshotError
from ..similarity.peers import Peer

#: Identifies the payload layout; bump on incompatible changes.
SNAPSHOT_FORMAT = "repro.neighbor-index"
SNAPSHOT_VERSION = 1

#: Layout markers of the per-shard directory snapshot.
MANIFEST_FORMAT = "repro.neighbor-index-manifest"
SHARD_FORMAT = "repro.neighbor-index-shard"
MANIFEST_NAME = "manifest.json"


def snapshot_fingerprint(
    config: RecommenderConfig, dataset: HealthDataset
) -> str:
    """Fingerprint binding a snapshot to its config semantics and data.

    The dataset contributes its shape (user/item/rating counts): a
    changed rating alters peer rows, and while counts cannot see every
    in-place edit, they catch the common staleness case (snapshot from
    a different or grown dataset) cheaply.  Targeted invalidation
    handles in-place edits at runtime; operators re-snapshot after
    ingest.
    """
    payload = {
        "config": config.fingerprint(),
        "users": dataset.num_users,
        "items": dataset.num_items,
        "ratings": dataset.num_ratings,
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def _encode_rows(rows: Mapping[str, Any]) -> dict[str, list[list[Any]]]:
    """Peer rows → the plain-list JSON layout shared by both formats."""
    return {
        user_id: [[peer.user_id, peer.similarity] for peer in row]
        for user_id, row in rows.items()
    }


def _decode_rows(
    encoded: Mapping[str, Any], path: str | Path
) -> dict[str, list[Peer]]:
    """The inverse of :func:`_encode_rows`, with a readable failure."""
    try:
        return {
            user_id: [
                Peer(user_id=peer_id, similarity=float(score))
                for peer_id, score in row
            ]
            for user_id, row in encoded.items()
        }
    except (AttributeError, KeyError, TypeError, ValueError) as exc:
        raise SnapshotError(f"malformed snapshot {path}: {exc}") from exc


def rows_checksum(encoded_rows: Mapping[str, Any]) -> str:
    """Content hash of an encoded row mapping (order-independent).

    The manifest records this per shard; a shard file whose recomputed
    checksum disagrees was torn, truncated after the manifest was
    written, or belongs to a different save generation.
    """
    canonical = json.dumps(
        encoded_rows, sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def shard_file_name(index: int) -> str:
    """The conventional file name of shard ``index`` inside a snapshot dir."""
    return f"shard-{index:04d}.json"


def is_sharded_snapshot_path(path: str | Path) -> bool:
    """Whether ``path`` names a per-shard snapshot directory.

    A path that exists as a directory, or a non-existing path without a
    file suffix, selects the per-shard layout; anything else (the
    conventional ``*.json``) selects the single-file layout.
    """
    path = Path(path)
    if path.is_dir():
        return True
    return not path.exists() and path.suffix == ""


def _atomic_save_json(payload: Any, path: Path) -> None:
    """Write JSON via a temp file + rename so readers never see a tear."""
    tmp = path.with_name(path.name + ".tmp")
    save_json(payload, tmp)
    os.replace(tmp, path)


def save_index_snapshot(
    rows: Mapping[str, list[Peer]],
    path: str | Path,
    fingerprint: str,
    num_shards: int = 1,
) -> Path:
    """Write the peer rows to ``path`` as a versioned JSON snapshot."""
    payload: dict[str, Any] = {
        "format": SNAPSHOT_FORMAT,
        "version": SNAPSHOT_VERSION,
        "fingerprint": fingerprint,
        "num_shards": num_shards,
        "rows": _encode_rows(rows),
    }
    return save_json(payload, path)


def load_index_snapshot(
    path: str | Path, fingerprint: str
) -> dict[str, list[Peer]]:
    """Load and validate a snapshot written by :func:`save_index_snapshot`.

    Raises :class:`SnapshotError` when the file is not an index
    snapshot, uses an unsupported version, or was built under a
    different fingerprint (config semantics or dataset shape changed).
    """
    try:
        payload = load_json(path)
    except SerializationError as exc:
        raise SnapshotError(f"cannot read snapshot {path}: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("format") != SNAPSHOT_FORMAT:
        raise SnapshotError(
            f"{path} is not a neighbor-index snapshot "
            f"(format={payload.get('format')!r} "
            f"expected {SNAPSHOT_FORMAT!r})"
            if isinstance(payload, dict)
            else f"{path} is not a neighbor-index snapshot"
        )
    if payload.get("version") != SNAPSHOT_VERSION:
        raise SnapshotError(
            f"snapshot {path} has version {payload.get('version')!r}; "
            f"this build reads version {SNAPSHOT_VERSION}"
        )
    found = payload.get("fingerprint")
    if found != fingerprint:
        raise SnapshotError(
            f"snapshot {path} is stale: fingerprint {found!r} does not "
            f"match the current config/dataset {fingerprint!r} — rebuild "
            f"the index and re-save"
        )
    rows = payload.get("rows")
    if not isinstance(rows, Mapping):
        raise SnapshotError(f"malformed snapshot {path}: no row mapping")
    return _decode_rows(rows, path)


# -- per-shard directory snapshots -------------------------------------------


def save_sharded_snapshot(
    rows_by_shard: "Sequence[Mapping[str, list[Peer]] | Callable[[], Mapping[str, list[Peer]]]]",
    directory: str | Path,
    fingerprint: str,
    config_fingerprint: str,
    dirty: Sequence[bool] | None = None,
) -> Path:
    """Write one file per shard plus a manifest into ``directory``.

    Each ``rows_by_shard`` entry may be the row mapping itself or a
    zero-argument callable producing it — callables are only invoked
    for shards that actually get written, so an incremental save never
    pays to copy/serialise the clean shards' rows.

    The manifest carries the full ``fingerprint`` (config semantics +
    dataset shape); the shard files embed only ``config_fingerprint``
    (the semantics half).  The dataset shape changes on every ingest,
    and stamping it into each shard would force a full rewrite per
    re-save — keeping it manifest-only is what makes incremental saves
    possible while the per-shard check still rejects a shard file built
    under different recommendation semantics.

    ``dirty`` (optional, one flag per shard) enables *incremental*
    saves: a shard marked clean is not re-serialised — its manifest
    entry is carried over from the existing manifest.  The flag is
    trusted (callers derive it from the index's mutation counters), but
    only honoured when the existing manifest matches this fingerprint
    and shard count and the shard file is still on disk; anything else
    rewrites the shard regardless.  The manifest is written last, via
    an atomic rename, so a crash mid-save is detectable at load time.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    num_shards = len(rows_by_shard)
    previous = _reusable_manifest(directory, config_fingerprint, num_shards)
    entries: list[dict[str, Any]] = []
    for index, rows in enumerate(rows_by_shard):
        name = shard_file_name(index)
        shard_path = directory / name
        reuse = (
            dirty is not None
            and index < len(dirty)
            and not dirty[index]
            and previous is not None
            and shard_path.exists()
        )
        if reuse:
            entries.append(previous[index])
            continue
        encoded = _encode_rows(rows() if callable(rows) else rows)
        checksum = rows_checksum(encoded)
        _atomic_save_json(
            {
                "format": SHARD_FORMAT,
                "version": SNAPSHOT_VERSION,
                "fingerprint": config_fingerprint,
                "shard": index,
                "num_shards": num_shards,
                "rows": encoded,
            },
            shard_path,
        )
        entries.append({"file": name, "rows": len(encoded), "checksum": checksum})
    _atomic_save_json(
        {
            "format": MANIFEST_FORMAT,
            "version": SNAPSHOT_VERSION,
            "fingerprint": fingerprint,
            "config_fingerprint": config_fingerprint,
            "num_shards": num_shards,
            "shards": entries,
        },
        directory / MANIFEST_NAME,
    )
    return directory


def _reusable_manifest(
    directory: Path, config_fingerprint: str, num_shards: int
) -> list[dict[str, Any]] | None:
    """The existing manifest's shard entries, if they can be carried over.

    Keyed on the *config* fingerprint: the dataset-shape half changes
    with every ingest and is refreshed in the new manifest anyway, but
    a semantics change invalidates the shard files themselves.
    """
    manifest_path = directory / MANIFEST_NAME
    if not manifest_path.exists():
        return None
    try:
        payload = load_json(manifest_path)
    except SerializationError:
        return None
    if (
        not isinstance(payload, dict)
        or payload.get("format") != MANIFEST_FORMAT
        or payload.get("version") != SNAPSHOT_VERSION
        or payload.get("config_fingerprint") != config_fingerprint
        or payload.get("num_shards") != num_shards
    ):
        return None
    entries = payload.get("shards")
    if not isinstance(entries, list) or len(entries) != num_shards:
        return None
    return entries


def load_sharded_snapshot(
    directory: str | Path, fingerprint: str, config_fingerprint: str
) -> dict[str, list[Peer]]:
    """Load and validate a per-shard snapshot directory.

    Every shard is checked independently: the file must exist, parse,
    carry the shard format and the expected fingerprint, and hash to
    the checksum the manifest recorded for it.  Any violation raises
    :class:`SnapshotError` naming the offending file and the repair
    (re-save from a warm service) — partial state is never returned.
    """
    directory = Path(directory)
    manifest_path = directory / MANIFEST_NAME
    try:
        manifest = load_json(manifest_path)
    except SerializationError as exc:
        raise SnapshotError(
            f"cannot read snapshot manifest {manifest_path}: {exc} — "
            f"re-save the snapshot from a warm service"
        ) from exc
    if not isinstance(manifest, dict) or manifest.get("format") != MANIFEST_FORMAT:
        raise SnapshotError(
            f"{manifest_path} is not a neighbor-index snapshot manifest "
            f"(expected format {MANIFEST_FORMAT!r})"
        )
    if manifest.get("version") != SNAPSHOT_VERSION:
        raise SnapshotError(
            f"snapshot manifest {manifest_path} has version "
            f"{manifest.get('version')!r}; this build reads version "
            f"{SNAPSHOT_VERSION}"
        )
    found = manifest.get("fingerprint")
    if found != fingerprint:
        raise SnapshotError(
            f"snapshot {directory} is stale: fingerprint {found!r} does "
            f"not match the current config/dataset {fingerprint!r} — "
            f"rebuild the index and re-save"
        )
    entries = manifest.get("shards")
    num_shards = manifest.get("num_shards")
    if not isinstance(entries, list) or len(entries) != num_shards:
        raise SnapshotError(
            f"snapshot manifest {manifest_path} is malformed: expected "
            f"{num_shards!r} shard entries — re-save the snapshot"
        )
    rows: dict[str, list[Peer]] = {}
    for index, entry in enumerate(entries):
        shard_path = directory / entry.get("file", shard_file_name(index))
        if not shard_path.exists():
            raise SnapshotError(
                f"snapshot shard file {shard_path} is missing — the "
                f"snapshot directory is incomplete; re-save the snapshot "
                f"from a warm service"
            )
        try:
            shard = load_json(shard_path)
        except SerializationError as exc:
            raise SnapshotError(
                f"cannot read snapshot shard {shard_path}: {exc} — the "
                f"file is truncated or corrupt; re-save the snapshot from "
                f"a warm service"
            ) from exc
        if not isinstance(shard, dict) or shard.get("format") != SHARD_FORMAT:
            raise SnapshotError(
                f"{shard_path} is not a neighbor-index shard file "
                f"(expected format {SHARD_FORMAT!r})"
            )
        if shard.get("fingerprint") != config_fingerprint:
            raise SnapshotError(
                f"snapshot shard {shard_path} is stale: fingerprint "
                f"{shard.get('fingerprint')!r} does not match the current "
                f"config semantics {config_fingerprint!r} — rebuild the "
                f"index and re-save"
            )
        if shard.get("shard") != index:
            raise SnapshotError(
                f"snapshot shard {shard_path} claims shard index "
                f"{shard.get('shard')!r} but the manifest lists it as "
                f"shard {index} — the directory was rearranged; re-save "
                f"the snapshot"
            )
        encoded = shard.get("rows")
        if not isinstance(encoded, Mapping):
            raise SnapshotError(
                f"malformed snapshot shard {shard_path}: no row mapping"
            )
        checksum = rows_checksum(encoded)
        if checksum != entry.get("checksum"):
            raise SnapshotError(
                f"snapshot shard {shard_path} does not match its manifest "
                f"entry (checksum {checksum} != {entry.get('checksum')!r}) "
                f"— the save was interrupted before the manifest was "
                f"updated, or the file was modified; re-save the snapshot "
                f"from a warm service"
            )
        rows.update(_decode_rows(encoded, shard_path))
    return rows
