"""Versioned persistence of warm neighbour-index state.

A warm :class:`~repro.serving.RecommendationService` has paid for every
user's thresholded peer row; a restart should not pay again.  This
module snapshots those rows to a JSON file (via
:mod:`repro.data.serialization`) and restores them, with two guards:

* a **format/version** header, so a future layout change fails loudly
  instead of deserialising garbage;
* a **fingerprint** combining the config's recommendation semantics
  (:meth:`~repro.config.RecommenderConfig.fingerprint`) with the
  dataset's shape — a snapshot built under a different threshold,
  similarity measure or dataset is *stale* and is rejected with
  :class:`~repro.exceptions.SnapshotError` rather than silently served.

Scores round-trip bit-identically: ``json`` serialises floats with
``repr``, Python's shortest round-trippable representation.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Mapping

from ..config import RecommenderConfig
from ..data.datasets import HealthDataset
from ..data.serialization import load_json, save_json
from ..exceptions import SerializationError, SnapshotError
from ..similarity.peers import Peer

#: Identifies the payload layout; bump on incompatible changes.
SNAPSHOT_FORMAT = "repro.neighbor-index"
SNAPSHOT_VERSION = 1


def snapshot_fingerprint(
    config: RecommenderConfig, dataset: HealthDataset
) -> str:
    """Fingerprint binding a snapshot to its config semantics and data.

    The dataset contributes its shape (user/item/rating counts): a
    changed rating alters peer rows, and while counts cannot see every
    in-place edit, they catch the common staleness case (snapshot from
    a different or grown dataset) cheaply.  Targeted invalidation
    handles in-place edits at runtime; operators re-snapshot after
    ingest.
    """
    payload = {
        "config": config.fingerprint(),
        "users": dataset.num_users,
        "items": dataset.num_items,
        "ratings": dataset.num_ratings,
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def save_index_snapshot(
    rows: Mapping[str, list[Peer]],
    path: str | Path,
    fingerprint: str,
    num_shards: int = 1,
) -> Path:
    """Write the peer rows to ``path`` as a versioned JSON snapshot."""
    payload: dict[str, Any] = {
        "format": SNAPSHOT_FORMAT,
        "version": SNAPSHOT_VERSION,
        "fingerprint": fingerprint,
        "num_shards": num_shards,
        "rows": {
            user_id: [[peer.user_id, peer.similarity] for peer in row]
            for user_id, row in rows.items()
        },
    }
    return save_json(payload, path)


def load_index_snapshot(
    path: str | Path, fingerprint: str
) -> dict[str, list[Peer]]:
    """Load and validate a snapshot written by :func:`save_index_snapshot`.

    Raises :class:`SnapshotError` when the file is not an index
    snapshot, uses an unsupported version, or was built under a
    different fingerprint (config semantics or dataset shape changed).
    """
    try:
        payload = load_json(path)
    except SerializationError as exc:
        raise SnapshotError(f"cannot read snapshot {path}: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("format") != SNAPSHOT_FORMAT:
        raise SnapshotError(
            f"{path} is not a neighbor-index snapshot "
            f"(format={payload.get('format')!r} "
            f"expected {SNAPSHOT_FORMAT!r})"
            if isinstance(payload, dict)
            else f"{path} is not a neighbor-index snapshot"
        )
    if payload.get("version") != SNAPSHOT_VERSION:
        raise SnapshotError(
            f"snapshot {path} has version {payload.get('version')!r}; "
            f"this build reads version {SNAPSHOT_VERSION}"
        )
    found = payload.get("fingerprint")
    if found != fingerprint:
        raise SnapshotError(
            f"snapshot {path} is stale: fingerprint {found!r} does not "
            f"match the current config/dataset {fingerprint!r} — rebuild "
            f"the index and re-save"
        )
    try:
        return {
            user_id: [
                Peer(user_id=peer_id, similarity=float(score))
                for peer_id, score in row
            ]
            for user_id, row in payload["rows"].items()
        }
    except (AttributeError, KeyError, TypeError, ValueError) as exc:
        raise SnapshotError(f"malformed snapshot {path}: {exc}") from exc
