"""repro.serving — cached, index-backed recommendation serving.

The algorithm core (:mod:`repro.core`) is stateless: every call pays
for peer search and relevance prediction from scratch.  This package
adds the thin, stateful service layer a deployment needs:

* :class:`~repro.serving.cache.ScoreCache` — bounded LRU with hit/miss
  statistics, used for pairwise similarities and per-user relevance
  rows;
* :class:`~repro.serving.index.NeighborIndex` — each user's peer set
  above ``δ``, computed once and patched in place on updates;
* :class:`~repro.serving.service.RecommendationService` — warm
  single-user, group and batch request paths with targeted cache
  invalidation on :meth:`ingest_rating` / :meth:`update_profile`;
* :mod:`repro.serving.requests` — the JSONL request model replayed by
  the CLI ``serve`` command and the throughput benchmark;
* :class:`~repro.serving.server.RequestServer` — the async TCP front
  end (``serve --listen``): concurrent JSONL request streams with
  bounded in-flight admission control and typed overload rejection.

Warm results are bit-identical to the cold pipeline — the serving layer
changes *when* work happens, never *what* is computed.
"""

from .cache import CachedSimilarity, CacheStats, ScoreCache
from .index import NeighborIndex
from .requests import (
    ServeRequest,
    iter_requests,
    load_requests,
    parse_request,
    save_requests,
    synthetic_workload,
)
from .server import OverloadedError, RequestServer
from .service import RecommendationService
from .sharding import ShardedNeighborIndex, shard_of
from .snapshot import (
    is_sharded_snapshot_path,
    load_index_snapshot,
    load_sharded_snapshot,
    save_index_snapshot,
    save_sharded_snapshot,
    snapshot_fingerprint,
)

__all__ = [
    "CacheStats",
    "CachedSimilarity",
    "NeighborIndex",
    "OverloadedError",
    "RecommendationService",
    "RequestServer",
    "ServeRequest",
    "ShardedNeighborIndex",
    "is_sharded_snapshot_path",
    "iter_requests",
    "load_index_snapshot",
    "load_requests",
    "load_sharded_snapshot",
    "parse_request",
    "save_index_snapshot",
    "save_requests",
    "save_sharded_snapshot",
    "shard_of",
    "snapshot_fingerprint",
    "synthetic_workload",
]
