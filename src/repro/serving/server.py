"""Async JSONL front end: concurrent request streams over TCP.

:class:`RequestServer` is the network face of
:class:`~repro.serving.service.RecommendationService`: an asyncio
server (running on a background thread, so synchronous callers just
``start()``/``stop()`` it) that accepts any number of concurrent
connections, each streaming newline-delimited JSON requests in the
:mod:`repro.serving.requests` schema and receiving one JSON response
line per request, in order.

Admission control is a hard bound on cross-connection in-flight work:
at most ``max_inflight`` requests execute on the service at once, and a
request arriving past the bound is rejected *immediately* with a typed
``{"error": "overloaded"}`` response (and an ``server_overloads``
counter increment) instead of queueing without bound — under overload
the server sheds load loudly rather than silently growing a queue.
Within one connection requests are processed strictly in order, so a
client's ``rate`` mutation is always visible to its own next read.

The actual recommendation work runs on a thread pool via the service's
thread-safe request paths — the asyncio loop only parses, admits and
frames, so slow recommendations never stall accept/reject handling.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any

from ..exceptions import DeadlineExceeded, ReproError
from ..obs import MetricsRegistry
from ..resilience import Deadline
from .requests import ServeRequest, parse_request
from .service import RecommendationService

#: Fallback ``retry_after_ms`` hint when no request has completed yet
#: (an empty latency window gives the client nothing to extrapolate).
_DEFAULT_RETRY_AFTER_MS = 50

#: Sliding window (seconds) behind the overload hint's p50.
_LATENCY_WINDOW_S = 30.0


class OverloadedError(ReproError):
    """Raised (and reported) when admission control rejects a request."""

    def __init__(self, inflight: int, max_inflight: int) -> None:
        super().__init__(
            f"server overloaded: {inflight} requests in flight "
            f"(max_inflight={max_inflight})"
        )
        self.inflight = inflight
        self.max_inflight = max_inflight


class RequestServer:
    """Serve concurrent JSONL request streams with bounded in-flight work.

    Parameters
    ----------
    service:
        The (thread-safe) service requests execute against.
    host / port:
        Bind address; port ``0`` (default) picks a free port — read the
        resolved address back from :meth:`start`'s return value or
        :attr:`address`.
    max_inflight:
        Cross-connection ceiling on concurrently executing requests.
        Request number ``max_inflight + 1`` is rejected immediately
        with a typed ``overloaded`` response carrying a
        ``retry_after_ms`` hint (the windowed p50 of recent request
        latency — roughly when one in-flight slot should free up).
    request_timeout:
        Optional per-request time budget, in seconds.  A
        :class:`~repro.resilience.Deadline` built at admission is
        threaded through the service into backend dispatch; a request
        that overruns is answered with ``{"error": "deadline"}``
        (``server_deadline_timeouts`` counts them).  ``None`` (default)
        serves without a budget.
    metrics:
        Registry for the server's counters (``server_requests``,
        ``server_overloads``, ``server_connections``,
        ``server_errors``, ``server_deadline_timeouts``,
        ``server_degraded_responses``) and the ``server_request_ms``
        latency histogram; defaults to the service's registry.
    """

    def __init__(
        self,
        service: RecommendationService,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_inflight: int = 16,
        request_timeout: float | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if request_timeout is not None and request_timeout <= 0:
            raise ValueError("request_timeout must be positive (or None)")
        self.service = service
        self.host = host
        self.port = port
        self.max_inflight = max_inflight
        self.request_timeout = request_timeout
        self.metrics = metrics if metrics is not None else service.metrics
        self._requests = self.metrics.counter("server_requests")
        self._overloads = self.metrics.counter("server_overloads")
        self._connections = self.metrics.counter("server_connections")
        self._errors = self.metrics.counter("server_errors")
        self._deadline_timeouts = self.metrics.counter(
            "server_deadline_timeouts"
        )
        self._degraded_responses = self.metrics.counter(
            "server_degraded_responses"
        )
        # Named server_request_ms (not request_ms) so the CLI's merged
        # per-kind service table never double-counts these samples.
        self._latency = self.metrics.histogram(
            "server_request_ms", window_s=_LATENCY_WINDOW_S
        )
        self._inflight = 0
        self._inflight_lock = threading.Lock()
        self._executor: ThreadPoolExecutor | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.AbstractServer | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._address: tuple[str, int] | None = None

    # -- lifecycle -----------------------------------------------------------

    @property
    def address(self) -> tuple[str, int] | None:
        """``(host, port)`` the server is listening on, or ``None``."""
        return self._address

    def start(self) -> tuple[str, int]:
        """Start serving on a background thread; returns ``(host, port)``."""
        if self._thread is not None:
            assert self._address is not None
            return self._address
        self._executor = ThreadPoolExecutor(
            max_workers=self.max_inflight,
            thread_name_prefix="repro-serve",
        )
        self._thread = threading.Thread(
            target=self._run_loop, name="repro-serve-loop", daemon=True
        )
        self._thread.start()
        self._started.wait()
        if self._address is None:  # pragma: no cover - bind failure
            raise OSError(f"could not bind request server on {self.host}")
        return self._address

    def _run_loop(self) -> None:
        """Background thread body: own event loop running the server."""
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            try:
                server = loop.run_until_complete(
                    asyncio.start_server(
                        self._handle_connection, self.host, self.port
                    )
                )
            except OSError:
                self._started.set()
                return
            self._server = server
            self._address = server.sockets[0].getsockname()[:2]
            self._started.set()
            loop.run_forever()
            loop.run_until_complete(self._shutdown(loop, server))
        finally:
            loop.close()

    async def _shutdown(
        self,
        loop: asyncio.AbstractEventLoop,
        server: asyncio.AbstractServer,
    ) -> None:
        """Close the listener and unwind open connection handlers."""
        server.close()
        await server.wait_closed()
        current = asyncio.current_task(loop)
        tasks = [
            task for task in asyncio.all_tasks(loop) if task is not current
        ]
        for task in tasks:
            task.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)

    def stop(self) -> None:
        """Stop the server thread and the worker pool (idempotent)."""
        loop, self._loop = self._loop, None
        thread, self._thread = self._thread, None
        if loop is not None and thread is not None:
            loop.call_soon_threadsafe(loop.stop)
            thread.join(timeout=10.0)
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
        self._server = None
        self._address = None
        self._started.clear()

    def __enter__(self) -> "RequestServer":
        self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # -- request handling ----------------------------------------------------

    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """Serve one JSONL stream: a response line per request line."""
        self._connections.inc()
        number = 0
        try:
            while True:
                line = await reader.readline()
                if not line:
                    return
                text = line.decode("utf-8", errors="replace").strip()
                if not text:
                    continue
                number += 1
                response = await self._respond(number, text)
                writer.write(
                    (json.dumps(response, sort_keys=True) + "\n").encode()
                )
                await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            return  # client went away mid-stream; nothing to answer
        except asyncio.CancelledError:
            return  # server stopping; close the stream and end cleanly
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (asyncio.CancelledError, ConnectionError, OSError):
                pass

    async def _respond(self, number: int, text: str) -> dict[str, Any]:
        """Parse, admit and execute one request line; never raises."""
        try:
            request = parse_request(json.loads(text))
        except (ValueError, TypeError) as exc:
            self._errors.inc()
            return {"id": number, "error": "bad-request", "detail": str(exc)}
        with self._inflight_lock:
            if self._inflight >= self.max_inflight:
                self._overloads.inc()
                rejection = OverloadedError(self._inflight, self.max_inflight)
                return {
                    "id": number,
                    "error": "overloaded",
                    "detail": str(rejection),
                    "inflight": rejection.inflight,
                    "max_inflight": rejection.max_inflight,
                    "retry_after_ms": self._retry_after_ms(),
                }
            self._inflight += 1
        loop = asyncio.get_running_loop()
        try:
            result = await loop.run_in_executor(
                self._executor, self._execute, request
            )
        except DeadlineExceeded as exc:
            self._errors.inc()
            self._deadline_timeouts.inc()
            return {"id": number, "error": "deadline", "detail": str(exc)}
        except ReproError as exc:
            self._errors.inc()
            return {
                "id": number,
                "error": type(exc).__name__,
                "detail": str(exc),
            }
        except Exception as exc:  # pragma: no cover - defensive
            self._errors.inc()
            return {"id": number, "error": "internal", "detail": repr(exc)}
        finally:
            with self._inflight_lock:
                self._inflight -= 1
        self._requests.inc()
        result["id"] = number
        return result

    def _retry_after_ms(self) -> int:
        """Overload hint: windowed p50 request latency, in whole ms.

        Roughly when one of the in-flight slots should free up; before
        any request has completed the window is empty and a small fixed
        hint is returned instead.
        """
        p50 = self._latency.windowed_quantile(0.5)
        if p50 is None or p50 <= 0:
            return _DEFAULT_RETRY_AFTER_MS
        return max(1, round(p50))

    def _execute(self, request: ServeRequest) -> dict[str, Any]:
        """Run one admitted request on the service (worker thread).

        With a ``request_timeout`` configured, a fresh
        :class:`~repro.resilience.Deadline` rides the request into the
        service (and from there into backend dispatch).  If the remote
        backend served this request degraded (its
        ``remote_degraded_dispatches`` counter moved while the request
        ran), the response is marked ``"degraded": true`` — clients see
        that the answer is correct but was computed without the fleet.
        """
        deadline = (
            Deadline.after(self.request_timeout)
            if self.request_timeout is not None
            else None
        )
        deadline_kwargs: dict[str, Any] = (
            {"deadline": deadline} if deadline is not None else {}
        )
        service_metrics = getattr(self.service, "metrics", None)
        degraded_before = (
            service_metrics.value("remote_degraded_dispatches")
            if service_metrics is not None
            else 0.0
        )
        started = time.perf_counter()
        try:
            if request.kind == "group":
                recommendation = self.service.recommend_group(
                    request.group(), z=request.z, **deadline_kwargs
                )
                result = {
                    "kind": "group",
                    "members": list(request.members),
                    "items": list(recommendation.items),
                    "fairness": recommendation.report.fairness,
                }
            elif request.kind == "user":
                items = self.service.recommend_user(
                    request.user_id, k=request.k, **deadline_kwargs
                )
                result = {
                    "kind": "user",
                    "user": request.user_id,
                    "items": [item.item_id for item in items],
                }
            else:
                self.service.ingest_rating(
                    request.user_id, request.item_id, request.value
                )
                result = {
                    "kind": "rate",
                    "user": request.user_id,
                    "item": request.item_id,
                    "ok": True,
                }
        finally:
            self._latency.observe((time.perf_counter() - started) * 1000.0)
        if service_metrics is not None:
            degraded_after = service_metrics.value(
                "remote_degraded_dispatches"
            )
            if degraded_after > degraded_before:
                self._degraded_responses.inc()
                result["degraded"] = True
        return result
