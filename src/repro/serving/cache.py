"""Bounded LRU score caches for the serving layer.

The recommendation service keeps two kinds of hot state: pairwise user
similarities and per-user relevance rows.  Both are served out of
:class:`ScoreCache`, a thread-safe LRU mapping with hit/miss statistics
so operators can size the caches from observed traffic.

:class:`CachedSimilarity` decorates any
:class:`~repro.similarity.base.UserSimilarity` with a pair-score cache.
It is what the :class:`~repro.serving.index.NeighborIndex` reads
through, so rebuilding one user's neighbourhood after an update re-uses
every untouched pair score.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Hashable, Iterable

from ..obs import MetricsRegistry
from ..similarity.base import UserSimilarity

#: Sentinel distinguishing "not cached" from a cached ``None``/0 value.
_MISS = object()


@dataclass
class CacheStats:
    """Counters describing how a :class:`ScoreCache` is performing.

    A plain-value snapshot; the live counts reside in the cache's
    :class:`~repro.obs.MetricsRegistry` (``cache_hits``,
    ``cache_misses``, ``cache_evictions``, ``cache_invalidations``,
    labelled ``cache=<name>``) and this view is rebuilt from them on
    every :attr:`ScoreCache.stats` read.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def requests(self) -> int:
        """Total lookups (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache (0 when unused)."""
        if self.requests == 0:
            return 0.0
        return self.hits / self.requests

    def as_dict(self) -> dict[str, float]:
        """Plain-type view for reports and JSON."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "hit_rate": self.hit_rate,
        }


class ScoreCache:
    """A bounded, thread-safe LRU mapping with statistics.

    Parameters
    ----------
    capacity:
        Maximum number of entries; the least recently used entry is
        evicted when the bound is exceeded.  Zero *or negative*
        disables caching outright: every lookup misses, nothing is
        stored, and the probe/store paths skip their lock round trips
        entirely (a disabled cache must cost nothing, not thrash the
        eviction loop).
    name:
        Label used in reports and as the ``cache=`` metric label.
    metrics:
        Registry the hit/miss/eviction/invalidation counters live in.
        Defaults to a private registry so standalone caches keep
        per-instance stats; the serving layer passes its own registry
        so cache counters appear in the service's unified view.
    """

    def __init__(
        self,
        capacity: int,
        name: str = "cache",
        metrics: MetricsRegistry | None = None,
    ) -> None:
        # Negative capacities are accepted and mean "disabled", exactly
        # like 0 — a computed size that goes negative must degrade to a
        # bypassed cache, not to an eviction loop that can never drain
        # (``len > capacity`` holds forever when capacity < 0).
        self.capacity = capacity
        self.name = name
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()
        self._lock = threading.RLock()
        self._hits = self.metrics.counter("cache_hits", cache=name)
        self._misses = self.metrics.counter("cache_misses", cache=name)
        self._evictions = self.metrics.counter("cache_evictions", cache=name)
        self._invalidations = self.metrics.counter(
            "cache_invalidations", cache=name
        )
        self._epoch = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    @property
    def epoch(self) -> int:
        """Invalidation epoch — bumped by every invalidate/clear.

        Callers that compute a value outside the lock pass the epoch
        they observed at miss time back into :meth:`put`; the put is
        discarded if an invalidation happened in between.  This closes
        the window where a value computed from *pre-update* data would
        be re-inserted after the update's targeted invalidation and
        then served stale forever.
        """
        with self._lock:
            return self._epoch

    @property
    def stats(self) -> CacheStats:
        """A snapshot of the cache counters, read from the registry."""
        return CacheStats(
            hits=int(self._hits.value),
            misses=int(self._misses.value),
            evictions=int(self._evictions.value),
            invalidations=int(self._invalidations.value),
        )

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Return the cached value (marking it recently used) or ``default``."""
        if self.capacity <= 0:
            self._misses.inc()
            return default
        with self._lock:
            value = self._entries.get(key, _MISS)
            if value is _MISS:
                self._misses.inc()
                return default
            self._entries.move_to_end(key)
            self._hits.inc()
            return value

    def put(self, key: Hashable, value: Any, epoch: int | None = None) -> None:
        """Store a value, evicting the least recently used beyond capacity.

        When ``epoch`` is given the store is skipped if any
        invalidation happened since that epoch was read — see
        :attr:`epoch`.
        """
        if self.capacity <= 0:
            return
        with self._lock:
            if epoch is not None and epoch != self._epoch:
                return
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions.inc()

    def get_or_compute(self, key: Hashable, factory: Callable[[], Any]) -> Any:
        """Cached value for ``key``, computing and storing it on a miss.

        The factory runs outside the lock (concurrent misses may
        compute in parallel); the result is only stored if no
        invalidation happened while it was being computed.  A disabled
        cache (capacity <= 0) skips the probe and the store and goes
        straight to the factory.
        """
        if self.capacity <= 0:
            self._misses.inc()
            return factory()
        with self._lock:
            value = self._entries.get(key, _MISS)
            if value is not _MISS:
                self._entries.move_to_end(key)
                self._hits.inc()
                return value
            self._misses.inc()
            observed_epoch = self._epoch
        computed = factory()
        self.put(key, computed, epoch=observed_epoch)
        return computed

    def invalidate(self, key: Hashable) -> bool:
        """Drop one entry; returns whether it existed."""
        with self._lock:
            self._epoch += 1
            if key in self._entries:
                del self._entries[key]
                self._invalidations.inc()
                return True
            return False

    def invalidate_where(self, predicate: Callable[[Hashable], bool]) -> int:
        """Drop every entry whose key satisfies ``predicate``.

        Returns the number of dropped entries.  This is the targeted
        invalidation primitive: after a rating update only the keys
        touching the affected users are scanned out, the rest of the
        cache stays warm.
        """
        with self._lock:
            self._epoch += 1
            doomed = [key for key in self._entries if predicate(key)]
            for key in doomed:
                del self._entries[key]
            if doomed:
                self._invalidations.inc(len(doomed))
            return len(doomed)

    def clear(self) -> int:
        """Drop everything; returns the number of dropped entries."""
        with self._lock:
            self._epoch += 1
            count = len(self._entries)
            self._entries.clear()
            if count:
                self._invalidations.inc(count)
            return count


class CachedSimilarity(UserSimilarity):
    """Read-through pair-score cache around any similarity measure.

    Pair keys are *directional* — ``(a, b)`` and ``(b, a)`` are cached
    separately.  The measures are mathematically symmetric but not
    bit-symmetric (their accumulation order over co-rated items or
    vector entries depends on the argument order), and the serving
    layer promises results bit-identical to the cold pipeline, which
    always evaluates ``simU(row_owner, candidate)``.  Halving the key
    space is not worth 1-ulp divergences.

    The decorated measure's batched :meth:`similarities` stays batched:
    only the missing candidates are forwarded to the inner measure in
    one call.
    """

    def __init__(self, inner: UserSimilarity, cache: ScoreCache) -> None:
        self.inner = inner
        self.cache = cache
        self.name = f"cached-{inner.name}"

    @staticmethod
    def _key(user_a: str, user_b: str) -> tuple[str, str]:
        return (user_a, user_b)

    def similarity(self, user_a: str, user_b: str) -> float:
        """One pair score, read through the cache (self-pairs are 1.0)."""
        if user_a == user_b:
            return 1.0
        if self.cache.capacity <= 0:
            return self.inner.similarity(user_a, user_b)
        key = self._key(user_a, user_b)
        epoch = self.cache.epoch
        score = self.cache.get(key, _MISS)
        if score is _MISS:
            score = self.inner.similarity(user_a, user_b)
            self.cache.put(key, score, epoch=epoch)
        return score

    def similarities(
        self, user_id: str, candidates: Iterable[str]
    ) -> dict[str, float]:
        """Batched pair scores; only cache misses reach the inner measure.

        A zero-capacity cache is bypassed outright: every probe would
        miss and every put would be dropped, yet at scale the per-pair
        lock/lookup round trips cost as much as the packed kernel
        itself.  The inner batch returns scores in candidate order, so
        the bypass is bit-identical to the probing path.
        """
        candidate_list = [c for c in candidates if c != user_id]
        if self.cache.capacity <= 0:
            return self.inner.similarities(user_id, candidate_list)
        scores: dict[str, float] = {}
        missing: list[str] = []
        epoch = self.cache.epoch
        for candidate in candidate_list:
            cached = self.cache.get(self._key(user_id, candidate), _MISS)
            if cached is _MISS:
                missing.append(candidate)
            else:
                scores[candidate] = cached
        if missing:
            computed = self.inner.similarities(user_id, missing)
            for candidate, score in computed.items():
                self.cache.put(self._key(user_id, candidate), score, epoch=epoch)
            scores.update(computed)
        # Preserve the candidate order of the inner contract.
        return {c: scores[c] for c in candidate_list if c in scores}

    @property
    def profile_corpus_sensitive(self) -> bool:  # type: ignore[override]
        """Whether one profile edit can shift *every* pair score (TF-IDF)."""
        return self.inner.profile_corpus_sensitive

    def picklable_measure(self) -> UserSimilarity:
        """Ship the wrapped measure — the cache (and its lock) stay home.

        Worker processes recompute instead of reading this cache; the
        scores are bit-identical either way, which is the cache's own
        contract.
        """
        return self.inner.picklable_measure()

    def with_private_packed(self) -> "CachedSimilarity":
        """A per-shard variant sharing this pair cache.

        Forwards to the inner measure's ``with_private_packed`` (see
        :meth:`repro.similarity.ratings_sim.PearsonRatingSimilarity.with_private_packed`)
        and wraps the private clone around the *same* :class:`ScoreCache`,
        so shards keep one unified pair cache while owning independent
        packed state.  Returns ``self`` when the inner measure has no
        packed state to privatise.
        """
        maker = getattr(self.inner, "with_private_packed", None)
        if not callable(maker):
            return self
        inner_clone = maker()
        if inner_clone is self.inner:
            return self
        return CachedSimilarity(inner_clone, self.cache)

    def invalidate_user(self, user_id: str) -> None:
        """Drop every cached pair involving ``user_id`` and inner state."""
        self.cache.invalidate_where(lambda key: user_id in key)
        self.inner.invalidate_user(user_id)

    def invalidate_user_ratings(self, user_id: str) -> None:
        """Ratings-only variant: pairs with ``user_id`` plus inner rating state.

        The pair drops are still needed (rating-based components change
        with the new rating), but profile/semantic inner state survives.
        """
        self.cache.invalidate_where(lambda key: user_id in key)
        self.inner.invalidate_user_ratings(user_id)
