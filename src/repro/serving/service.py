"""The stateful recommendation service (serving layer).

The paper's pipeline is a stateless library: every call recomputes user
similarities, peer sets and relevance tables from scratch.  That is the
right shape for reproducing Table II and the wrong shape for serving
heavy traffic.  :class:`RecommendationService` wraps one
:class:`~repro.data.datasets.HealthDataset` and one
:class:`~repro.config.RecommenderConfig` behind a warm, index-backed
façade:

* a :class:`~repro.serving.index.NeighborIndex` holds each user's
  thresholded peer list, built once (or lazily) and patched in place on
  updates;
* a :class:`~repro.serving.cache.ScoreCache` holds pairwise similarity
  scores, another one holds per-user relevance rows;
* :meth:`ingest_rating` / :meth:`update_profile` apply *targeted*
  invalidation — only the touched user, the users whose indexed peer
  list changed, and the users that count the touched user as a peer
  lose cached state;
* :meth:`recommend_many` answers a batch of group requests, sharing
  peer and relevance computation across overlapping groups, optionally
  on a thread pool.

Warm results are bit-identical to the cold
:class:`~repro.core.pipeline.CaregiverPipeline`: both go through the
same peer ordering and the same Equation 1 inner loop
(:func:`~repro.core.relevance.predict_table`).
"""

from __future__ import annotations

import json
import os
import threading
import time
import weakref
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator, Sequence

from ..config import DEFAULT_CONFIG, RecommenderConfig, resolve_positive
from ..core.candidates import GroupCandidates
from ..core.pipeline import (
    CaregiverRecommendation,
    build_selector,
    build_similarity,
)
from ..core.aggregation import get_aggregation
from ..core.relevance import ScoredItem, predict_table, rank_items
from ..data.datasets import HealthDataset
from ..data.groups import Group
from ..data.users import User
from ..exceptions import ExecutionError, ValidationError
from ..exec import (
    ExecutionBackend,
    SerialBackend,
    ThreadBackend,
    get_backend,
    resolve_backend,
)
from ..kernels import (
    SpillError,
    attach_spill,
    get_packed,
    items_unrated_by_all_packed,
    predict_row_packed,
    predict_topk_packed,
)
from ..obs import MetricsRegistry, get_registry, span
from ..resilience import Deadline
from ..similarity.base import UserSimilarity
from ..validation import validate_group_response, validate_user_response
from ..similarity.peers import peers_as_mapping
from .cache import CachedSimilarity, ScoreCache
from .index import NeighborIndex
from .sharding import ShardedNeighborIndex
from .snapshot import (
    is_sharded_snapshot_path,
    load_index_snapshot,
    load_sharded_snapshot,
    save_index_snapshot,
    save_sharded_snapshot,
    snapshot_fingerprint,
)


class _ReadWriteLock:
    """Many concurrent readers, one exclusive writer.

    Request paths read the rating matrix (whose dicts must not be
    mutated mid-iteration); the update paths mutate it.  Readers run
    in parallel (the batch API's thread pool), a writer waits for the
    readers to drain and blocks new ones.
    """

    def __init__(self) -> None:
        self._condition = threading.Condition()
        self._readers = 0
        self._writing = False

    @contextmanager
    def read(self) -> Iterator[None]:
        with self._condition:
            while self._writing:
                self._condition.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._condition:
                self._readers -= 1
                self._condition.notify_all()

    @contextmanager
    def write(self) -> Iterator[None]:
        with self._condition:
            while self._writing or self._readers:
                self._condition.wait()
            self._writing = True
        try:
            yield
        finally:
            with self._condition:
                self._writing = False
                self._condition.notify_all()


# -- process/pool-backend worker state --------------------------------------
#
# ``recommend_many`` under the process and pool backends builds one
# service per worker (shipped the dataset/config once via the backend
# initializer) and answers group requests from it.  The warm/cold
# bit-identity invariant makes the worker's answers equal to the
# parent's.  Under the long-lived pool backend the worker service stays
# resident between batches; ``_apply_serve_delta`` replays the parent's
# rating/profile mutations into it so an epoch-stale worker converges
# on exactly the parent's state.

_SERVE_WORKER: "RecommendationService | None" = None

#: Companion files of a packed spill directory (``config.packed_spill``):
#: the JSON dataset the workers bootstrap their matrix from, and the
#: append-only mutation journal replayed on top of it.
SPILL_DATASET_NAME = "dataset.json"
SPILL_JOURNAL_NAME = "journal.jsonl"


def _load_spill_dataset(directory: str | Path) -> HealthDataset:
    """Rebuild the dataset a spill directory was published from.

    The ratings payload carries the parent matrix's ``user_order`` /
    ``item_order`` interning orders (see
    :meth:`~repro.data.ratings.RatingMatrix.from_dict`), so the rebuilt
    matrix validates bit-for-bit against the mmap'd CSR arrays.  A
    truncated or otherwise unparsable dataset file raises a typed
    :class:`~repro.kernels.SpillError` instead of a bare JSON decode
    error — a worker must never boot from a torn publish.
    """
    path = Path(directory) / SPILL_DATASET_NAME
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise SpillError(
            f"spill dataset {path} is not valid JSON ({exc}); the spill "
            f"publish was interrupted or the file was truncated — delete "
            f"the spill directory and restart the owning service to "
            f"republish it"
        ) from exc
    return HealthDataset.from_dict(payload)


#: Expected journal-delta arity per kind (see ``_apply_serve_delta``).
_JOURNAL_DELTA_ARITY = {"rating": 4, "profile": 3}


def _replay_spill_journal(directory: str | Path) -> int:
    """Replay the spill journal into the resident worker service.

    Each line is one delta tuple as logged by the parent's mutation
    paths; replaying goes through :func:`_apply_serve_delta`, the exact
    code path the pool's broadcast sync uses.  Replays are idempotent
    (a rating re-add overwrites, a profile payload overwrites), so a
    delta that also arrives through a later sync packet is harmless.
    Returns the number of deltas applied.

    A journal whose final line lacks its trailing newline is a *torn
    append* — the writer died mid-``write``.  The torn tail is safe to
    drop (the parent journals **before** bumping the backend epoch, so
    a torn delta was never acknowledged anywhere) but never silent: the
    skip is counted as ``spill_journal_torn_tail`` in the process
    registry.  Any other malformed line — bad JSON on an interior line,
    a delta of the wrong shape — means the journal itself is corrupt
    and raises a typed :class:`~repro.kernels.SpillError` rather than
    replaying a half-understood mutation.
    """
    path = Path(directory) / SPILL_JOURNAL_NAME
    if not path.exists():
        return 0
    raw = path.read_text(encoding="utf-8")
    lines = raw.split("\n")
    # A complete journal ends with a newline, leaving a final empty
    # element; a non-empty final element is the torn append.
    torn_tail = lines[-1] if lines[-1] else None
    applied = 0
    for number, line in enumerate(lines[:-1], start=1):
        if not line.strip():
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            raise SpillError(
                f"spill journal {path} line {number} is not valid JSON "
                f"({exc}); the journal is corrupt — delete the spill "
                f"directory and restart the owning service to republish"
            ) from exc
        delta = tuple(payload) if isinstance(payload, list) else ()
        kind = delta[0] if delta else None
        if _JOURNAL_DELTA_ARITY.get(kind) != len(delta):
            raise SpillError(
                f"spill journal {path} line {number} holds a malformed "
                f"delta {payload!r}; expected a [kind, ...] list with "
                f"arities {_JOURNAL_DELTA_ARITY} — the journal is corrupt, "
                f"delete the spill directory and republish"
            )
        _apply_serve_delta(delta)
        applied += 1
    if torn_tail is not None:
        # Loud but non-fatal: the delta never committed (journal write
        # precedes the epoch bump), so skipping reproduces the parent's
        # last acknowledged state.
        get_registry().counter("spill_journal_torn_tail").inc()
    return applied


def _init_serve_worker(
    dataset: HealthDataset | None,
    config: RecommenderConfig,
    selector: str,
    similarity: UserSimilarity | None,
) -> None:
    global _SERVE_WORKER
    # ``dataset=None`` is the spill-bootstrap sentinel: instead of a
    # pickled dataset/measure pair, the worker loads the published
    # dataset JSON, attaches the mmap'd packed arrays (inside the
    # service constructor, via ``config.packed_spill``) and replays the
    # mutation journal — worker bootstrap cost stops scaling with the
    # rating volume.
    from_spill = dataset is None
    if from_spill:
        dataset = _load_spill_dataset(config.packed_spill)
    # The worker service records into the process-default registry —
    # the same one the kernels use — so one drained delta carries the
    # worker's whole telemetry (requests, caches, kernels, repacks)
    # back to the parent.
    _SERVE_WORKER = RecommendationService(
        dataset,
        config,
        selector=selector,
        similarity=similarity,
        metrics=get_registry(),
        spill_writer=False,
    )
    if from_spill:
        _replay_spill_journal(config.packed_spill)


def _serve_group_task(
    spec: tuple[Group, int],
) -> CaregiverRecommendation:
    group, z = spec
    assert _SERVE_WORKER is not None
    return _SERVE_WORKER.recommend_group(group, z=z)


def _apply_serve_delta(delta: tuple) -> None:
    """Replay one parent-side mutation into the resident worker service.

    The delta payloads are produced by :meth:`RecommendationService.
    ingest_rating` / :meth:`RecommendationService.update_profile`.
    Replaying goes through the worker service's own update path, so the
    worker performs the same matrix mutation and the same targeted
    invalidation the parent did — deterministic, hence bit-identical.
    """
    assert _SERVE_WORKER is not None
    kind = delta[0]
    if kind == "rating":
        _, user_id, item_id, value = delta
        _SERVE_WORKER.ingest_rating(user_id, item_id, value)
    elif kind == "profile":
        _, user_id, payload = delta
        fresh = User.from_dict(payload)

        def _overwrite(user: User) -> None:
            user.name = fresh.name
            user.age = fresh.age
            user.gender = fresh.gender
            user.record = fresh.record
            user.attributes = dict(fresh.attributes)

        _SERVE_WORKER.update_profile(user_id, _overwrite)
    else:  # pragma: no cover - guards future delta kinds
        raise ExecutionError(f"unknown serve delta kind {kind!r}")


class RecommendationService:
    """Cached, index-backed façade over the caregiver pipeline.

    Parameters
    ----------
    dataset:
        The data bundle served by this instance.
    config:
        Recommendation parameters; also supplies the cache sizes
        (``similarity_cache_size``, ``relevance_cache_size``), the
        default batch width (``serve_workers``), the execution backend
        (``exec_backend``/``exec_workers``) and the index sharding
        (``index_shards``).
    selector:
        Fairness-aware selection algorithm name (as in the pipeline).
    similarity:
        Optional pre-built similarity measure; defaults to the one the
        config selects.
    backend:
        Execution backend (instance or name) for index builds and batch
        requests; defaults to the config's ``exec_backend``.
    metrics:
        The :class:`~repro.obs.MetricsRegistry` every service-side
        counter, cache statistic, latency histogram and span records
        into.  Defaults to a fresh per-service registry (stats stay
        per-instance); the CLI passes the process-default registry so
        service, pool and kernel telemetry form one view.
    spill_writer:
        Whether this instance may *publish* to ``config.packed_spill``
        (write the CSR spill, the dataset JSON and a fresh journal) and
        append mutations to the journal.  ``True`` (default) for the
        parent service that owns the authoritative matrix;
        :func:`_init_serve_worker` passes ``False`` so resident workers
        only ever read the spill.
    """

    def __init__(
        self,
        dataset: HealthDataset,
        config: RecommenderConfig = DEFAULT_CONFIG,
        selector: str = "greedy",
        similarity: UserSimilarity | None = None,
        backend: ExecutionBackend | str | None = None,
        metrics: MetricsRegistry | None = None,
        spill_writer: bool = True,
    ) -> None:
        self.dataset = dataset
        self.config = config
        self.matrix = dataset.ratings
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        # A backend instance stays the caller's to close; one the
        # service instantiates from a name/config is owned (see close()).
        self._owns_backend = not isinstance(backend, ExecutionBackend)
        if isinstance(backend, ExecutionBackend):
            self.backend = backend
        else:
            self.backend = get_backend(
                backend or config.exec_backend,
                config.exec_workers or None,
                pool_sync=config.pool_sync,
                pool_min_workers=config.pool_min_workers or None,
                pool_max_workers=config.pool_max_workers or None,
                pool_idle_ttl=config.pool_idle_ttl,
                pool_target_p99_ms=config.pool_target_p99_ms or None,
                remote_workers=config.remote_workers or None,
                remote_heartbeat_interval=config.remote_heartbeat_interval,
                remote_heartbeat_timeout=config.remote_heartbeat_timeout,
                remote_connect_timeout=config.remote_connect_timeout,
                remote_fingerprint=config.fingerprint(),
                degraded_mode=config.degraded_mode,
                metrics=self.metrics,
            )
        # A pool backend keeps a resident worker service between
        # batches; teach it how to replay this service's mutations so
        # a stale worker can delta-sync instead of a full re-ship.
        bind_applier = getattr(self.backend, "bind_delta_applier", None)
        if bind_applier is not None:
            bind_applier(_apply_serve_delta, _init_serve_worker)
        base = similarity or build_similarity(dataset, config)
        # The packed CSR view behind the kernels: shared per matrix, so
        # the Pearson measure, the neighbour index and the prediction-
        # table path all read (and dirty-mark) the same arrays.  The
        # mutation paths repack incrementally; pool workers never see
        # packed blobs — with a spill directory configured they mmap
        # the published arrays, otherwise they repack from their own
        # replayed deltas.
        self._spill_writer = spill_writer
        if config.kernel != "packed":
            self._packed = None
        elif config.packed_spill:
            # Reuse the on-disk spill when it matches this matrix
            # (service restart, worker bootstrap); any mismatch falls
            # back to an in-memory pack, which the publish below then
            # rewrites to disk.
            self._packed = attach_spill(self.matrix, config.packed_spill)
            if spill_writer:
                self._publish_spill()
        else:
            self._packed = get_packed(self.matrix)
        self.similarity_cache = ScoreCache(
            config.similarity_cache_size, name="similarity", metrics=self.metrics
        )
        self.similarity = CachedSimilarity(base, self.similarity_cache)
        if config.index_shards > 1:
            self.index: NeighborIndex | ShardedNeighborIndex = (
                ShardedNeighborIndex(
                    self.matrix,
                    self.similarity,
                    threshold=config.peer_threshold,
                    num_shards=config.index_shards,
                )
            )
        else:
            self.index = NeighborIndex(
                self.matrix, self.similarity, threshold=config.peer_threshold
            )
        self.relevance_cache = ScoreCache(
            config.relevance_cache_size, name="relevance", metrics=self.metrics
        )
        self.group_cache = ScoreCache(
            config.group_cache_size, name="group", metrics=self.metrics
        )
        self.selector_name = selector
        self.selector = build_selector(selector)
        self.aggregation = get_aggregation(config.aggregation)
        self._data_lock = _ReadWriteLock()
        # Shard versions at the last per-shard save/load, keyed by
        # resolved snapshot directory — drives incremental saves.
        self._snapshot_versions: dict[str, list[int]] = {}
        # One stable initargs tuple per service: pool backends compare
        # initargs by element identity to decide whether their resident
        # workers were built from *this* service's state.
        self._serve_initargs: tuple | None = None
        # Mutations applied so far, and what each caller-held pool has
        # seen of them — used to force a re-ship on per-call backends
        # that missed an update (their epoch counter only hears about
        # mutations from the service that owns them).
        self._mutations = 0
        self._foreign_pools: "weakref.WeakKeyDictionary[ExecutionBackend, int]" = (
            weakref.WeakKeyDictionary()
        )
        # Request counters and latency histograms live in the registry;
        # stats() is a view over them.  The counter handles are cached
        # so the request paths pay one attribute load, not a registry
        # lookup, per bump.
        self._request_counters = {
            name: self.metrics.counter(name)
            for name in (
                "group_requests",
                "user_requests",
                "batch_requests",
                "ingested_ratings",
                "profile_updates",
            )
        }
        self._request_ms = {
            kind: self.metrics.histogram("request_ms", kind=kind)
            for kind in ("group", "user", "ingest")
        }
        # Response-shape enforcement (repro.validation): "off" skips,
        # "log" counts violations as validation_failures{shape=...},
        # "strict" additionally fails the request with a typed error.
        # Counter handles are created lazily per shape and cached.
        self._validation = config.validation
        self._validation_counters: dict[str, Any] = {}
        # Per-answer validation memo: id(answer) -> (weakref, epoch at
        # which it fully validated).  A cache hit whose entry object and
        # epoch both match was already checked against this exact matrix
        # state — re-deriving the same invariants per dashboard refresh
        # would put an O(members × z) tax on every hit.  The weakref
        # guards id() reuse: a recycled id cannot satisfy the identity
        # check through a dead reference.
        self._validated_answers: dict[int, tuple[Any, int]] = {}

    # -- response validation -------------------------------------------------

    def _flag_violations(self, violations: list) -> None:
        """Count (and in strict mode raise) response-shape violations."""
        if not violations:
            return
        for violation in violations:
            counter = self._validation_counters.get(violation.shape)
            if counter is None:
                counter = self.metrics.counter(
                    "validation_failures", shape=violation.shape
                )
                self._validation_counters[violation.shape] = counter
            counter.inc()
        if self._validation == "strict":
            raise ValidationError(
                "response violates declared shapes", tuple(violations)
            )

    def _validate_group(
        self,
        recommendation: CaregiverRecommendation,
        z: int,
        observed_epoch: int,
        locked: bool = False,
    ) -> None:
        """Validate one group answer against the declared shapes.

        ``observed_epoch`` is the group-cache epoch read before the
        answer was computed (or fetched).  Every mutation path bumps
        that epoch, so an unchanged epoch proves the live matrix still
        matches the answer and the already-rated shape can run; a
        changed epoch degrades to the matrix-independent shapes instead
        of flagging a legitimately-computed answer as stale.
        ``locked`` says the caller already holds the data read lock.

        Answers that fully validated once are memoised per epoch: a
        cache hit serving the *same object* under the *same epoch* is
        bit-identical to the answer already checked, so re-checking it
        buys nothing.  Any mutation bumps the epoch and forces one
        fresh full validation; a replaced (poisoned) entry is a new
        object and never matches the memo.
        """
        if self._validation == "off":
            return
        memo = self._validated_answers.get(id(recommendation))
        if (
            memo is not None
            and memo[0]() is recommendation
            and memo[1] == observed_epoch
        ):
            return
        if locked:
            matrix = (
                self.matrix
                if self.group_cache.epoch == observed_epoch
                else None
            )
            violations = validate_group_response(
                recommendation,
                z=z,
                matrix=matrix,
                selector=self.selector_name,
            )
        else:
            with self._data_lock.read():
                matrix = (
                    self.matrix
                    if self.group_cache.epoch == observed_epoch
                    else None
                )
                violations = validate_group_response(
                    recommendation,
                    z=z,
                    matrix=matrix,
                    selector=self.selector_name,
                )
        self._flag_violations(violations)
        if matrix is not None:
            # Only a full (matrix-backed) pass is worth memoising; the
            # degraded pass re-runs until an epoch-stable one lands.
            if len(self._validated_answers) > 4096:
                self._validated_answers = {
                    key: entry
                    for key, entry in self._validated_answers.items()
                    if entry[0]() is not None
                }
            self._validated_answers[id(recommendation)] = (
                weakref.ref(recommendation),
                observed_epoch,
            )

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Release the service's backend workers (if the service owns them)."""
        if self._owns_backend:
            self.backend.close()

    def __enter__(self) -> "RecommendationService":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- warm-up -------------------------------------------------------------

    def warm(
        self,
        user_ids: Iterable[str] | None = None,
        backend: ExecutionBackend | str | None = None,
    ) -> int:
        """Precompute peer rows (and nothing else); returns rows built.

        The per-user row builds fan out on ``backend`` (default: the
        service backend) — rows are bit-identical for every backend.
        """
        if isinstance(backend, ExecutionBackend):
            self._sync_foreign_pool(backend)
        with self._data_lock.read():
            with span("warm_index", self.metrics):
                return self.index.build(
                    user_ids,
                    backend=backend if backend is not None else self.backend,
                )

    def _sync_foreign_pool(self, backend: ExecutionBackend) -> None:
        """Make a caller-held backend safe to dispatch this service's work.

        The service reports its mutations to ``self.backend`` as they
        happen; a pool instance handed in per call has missed any that
        occurred since its last use here, so its resident workers may
        hold pre-mutation state.  Bumping its epoch (with no delta —
        this service's deltas were never logged there) forces a full
        re-ship exactly when a mutation slipped in between its uses,
        while leaving true steady-state reuse intact.
        """
        if backend is self.backend:
            return
        if self._foreign_pools.get(backend) != self._mutations:
            backend.notify_state_change()
            self._foreign_pools[backend] = self._mutations

    # -- packed spill --------------------------------------------------------

    def _publish_spill(self) -> None:
        """Publish this service's state to ``config.packed_spill``.

        Three artefacts, enough for a worker to boot without a pickled
        dataset: the packed CSR spill (:meth:`PackedRatings.save` — a
        no-op when the on-disk fingerprint already matches), the
        dataset JSON augmented with the matrix's interning orders, and
        an empty mutation journal (the published state *is* the
        journal's base).  Files are written atomically (tmp +
        ``os.replace``), so a worker opening mid-publish sees the old
        complete file, never a torn one.
        """
        directory = Path(self.config.packed_spill)
        directory.mkdir(parents=True, exist_ok=True)
        self._packed.save(directory)
        payload = self.dataset.to_dict()
        payload["ratings"]["user_order"] = self.matrix.user_ids()
        payload["ratings"]["item_order"] = self.matrix.item_ids()
        tmp = directory / f"{SPILL_DATASET_NAME}.tmp-{os.getpid()}"
        tmp.write_text(json.dumps(payload), encoding="utf-8")
        os.replace(tmp, directory / SPILL_DATASET_NAME)
        tmp = directory / f"{SPILL_JOURNAL_NAME}.tmp-{os.getpid()}"
        tmp.write_text("", encoding="utf-8")
        os.replace(tmp, directory / SPILL_JOURNAL_NAME)

    def _journal_delta(self, delta: tuple) -> None:
        """Append one mutation delta to the spill journal (writer only).

        Runs under the data write lock, *before* the backend epoch bump
        — a worker spawned later either finds the delta in the journal
        or receives it through a sync packet (or both; replay is
        idempotent), never neither.
        """
        if not (self._spill_writer and self.config.packed_spill):
            return
        path = Path(self.config.packed_spill) / SPILL_JOURNAL_NAME
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(list(delta)) + "\n")

    # -- snapshots -----------------------------------------------------------

    def snapshot_fingerprint(self) -> str:
        """Fingerprint binding snapshots to this config/dataset pair."""
        return snapshot_fingerprint(self.config, self.dataset)

    def _index_shards(self) -> list[NeighborIndex]:
        """The underlying flat indexes, in shard order (flat = 1 shard)."""
        shards = getattr(self.index, "shards", None)
        return list(shards) if shards else [self.index]

    def save_snapshot(
        self, path: str | Path, per_shard: bool | None = None
    ) -> Path:
        """Persist the warm neighbour-index rows to ``path``.

        ``per_shard=None`` picks the layout from the path: a directory
        (or a suffix-less path) gets the per-shard manifest layout,
        anything else the legacy single JSON file.  Per-shard saves are
        incremental — repeating a save after an update only rewrites
        the shards whose rows actually changed.
        """
        path = Path(path)
        if per_shard is None:
            per_shard = is_sharded_snapshot_path(path)
        with self._data_lock.read():
            if not per_shard:
                return save_index_snapshot(
                    self.index.snapshot_rows(),
                    path,
                    self.snapshot_fingerprint(),
                    num_shards=getattr(self.index, "num_shards", 1),
                )
            shards = self._index_shards()
            versions = [shard.version for shard in shards]
            key = str(path.resolve())
            saved = self._snapshot_versions.get(key)
            dirty = (
                None
                if saved is None or len(saved) != len(versions)
                else [old != new for old, new in zip(saved, versions)]
            )
            # Bound methods, not materialised rows: only the shards the
            # writer decides to rewrite pay for a row copy.
            result = save_sharded_snapshot(
                [shard.snapshot_rows for shard in shards],
                path,
                self.snapshot_fingerprint(),
                self.config.fingerprint(),
                dirty=dirty,
            )
            self._snapshot_versions[key] = versions
            return result

    def load_snapshot(self, path: str | Path) -> int:
        """Restore the neighbour index from a snapshot; returns rows loaded.

        Accepts both layouts (a per-shard directory is detected by the
        path being a directory).  Raises
        :class:`~repro.exceptions.SnapshotError` when the snapshot's
        fingerprint does not match this service's config semantics and
        dataset shape — serving from a stale index would silently
        change recommendations — or when any shard file is missing,
        corrupt, or out of step with its manifest.
        """
        path = Path(path)
        if path.is_dir():
            rows = load_sharded_snapshot(
                path, self.snapshot_fingerprint(), self.config.fingerprint()
            )
            with self._data_lock.write():
                loaded = self.index.load_rows(rows)
                # The directory now mirrors the in-memory rows: a save
                # back to it before any update can skip every shard.
                self._snapshot_versions[str(path.resolve())] = [
                    shard.version for shard in self._index_shards()
                ]
                return loaded
        rows = load_index_snapshot(path, self.snapshot_fingerprint())
        with self._data_lock.write():
            return self.index.load_rows(rows)

    # -- relevance rows ------------------------------------------------------

    def _effective_exclude(
        self, user_id: str, exclude: Iterable[str]
    ) -> frozenset[str]:
        """Canonicalise an exclusion set against the user's peer row.

        Excluding a user that is not in the thresholded peer list is a
        no-op, so the cache key only keeps the members that actually
        matter.  Overlapping groups whose other members are not peers of
        ``user_id`` all collapse onto the same row.
        """
        peer_ids = self.index.peer_ids(user_id)
        return frozenset(uid for uid in exclude if uid in peer_ids)

    def relevance_row(
        self, user_id: str, exclude: Iterable[str] = ()
    ) -> dict[str, float]:
        """Equation 1 predictions for every item ``user_id`` has not rated.

        ``exclude`` removes users from the peer pool (the group
        recommender excludes the other group members).  Rows are cached
        per ``(user, effective-exclusion)`` key.
        """
        with self._data_lock.read():
            return self._relevance_row(user_id, exclude)

    def _relevance_row(
        self, user_id: str, exclude: Iterable[str] = ()
    ) -> dict[str, float]:
        effective = self._effective_exclude(user_id, exclude)
        key = (user_id, effective)
        return self.relevance_cache.get_or_compute(
            key, lambda: self._compute_relevance_row(user_id, effective)
        )

    def _compute_relevance_row(
        self, user_id: str, exclude: frozenset[str]
    ) -> dict[str, float]:
        peers = self.index.peers_excluding(
            user_id, exclude, max_peers=self.config.max_peers
        )
        peer_similarities = peers_as_mapping(peers)
        if self._packed is not None:
            # One pass over the packed row in intern space: the unrated
            # set is derived from the CSR row itself (no string-keyed
            # unrated_items scan, no candidate-list decode/re-encode).
            return predict_row_packed(self._packed, user_id, peer_similarities)
        candidate_items = self.matrix.unrated_items(
            user_id, self.matrix.item_ids()
        )
        return predict_table(
            self.matrix, user_id, peer_similarities, candidate_items
        )

    # -- single-user requests ------------------------------------------------

    def recommend_user(
        self,
        user_id: str,
        k: int | None = None,
        *,
        deadline: Deadline | None = None,
    ) -> list[ScoredItem]:
        """Top-``k`` single-user recommendation (Section III.A), warm.

        ``k`` defaults to ``config.top_k``; an explicit non-positive
        ``k`` raises :class:`~repro.exceptions.ConfigurationError`.
        A ``deadline`` is checked on entry (single-user requests are
        parent-side and short; the budget gates admission, it never
        interrupts a row computation mid-way).
        """
        k = resolve_positive(k, self.config.top_k, "k")
        if deadline is not None:
            deadline.check(f"recommend_user({user_id!r})")
        started = time.perf_counter()
        if (
            self._packed is not None
            and self.config.packed_topk
            and self.config.relevance_cache_size == 0
        ):
            # Streaming top-k: with no relevance cache to warm there is
            # no reason to materialise the full row — the packed kernel
            # feeds a bounded heap directly.  Output is bit-identical
            # to rank_items over the full row (same pinned tie-break).
            with self._data_lock.read():
                peers = self.index.peers_excluding(
                    user_id, (), max_peers=self.config.max_peers
                )
                pairs = predict_topk_packed(
                    self._packed, user_id, peers_as_mapping(peers), k
                )
                result = [
                    ScoredItem(item_id=item_id, score=score)
                    for item_id, score in pairs
                ]
                # Validated under the same read lock the answer was
                # computed under, so the already-rated shape compares
                # against exactly the matrix state that produced it.
                # The dict matrix is the independent source here — this
                # cross-checks the packed decode against it.
                self._validate_user(result, user_id, k)
            self._record("user", started, "user_requests")
            return result
        with self._data_lock.read():
            row = self._relevance_row(user_id)
            result = rank_items(row, k)
            self._validate_user(result, user_id, k)
        self._record("user", started, "user_requests")
        return result

    def _validate_user(
        self, result: list[ScoredItem], user_id: str, k: int
    ) -> None:
        """Validate one user answer (caller holds the data read lock)."""
        if self._validation == "off":
            return
        self._flag_violations(
            validate_user_response(
                result, user_id=user_id, k=k, matrix=self.matrix
            )
        )

    # -- group requests ------------------------------------------------------

    def recommend_group(
        self,
        group: Group,
        z: int | None = None,
        *,
        deadline: Deadline | None = None,
    ) -> CaregiverRecommendation:
        """Fairness-aware group recommendation, warm.

        Produces the same :class:`CaregiverRecommendation` as
        :meth:`CaregiverPipeline.recommend` on the same inputs.
        Finished recommendations are cached per ``(members, z)`` —
        repeated dashboard refreshes are answered without recomputing —
        and invalidated as soon as an update touches any member.
        ``z`` defaults to ``config.top_z``; an explicit non-positive
        ``z`` raises :class:`~repro.exceptions.ConfigurationError`.
        A ``deadline`` is checked on entry — between group requests in
        a serial batch, never inside one group's computation.
        """
        z = resolve_positive(z, self.config.top_z, "z")
        if deadline is not None:
            deadline.check(
                f"recommend_group of {len(group.member_ids)} member(s)"
            )
        started = time.perf_counter()
        cache_key = (tuple(group.member_ids), z)
        group_epoch = self.group_cache.epoch
        cached = self.group_cache.get(cache_key)
        if cached is not None:
            # Cache hits are served responses too — strict mode must
            # catch a corrupted cache entry, not just a fresh compute.
            self._validate_group(cached, z, group_epoch)
            self._record("group", started, "group_requests")
            return cached
        with self._data_lock.read():
            if self._packed is not None and self.config.packed_scan:
                # Packed candidate scan: one bytearray mask over the
                # member rows, decoded to strings once at the end —
                # same items, same (matrix insertion) order as the
                # dict-path scan below.
                candidate_items = items_unrated_by_all_packed(
                    self._packed, group.member_ids
                )
            else:
                candidate_items = self.matrix.items_unrated_by_all(
                    group.member_ids
                )
            table: dict[str, dict[str, float]] = {}
            for member_id in group:
                others = [uid for uid in group.member_ids if uid != member_id]
                row = self._relevance_row(member_id, exclude=others)
                table[member_id] = {
                    item_id: row[item_id]
                    for item_id in candidate_items
                    if item_id in row
                }
        candidates = GroupCandidates.from_relevance_table(
            group,
            table,
            aggregation=self.aggregation,
            top_k=self.config.top_k,
            candidate_limit=self.config.candidate_pool_size,
        )
        selection = self.selector.select(candidates, z)
        plain = tuple(candidates.top_group_items(z))
        recommendation = CaregiverRecommendation(
            group=group,
            selection=selection,
            plain_top_z=plain,
            candidates=candidates,
        )
        self._validate_group(recommendation, z, group_epoch)
        self.group_cache.put(cache_key, recommendation, epoch=group_epoch)
        self._record("group", started, "group_requests")
        return recommendation

    def recommend_many(
        self,
        groups: Sequence[Group],
        z: int | None = None,
        workers: int | None = None,
        backend: ExecutionBackend | str | None = None,
        deadline: Deadline | None = None,
    ) -> list[CaregiverRecommendation]:
        """Answer a batch of group requests, in input order.

        Identical groups in the batch are computed once; overlapping
        groups share peer rows and relevance rows through the caches.
        The distinct groups fan out on an execution backend — explicit
        ``backend`` argument first, then the service backend, then (for
        backward compatibility) a thread pool when ``workers > 1``:

        * **thread** — requests run as parallel readers against the
          shared caches and index; a concurrent :meth:`ingest_rating` /
          :meth:`update_profile` waits for in-flight requests to drain
          (results computed while an update slips in between requests
          are simply not cached — see :attr:`ScoreCache.epoch`);
        * **process** — each worker process receives the dataset and
          config once and computes groups CPU-parallel; results are
          bit-identical (the warm/cold invariant) and are folded back
          into this service's group cache.

        A ``deadline`` (see :class:`~repro.resilience.Deadline`) caps
        the whole batch end-to-end: it is checked on entry, between
        groups on the serial path, and between dispatch rounds on the
        backend paths — :class:`~repro.exceptions.DeadlineExceeded`
        propagates before any partial results are recorded.
        """
        z_value = resolve_positive(z, self.config.top_z, "z")
        if deadline is not None:
            deadline.check(f"recommend_many of {len(groups)} group(s)")
        self._request_counters["batch_requests"].inc()
        distinct: dict[tuple[str, ...], Group] = {}
        for group in groups:
            distinct.setdefault(tuple(group.member_ids), group)
        resolved, owned = self._batch_backend(workers, backend)
        try:
            with span(
                "recommend_many",
                self.metrics,
                groups=len(groups),
                distinct=len(distinct),
                backend=resolved.name,
            ):
                if len(distinct) <= 1 or resolved.name == "serial":
                    results = {
                        key: self.recommend_group(
                            group, z_value, deadline=deadline
                        )
                        for key, group in distinct.items()
                    }
                elif resolved.requires_pickling:
                    results = self._recommend_many_process(
                        distinct, z_value, resolved, deadline
                    )
                else:
                    with span(
                        "exec_dispatch", self.metrics, backend=resolved.name
                    ):
                        recommendations = resolved.map_items(
                            lambda group: self.recommend_group(
                                group, z_value, deadline=deadline
                            ),
                            list(distinct.values()),
                        )
                    results = dict(zip(distinct.keys(), recommendations))
        finally:
            if owned:
                resolved.close()
        return [results[tuple(group.member_ids)] for group in groups]

    def _batch_backend(
        self,
        workers: int | None,
        backend: ExecutionBackend | str | None,
    ) -> tuple[ExecutionBackend, bool]:
        """Pick the batch backend; ``owned`` means close it afterwards."""
        if backend is not None:
            if isinstance(backend, ExecutionBackend):
                self._sync_foreign_pool(backend)
                return backend, False
            return resolve_backend(backend, workers), True
        if self.backend.name != "serial":
            if workers is not None and workers != self.backend.workers:
                # An explicit per-call width wins over the service
                # default — spin up a same-kind backend for this batch.
                return resolve_backend(self.backend.name, workers), True
            return self.backend, False
        workers = workers or self.config.serve_workers
        if workers > 1:
            return ThreadBackend(workers), True
        return SerialBackend(), False

    def _worker_initargs(self) -> tuple:
        """The (cached) initializer arguments for serve worker processes.

        Built once per service and reused for every dispatch: a pool
        backend decides whether its resident workers still match this
        service by comparing initargs *identity*, so a fresh tuple per
        call would force a pointless re-ship per batch, while a stable
        one both enables steady-state reuse and makes two services
        sharing a backend restart it on hand-over instead of serving
        each other's data.  Ships this service's actual measure
        (unwrapped from its cache) — a custom similarity must survive
        the process hop or bit-identity silently breaks.

        With a packed spill published (``config.packed_spill`` on the
        packed kernel) the dataset and measure are replaced by ``None``
        sentinels: workers bootstrap from the spill directory (mmap'd
        CSR arrays + dataset JSON + journal) and rebuild the
        config-selected measure locally, so the initargs stop carrying
        the rating volume.  A custom ``similarity`` instance is not
        forwarded on this path — combine the two only with
        config-constructible measures.
        """
        if self._serve_initargs is None:
            spill_boot = (
                bool(self.config.packed_spill)
                and self.config.kernel == "packed"
                and self._spill_writer
            )
            self._serve_initargs = (
                None if spill_boot else self.dataset,
                # Workers skip response validation: the parent validates
                # every folded-back answer at its own boundary, so a
                # worker-side re-check would double the cost without
                # adding coverage.
                self.config.with_overrides(
                    exec_backend="serial",
                    exec_workers=0,
                    serve_workers=1,
                    validation="off",
                ),
                self.selector_name,
                None if spill_boot else self.similarity.picklable_measure(),
            )
        return self._serve_initargs

    def _recommend_many_process(
        self,
        distinct: dict[tuple[str, ...], Group],
        z: int,
        backend: ExecutionBackend,
        deadline: Deadline | None = None,
    ) -> dict[tuple[str, ...], CaregiverRecommendation]:
        """Fan distinct groups out to worker processes.

        Cached results are answered locally; only the misses cross the
        process boundary.  The read lock is held for the whole dispatch
        so the pickled dataset cannot change mid-batch.
        """
        results: dict[tuple[str, ...], CaregiverRecommendation] = {}
        missing: dict[tuple[str, ...], Group] = {}
        group_requests = self._request_counters["group_requests"]
        observed_epoch = self.group_cache.epoch
        for key, group in distinct.items():
            cached = self.group_cache.get((key, z))
            if cached is not None:
                self._validate_group(cached, z, observed_epoch)
                group_requests.inc()
                results[key] = cached
            else:
                missing[key] = group
        if not missing:
            return results
        started = time.perf_counter()
        with self._data_lock.read():
            epoch = self.group_cache.epoch
            with span(
                "exec_dispatch", self.metrics,
                backend=backend.name, tasks=len(missing),
            ):
                # The deadline kwarg is only forwarded when one is set:
                # a caller-supplied ExecutionBackend subclass predating
                # the deadline seam keeps working for budget-less calls.
                deadline_kwargs = (
                    {"deadline": deadline} if deadline is not None else {}
                )
                recommendations = backend.map_items(
                    _serve_group_task,
                    [(group, z) for group in missing.values()],
                    initializer=_init_serve_worker,
                    initargs=self._worker_initargs(),
                    **deadline_kwargs,
                )
            # Worker-computed answers cross the service boundary here:
            # validate them before they are folded into the cache and
            # returned.  Still under the read lock, so the matrix is
            # exactly the state the workers computed from.
            for recommendation in recommendations:
                self._validate_group(recommendation, z, epoch, locked=True)
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        per_group_ms = elapsed_ms / len(missing)
        group_hist = self._request_ms["group"]
        for key, recommendation in zip(missing.keys(), recommendations):
            self.group_cache.put((key, z), recommendation, epoch=epoch)
            group_requests.inc()
            group_hist.observe(per_group_ms)
            results[key] = recommendation
        return results

    # -- online updates ------------------------------------------------------

    def ingest_rating(self, user_id: str, item_id: str, value: float) -> set[str]:
        """Apply one rating and drop exactly the stale cached state.

        Returns the set of users whose cached relevance rows were
        invalidated.  The similarity pair cache loses only the pairs
        involving ``user_id``; the neighbour index rebuilds only
        ``user_id``'s row and patches the single affected entry in the
        other rows; relevance rows are dropped for the touched user,
        for every user whose peer list changed, and for every user that
        counts the touched user as a peer (their Equation 1 inputs
        changed even if their peer list did not).
        """
        started = time.perf_counter()
        with self._data_lock.write():
            self.matrix.add(user_id, item_id, value)
            # The packed view repacks exactly this user's row (plus the
            # touched inverted-index entries) on its next kernel call —
            # marked here so the repack happens even when the active
            # measure is not ratings-backed.
            if self._packed is not None:
                self._packed.mark_dirty(user_id)
            # Ratings-only invalidation: profile/semantic components
            # keep their state, a TF-IDF corpus refit is not triggered.
            self.similarity.invalidate_user_ratings(user_id)
            changed = self.index.refresh_user(user_id)
            affected = (
                {user_id} | changed | self.index.users_with_neighbor(user_id)
            )
            self._drop_affected(affected)
            # Resident worker pools must learn about the mutation: bump
            # the backend's state epoch (and log the replayable delta).
            # The spill journal entry lands first, so a worker spawned
            # from the spill can never miss a delta (see _journal_delta).
            delta = ("rating", user_id, item_id, value)
            self._mutations += 1
            self._journal_delta(delta)
            self.backend.notify_state_change(delta)
            self._record("ingest", started, "ingested_ratings")
            return affected

    def update_profile(
        self, user_id: str, mutate: Callable[[User], None] | None = None
    ) -> set[str]:
        """Apply a profile change and drop exactly the stale cached state.

        ``mutate`` (optional) receives the :class:`~repro.data.users.User`
        and edits it in place; calling without it signals an external
        edit.

        With a measure whose scores react corpus-wide to one profile
        (TF-IDF: one edit shifts every IDF weight), targeted
        invalidation would leave pairs not involving ``user_id``
        stale, so everything is dropped instead.  For the other
        measures only users whose peer list changed lose cached state.
        """
        with self._data_lock.write():
            if mutate is not None:
                mutate(self.dataset.users.get(user_id))
            self.similarity.invalidate_user(user_id)
            if self.similarity.profile_corpus_sensitive:
                self.similarity_cache.clear()
                self.index.clear()
                self.relevance_cache.clear()
                self.group_cache.clear()
                affected = set(self.matrix.user_ids())
                affected.add(user_id)
            else:
                changed = self.index.refresh_user(user_id)
                affected = {user_id} | changed
                self._drop_affected(affected)
            # Ship the post-mutation profile, not the mutate callable —
            # closures don't cross process boundaries.  The worker-side
            # applier overwrites its resident copy of the user and runs
            # the same update_profile invalidation the parent just did.
            delta = (
                "profile", user_id, self.dataset.users.get(user_id).to_dict()
            )
            self._mutations += 1
            self._journal_delta(delta)
            self.backend.notify_state_change(delta)
            self._request_counters["profile_updates"].inc()
            return affected

    def _drop_affected(self, affected: set[str]) -> None:
        """Drop the relevance rows and group results touching ``affected``.

        A group entry is also dropped when any member's peer row is not
        built in this service's index: results folded back from worker
        processes (the process/pool batch path) can be cached before
        the parent ever builds the supporting rows, and without a row
        the targeted-invalidation machinery cannot know whether the
        member depends on the touched user — conservatively treating
        such members as affected is what keeps worker-computed cache
        entries from being served stale after an update.
        """
        self.relevance_cache.invalidate_where(lambda key: key[0] in affected)
        self.group_cache.invalidate_where(
            lambda key: any(
                member in affected or not self.index.is_built(member)
                for member in key[0]
            )
        )

    # -- introspection -------------------------------------------------------

    def _record(self, kind: str, started: float, counter: str) -> None:
        """Bump one request counter and observe its latency histogram."""
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        self._request_counters[counter].inc()
        self._request_ms[kind].observe(elapsed_ms)

    def stats(self) -> dict[str, Any]:
        """Operational statistics, as a view over the metrics registry.

        The dict shape is backward compatible (``requests``,
        ``mean_group_ms``/``mean_user_ms``, the three cache dicts,
        ``index`` and ``backend``) with one addition: ``latency`` maps
        each request kind to the shared histogram's
        count/mean/p50/p95/p99 readout.
        """
        counters = {
            name: int(counter.value)
            for name, counter in self._request_counters.items()
        }
        return {
            "requests": counters,
            "mean_group_ms": self._request_ms["group"].mean,
            "mean_user_ms": self._request_ms["user"].mean,
            "latency": {
                kind: histogram.as_dict()
                for kind, histogram in self._request_ms.items()
            },
            "similarity_cache": self.similarity_cache.stats.as_dict(),
            "relevance_cache": self.relevance_cache.stats.as_dict(),
            "group_cache": self.group_cache.stats.as_dict(),
            "index": {
                "built_rows": self.index.built_rows,
                "users": self.matrix.num_users,
                "threshold": self.index.threshold,
                "shards": getattr(self.index, "num_shards", 1),
            },
            "backend": self._backend_stats(),
        }

    def _backend_stats(self) -> dict[str, Any]:
        stats: dict[str, Any] = {
            "name": self.backend.name,
            "workers": self.backend.workers,
        }
        pool_stats = getattr(self.backend, "pool_stats", None)
        if pool_stats is not None:
            stats["pool"] = pool_stats()
        remote_stats = getattr(self.backend, "remote_stats", None)
        if remote_stats is not None:
            stats["remote"] = remote_stats()
        return stats
