"""Network-fault chaos for the remote backend: bit-identical or loud.

The distributed analogue of ``test_chaos.py``'s binary promise: after
any network fault — a worker process SIGKILLed mid-batch, a frame torn
by a connection dropped mid-write, a worker offering the wrong config
fingerprint, a partition that silences heartbeats — a batch either
completes **bit-identical** to the serial reference (requeue onto ring
survivors) or raises a **typed** error
(:class:`~repro.exceptions.ExecutionError` /
:class:`~repro.exec.wire.WireError`).  A stale answer, a half-answered
batch or a silent hang is the one outcome no scenario may produce.

The fault injectors speak the real wire protocol over real loopback
sockets: :class:`_FakeWorker` is a hand-driven client that handshakes
like ``repro worker`` and then misbehaves on cue.
"""

from __future__ import annotations

import os
import random
import signal
import socket
import threading
import time

import pytest

from repro.config import RecommenderConfig
from repro.data.datasets import HealthDataset, generate_dataset
from repro.data.groups import Group
from repro.exceptions import ExecutionError
from repro.exec import RemoteBackend, run_worker
from repro.exec.wire import (
    Fault,
    FrameConnection,
    Hello,
    Stop,
    Task,
    TaskResult,
    Welcome,
    WireError,
    encode_message,
)
from repro.serving import RecommendationService

# Fast beacons so partition detection fits in test time; the generous
# timeout on the non-partition scenarios keeps loaded CI boxes from
# declaring healthy workers dead.
FAST = {"heartbeat_interval": 0.2, "heartbeat_timeout": 5.0}


def _config(**overrides) -> RecommenderConfig:
    return RecommenderConfig(peer_threshold=0.1, top_k=5, top_z=4, **overrides)


def _groups(dataset, count=3, seed=31) -> list[Group]:
    rng = random.Random(seed)
    return [
        Group(member_ids=sorted(rng.sample(dataset.users.ids(), 3)))
        for _ in range(count)
    ]


def _serial_reference(dataset_payload, groups, z=4) -> list[str]:
    service = RecommendationService(
        HealthDataset.from_dict(dataset_payload), _config()
    )
    try:
        return [repr(rec) for rec in service.recommend_many(groups, z=z)]
    finally:
        service.close()


@pytest.fixture(scope="module")
def dataset():
    return generate_dataset(num_users=18, num_items=24, ratings_per_user=8, seed=13)


# -- module-level task functions (pickled by reference across fork) ---------


def _square(x: int) -> int:
    return x * x


def _slow_square(x: int) -> int:
    time.sleep(0.15)
    return x * x


class _FakeWorker:
    """A hand-driven wire client impersonating a ``repro worker``.

    It performs the real HELLO → WELCOME handshake and then misbehaves
    exactly as instructed: tearing a frame mid-write, or going silent
    to simulate a network partition.
    """

    def __init__(self, address: tuple[str, int], fingerprint: str | None = None):
        sock = socket.create_connection(address, timeout=10.0)
        self.conn = FrameConnection(sock)
        self.conn.send(Hello(fingerprint=fingerprint))
        self.greeting = self.conn.recv(timeout=10.0)

    def tear_on_first_task(self) -> None:
        """Answer the first TASK with a torn RESULT frame, then vanish.

        After writing the torn frame it keeps draining inbound frames
        until the dispatcher goes quiet before closing: closing with
        unread TASK frames still queued in the kernel would turn the
        close into a TCP RST, and an RST flushes the parent's receive
        queue — destroying the very torn bytes this injector exists to
        plant.  A drained socket closes with a clean FIN instead, so
        the parent reads partial-frame-then-EOF and must classify it.
        """
        while True:
            message = self.conn.recv(timeout=30.0)
            if message is None or isinstance(message, Stop):
                return
            if isinstance(message, Task):
                index, _item = message.pairs[0]
                frame = encode_message(
                    TaskResult(
                        chunk_id=message.chunk_id,
                        index=index,
                        ok=True,
                        value=12345,  # must never surface in any result
                    )
                )
                self.conn._sock.sendall(frame[: len(frame) - 7])
                break
        while True:  # drain the tail of the dispatch burst, then FIN
            try:
                if self.conn.recv(timeout=0.5) is None:
                    break
            except (TimeoutError, WireError, OSError):
                break
        self.conn.close()

    def close(self) -> None:
        self.conn.close()


class TestWorkerKillRequeue:
    """SIGKILL mid-batch: unanswered items requeue onto ring survivors."""

    def test_one_of_two_killed_mid_batch_stays_bit_identical(self):
        with RemoteBackend(workers=2, **FAST) as backend:
            backend.map_items(_square, [0])  # boot the fleet
            victim = backend._spawned[0]

            def assassinate():
                time.sleep(0.3)
                os.kill(victim.pid, signal.SIGKILL)

            killer = threading.Thread(target=assassinate)
            killer.start()
            try:
                result = backend.map_items(_slow_square, range(24))
            finally:
                killer.join()
            assert result == [x * x for x in range(24)]
            stats = backend.remote_stats()
            assert stats["dead_workers"] >= 1
            assert stats["requeues"] >= 1
            # The next batch respawns back to width and stays correct.
            assert backend.map_items(_square, range(8)) == [
                x * x for x in range(8)
            ]
            assert backend.live_workers == 2

    def test_total_fleet_loss_is_loud_then_recovers(self):
        with RemoteBackend(workers=2, **FAST) as backend:
            backend.map_items(_square, [0])
            victims = list(backend._spawned)

            def massacre():
                time.sleep(0.3)
                for process in victims:
                    os.kill(process.pid, signal.SIGKILL)

            killer = threading.Thread(target=massacre)
            killer.start()
            try:
                with pytest.raises(ExecutionError, match="no workers survive"):
                    backend.map_items(_slow_square, range(24))
            finally:
                killer.join()
            # Recovery: a fresh fleet serves the same batch correctly.
            assert backend.map_items(_slow_square, range(24)) == [
                x * x for x in range(24)
            ]
            assert backend.remote_stats()["dead_workers"] >= 2

    def test_service_results_identical_after_worker_death(self, dataset):
        """The service-level contract: recommendations after a worker
        SIGKILL are bit-identical to the serial reference — the requeue
        is invisible in every payload byte."""
        payload = dataset.to_dict()
        groups = _groups(dataset, seed=47)
        reference = _serial_reference(payload, groups)
        config = _config(
            exec_backend="remote",
            exec_workers=2,
            serve_workers=2,
            group_cache_size=0,
            relevance_cache_size=0,
            validation="strict",
            remote_heartbeat_interval=0.2,
            remote_heartbeat_timeout=5.0,
        )
        service = RecommendationService(HealthDataset.from_dict(payload), config)
        try:
            first = [repr(rec) for rec in service.recommend_many(groups, z=4)]
            assert first == reference
            victim = service.backend._spawned[0]
            os.kill(victim.pid, signal.SIGKILL)
            victim.join()
            again = [repr(rec) for rec in service.recommend_many(groups, z=4)]
            assert again == reference
            assert service.backend.remote_stats()["dead_workers"] >= 1
        finally:
            service.close()


class TestTornFrames:
    """A connection dropped mid-frame: counted, requeued, never decoded."""

    def test_torn_result_frame_requeues_and_stays_bit_identical(self):
        with RemoteBackend(workers=2, **FAST) as backend:
            backend.map_items(_square, [0])  # boot the 2 real workers
            fake = _FakeWorker(backend.listen())
            assert isinstance(fake.greeting, Welcome)
            saboteur = threading.Thread(target=fake.tear_on_first_task)
            saboteur.start()
            try:
                # 12+ items → 12 chunks over 3 ring nodes; the fake
                # (worker-2) deterministically owns several chunk keys,
                # so it is guaranteed to receive the task it tears.
                result = backend.map_items(_square, range(24))
            finally:
                saboteur.join()
                fake.close()
            assert result == [x * x for x in range(24)]
            assert 12345 not in result  # the torn value never decoded
            stats = backend.remote_stats()
            assert stats["torn_frames"] >= 1
            assert stats["dead_workers"] >= 1
            assert stats["requeues"] >= 1


class TestFingerprintMismatch:
    """A worker built for another config is refused before serving."""

    def test_mismatched_hello_gets_a_fault_and_no_tasks(self):
        with RemoteBackend(
            workers=1, fingerprint="parent-fp", **FAST
        ) as backend:
            address = backend.listen()
            fake = _FakeWorker(address, fingerprint="other-fp")
            try:
                assert isinstance(fake.greeting, Fault)
                assert "fingerprint mismatch" in fake.greeting.message
                assert fake.greeting.details == {
                    "expected": "other-fp",
                    "serving": "parent-fp",
                }
            finally:
                fake.close()
            # The reject is counted and the backend still serves
            # correctly on its (fingerprint-agnostic) spawned worker.
            assert backend.map_items(_square, range(6)) == [
                x * x for x in range(6)
            ]
            stats = backend.remote_stats()
            assert stats["handshake_rejects"] == 1
            assert stats["live_workers"] == 1

    def test_run_worker_raises_typed_error_on_rejection(self):
        with RemoteBackend(
            workers=1, fingerprint="parent-fp", **FAST
        ) as backend:
            host, port = backend.listen()
            with pytest.raises(WireError, match="fingerprint mismatch"):
                run_worker(
                    host,
                    port,
                    fingerprint="other-fp",
                    heartbeat_interval=0.2,
                    handshake_timeout=10.0,
                )

    def test_matching_fingerprints_are_admitted(self):
        with RemoteBackend(
            workers=1, fingerprint="parent-fp", **FAST
        ) as backend:
            fake = _FakeWorker(backend.listen(), fingerprint="parent-fp")
            try:
                assert isinstance(fake.greeting, Welcome)
                assert fake.greeting.fingerprint == "parent-fp"
            finally:
                fake.close()


class TestHeartbeatPartition:
    """A silent worker is declared dead; its chunks requeue and finish."""

    def test_partitioned_worker_is_detected_and_requeued_around(self):
        with RemoteBackend(
            workers=1, heartbeat_interval=0.4, heartbeat_timeout=1.0
        ) as backend:
            backend.map_items(_square, [0])  # boot the real worker
            # A worker that handshakes, accepts its BOOT and TASKs, and
            # then never sends another byte — the socket stays open, so
            # only heartbeat silence can expose it.
            mute = _FakeWorker(backend.listen())
            assert isinstance(mute.greeting, Welcome)
            try:
                started = time.monotonic()
                result = backend.map_items(_square, range(24))
                elapsed = time.monotonic() - started
            finally:
                mute.close()
            assert result == [x * x for x in range(24)]
            assert elapsed >= 0.9, (
                "the batch finished before the heartbeat timeout could "
                "have fired — the mute worker never owned a chunk and "
                "the scenario is vacuous"
            )
            stats = backend.remote_stats()
            assert stats["dead_workers"] >= 1
            assert stats["requeues"] >= 1
            assert stats["heartbeats"] >= 1  # the live worker kept beating
