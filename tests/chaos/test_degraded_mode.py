"""Degraded-mode acceptance: total fleet loss falls back to serial.

The issue's headline chaos scenario, end to end: SIGKILL the *entire*
remote fleet mid-batch with ``degraded_mode="serial"`` and the batch
must still be answered — bit-identical to the serial reference, with
``remote_degraded_dispatches`` counting the fallback and no exception
reaching the caller.  Then the other half of the contract: a worker
(re)connecting through the ordinary handshake is re-admitted at the
parent's *current* epoch and the next batch is served remotely with
zero additional requeues.
"""

from __future__ import annotations

import os
import random
import signal
import threading
import time

import pytest

from repro.config import RecommenderConfig
from repro.data.datasets import HealthDataset, generate_dataset
from repro.data.groups import Group
from repro.exec import FleetLossError, RemoteBackend, run_worker
from repro.exec.wire import WireError
from repro.serving import RecommendationService

FAST = {"heartbeat_interval": 0.2, "heartbeat_timeout": 5.0}


def _config(**overrides) -> RecommenderConfig:
    return RecommenderConfig(peer_threshold=0.1, top_k=5, top_z=4, **overrides)


def _groups(dataset, count=3, seed=31) -> list[Group]:
    rng = random.Random(seed)
    return [
        Group(member_ids=sorted(rng.sample(dataset.users.ids(), 3)))
        for _ in range(count)
    ]


def _serial_reference(dataset_payload, groups, z=4, mutations=()) -> list[str]:
    service = RecommendationService(
        HealthDataset.from_dict(dataset_payload), _config()
    )
    try:
        for user_id, item_id, value in mutations:
            service.ingest_rating(user_id, item_id, value)
        return [repr(rec) for rec in service.recommend_many(groups, z=z)]
    finally:
        service.close()


@pytest.fixture(scope="module")
def dataset():
    return generate_dataset(num_users=18, num_items=24, ratings_per_user=8, seed=13)


def _square(x: int) -> int:
    return x * x


def _slow_square(x: int) -> int:
    time.sleep(0.15)
    return x * x


def _start_worker(backend: RemoteBackend) -> dict:
    """A real ``run_worker`` loop on a thread against the listener."""
    host, port = backend.listen()
    outcome: dict = {}

    def _run() -> None:
        try:
            outcome["served"] = run_worker(host, port, heartbeat_interval=0.2)
        except (WireError, OSError) as exc:
            outcome["error"] = exc

    threading.Thread(target=_run, daemon=True).start()
    return outcome


def _wait_for(predicate, timeout: float = 10.0) -> bool:
    cutoff = time.monotonic() + timeout
    while time.monotonic() < cutoff:
        if predicate():
            return True
        time.sleep(0.02)
    return False


class TestDegradedBackend:
    def test_sigkill_entire_fleet_mid_batch_serves_degraded(self):
        """The acceptance scenario at the backend layer, verbatim."""
        with RemoteBackend(
            workers=2, degraded_mode="serial", **FAST
        ) as backend:
            backend.map_items(_square, [0])  # boot the fleet
            victims = list(backend._spawned)

            def massacre() -> None:
                time.sleep(0.3)
                for process in victims:
                    os.kill(process.pid, signal.SIGKILL)

            killer = threading.Thread(target=massacre)
            killer.start()
            try:
                result = backend.map_items(_slow_square, range(24))
            finally:
                killer.join()
            # No exception reached us, and the answer is bit-identical.
            assert result == [x * x for x in range(24)]
            stats = backend.remote_stats()
            assert stats["degraded_dispatches"] >= 1
            assert stats["dead_workers"] >= 2
            # Recovery: the next batch respawns a fleet and is served
            # remotely again — the degraded counter stays where it was.
            assert backend.map_items(_square, range(8)) == [
                x * x for x in range(8)
            ]
            after = backend.remote_stats()
            assert after["degraded_dispatches"] == stats["degraded_dispatches"]
            assert after["live_workers"] == 2

    def test_degraded_off_still_raises_fleet_loss(self):
        """``off`` keeps the loud pre-existing contract, typed."""
        with RemoteBackend(
            workers=1, spawn_workers=False, connect_timeout=0.3, **FAST
        ) as backend:
            with pytest.raises(FleetLossError, match="no remote workers"):
                backend.map_items(_square, [1, 2, 3])

    def test_empty_fleet_degrades_without_ever_connecting(self):
        """Degraded mode also covers never-had-a-fleet, not just loss."""
        with RemoteBackend(
            workers=1,
            spawn_workers=False,
            connect_timeout=0.3,
            degraded_mode="serial",
            **FAST,
        ) as backend:
            assert backend.map_items(_square, range(6)) == [
                x * x for x in range(6)
            ]
            assert backend.remote_stats()["degraded_dispatches"] == 1


class TestDegradedService:
    def test_degrade_then_rejoin_serves_remotely_at_current_epoch(
        self, dataset
    ):
        """Service-level: degrade with no fleet, then rejoin and serve.

        Batch one runs with zero connected workers — the explicit
        remote backend degrades to in-process serial and the payloads
        are bit-identical to the serial reference.  A real worker then
        joins, the service ingests a rating (epoch bump), and batch
        two is served *remotely*: zero requeues, resident epoch equal
        to the parent epoch, degraded counter unchanged.
        """
        payload = dataset.to_dict()
        groups = _groups(dataset, seed=53)
        reference = _serial_reference(payload, groups)
        service = RecommendationService(
            HealthDataset.from_dict(payload),
            _config(
                serve_workers=2,
                group_cache_size=0,
                relevance_cache_size=0,
            ),
        )
        backend = RemoteBackend(
            spawn_workers=False,
            connect_timeout=0.5,
            degraded_mode="serial",
            **FAST,
        )
        try:
            degraded = [
                repr(rec)
                for rec in service.recommend_many(groups, z=4, backend=backend)
            ]
            assert degraded == reference
            stats = backend.remote_stats()
            assert stats["degraded_dispatches"] >= 1
            assert stats["live_workers"] == 0

            outcome = _start_worker(backend)
            assert _wait_for(
                lambda: sum(
                    backend.remote_stats()[k]
                    for k in ("live_workers", "pending_workers")
                )
                >= 1
            ), "worker never connected"
            user, item = dataset.users.ids()[0], dataset.items.ids()[0]
            service.ingest_rating(user, item, 4.0)
            reference_after = _serial_reference(
                payload, groups, mutations=[(user, item, 4.0)]
            )
            before = backend.remote_stats()
            again = [
                repr(rec)
                for rec in service.recommend_many(groups, z=4, backend=backend)
            ]
            assert again == reference_after
            after = backend.remote_stats()
            assert after["degraded_dispatches"] == before["degraded_dispatches"]
            assert after["requeues"] == before["requeues"]
            assert after["live_workers"] == 1
            assert after["resident_epoch"] == after["epoch"]
        finally:
            backend.close()
            service.close()
        assert "error" not in outcome  # the worker exited on clean EOF
