"""Scripted fault-injection chaos suite for the remote backend.

Where :mod:`tests.chaos.test_remote_faults` kills real processes and
hand-drives raw sockets, this suite scripts the faults *inside* the
worker via :class:`repro.resilience.FaultPlan`: drop the Nth RESULT
frame, tear one mid-write, go mute to simulate a partition, or die
after M served items (and optionally rejoin).  The fault ordinals are
drawn from a seeded RNG — CI runs the file under a seed matrix via the
``REPRO_FAULT_SEED`` environment variable, so each seed exercises a
different cut point while any one seed stays fully deterministic.

Every scenario asserts two things: the batch result is bit-identical
to the serial reference (faults cost retries, never correctness), and
the injector's own counters fired (the scenario actually injected what
it claims — no vacuous passes).
"""

from __future__ import annotations

import os
import random
import threading
import time

import pytest

from repro.exec import RemoteBackend, run_worker
from repro.exec.wire import WireError
from repro.resilience import (
    Deadline,
    DeadlineExceeded,
    FaultInjector,
    FaultPlan,
    RetryPolicy,
)

#: Seed for the fault-ordinal RNG; CI's chaos job sweeps this.
SEED = int(os.environ.get("REPRO_FAULT_SEED", "0"))

# Fast beacons, generous timeout: partitions are detected quickly in
# the one scenario that lowers heartbeat_timeout, while every other
# scenario never declares a healthy-but-busy worker dead on slow CI.
FAST = {
    "heartbeat_interval": 0.2,
    "heartbeat_timeout": 5.0,
    "connect_timeout": 10.0,
}
PARTITION = {
    "heartbeat_interval": 0.2,
    "heartbeat_timeout": 1.0,
    "connect_timeout": 10.0,
}

ITEMS = list(range(24))


def _rng(scenario: str) -> random.Random:
    """A per-scenario RNG: same seed + scenario, same fault ordinals."""
    return random.Random(f"{SEED}:{scenario}")


# -- module-level task functions (pickled by reference) ----------------------


def _square(x: int) -> int:
    return x * x


def _slow_square(x: int) -> int:
    time.sleep(0.15)
    return x * x


# -- in-process worker harness ----------------------------------------------


class _WorkerThread:
    """Run :func:`run_worker` on a thread against a backend's listener.

    Threads (not processes) so the test can hand the worker a live
    :class:`FaultInjector` and read its counters back afterwards.
    """

    def __init__(
        self,
        backend: RemoteBackend,
        *,
        injector: FaultInjector | None = None,
        rejoin: RetryPolicy | None = None,
    ) -> None:
        host, port = backend.listen()
        self.result: dict = {}

        def _run() -> None:
            try:
                self.result["served"] = run_worker(
                    host,
                    port,
                    heartbeat_interval=0.2,
                    fault_injector=injector,
                    rejoin=rejoin,
                )
            except (WireError, OSError) as exc:
                self.result["error"] = exc

        self.thread = threading.Thread(target=_run, daemon=True)
        self.thread.start()

    def join(self, timeout: float = 10.0) -> None:
        self.thread.join(timeout=timeout)


def _wait_for(predicate, timeout: float = 10.0) -> bool:
    cutoff = time.monotonic() + timeout
    while time.monotonic() < cutoff:
        if predicate():
            return True
        time.sleep(0.02)
    return False


def _fleet_size(backend: RemoteBackend) -> int:
    stats = backend.remote_stats()
    return stats["live_workers"] + stats["pending_workers"]


def _connect_sequenced(backend: RemoteBackend, faulty: _WorkerThread) -> None:
    """Admit the faulty worker first, then a clean survivor.

    Sequencing pins worker ids (faulty = ``worker-0``), and the hash
    ring's placement of the ``chunk-N`` keys is MD5-stable — so the
    faulty worker owns the majority of the chunks on every run and the
    seeded fault ordinals are guaranteed to be reachable.
    """
    assert _wait_for(lambda: _fleet_size(backend) >= 1), (
        "faulty worker never connected"
    )
    _WorkerThread(backend)
    assert _wait_for(lambda: _fleet_size(backend) >= 2), (
        "survivor worker never connected"
    )


class TestScriptedFaults:
    def test_dropped_result_requeues_after_scripted_death(self):
        """A silently dropped RESULT is recovered by the death requeue.

        A drop alone would leave the chunk unanswered while heartbeats
        keep flowing, so the plan pairs it with ``die_after_tasks``:
        the worker's EOF requeues everything it never answered —
        including the item whose RESULT frame the injector swallowed.
        """
        rng = _rng("drop")
        die_after = rng.randint(2, 6)
        plan = FaultPlan(
            drop_results=(rng.randint(1, die_after),),
            die_after_tasks=die_after,
        )
        injector = FaultInjector(plan)
        with RemoteBackend(spawn_workers=False, **FAST) as backend:
            faulty = _WorkerThread(backend, injector=injector)
            _connect_sequenced(backend, faulty)
            assert backend.map_items(_square, ITEMS) == [
                x * x for x in ITEMS
            ]
            stats = backend.remote_stats()
        assert injector.results_dropped == 1
        assert injector.deaths == 1
        assert stats["requeues"] >= 1
        assert stats["dead_workers"] >= 1
        faulty.join()
        assert "error" not in faulty.result  # scripted death exits cleanly

    def test_torn_result_frame_is_detected_and_requeued(self):
        """A mid-write tear fails the worker; survivors re-serve its items."""
        rng = _rng("tear")
        injector = FaultInjector(FaultPlan(tear_result=rng.randint(1, 6)))
        with RemoteBackend(spawn_workers=False, **FAST) as backend:
            faulty = _WorkerThread(backend, injector=injector)
            _connect_sequenced(backend, faulty)
            assert backend.map_items(_square, ITEMS) == [
                x * x for x in ITEMS
            ]
            stats = backend.remote_stats()
        assert injector.frames_torn == 1
        assert stats["torn_frames"] >= 1
        assert stats["requeues"] >= 1
        faulty.join()
        # The tear kills the worker's own connection too: without a
        # rejoin policy that surfaces as a terminal disconnect.
        assert "error" in faulty.result

    def test_muted_worker_is_declared_partitioned(self):
        """A worker that goes silent mid-batch is dead to the parent.

        Muting swallows heartbeats and results alike while the socket
        stays open — exactly a one-way partition.  The parent's
        heartbeat timeout must fire, requeue, and finish the batch.
        """
        rng = _rng("mute")
        injector = FaultInjector(
            FaultPlan(mute_after_frames=rng.randint(2, 5))
        )
        with RemoteBackend(spawn_workers=False, **PARTITION) as backend:
            faulty = _WorkerThread(backend, injector=injector)
            _connect_sequenced(backend, faulty)
            assert backend.map_items(_square, ITEMS) == [
                x * x for x in ITEMS
            ]
            stats = backend.remote_stats()
        assert injector.frames_muted >= 1
        assert stats["dead_workers"] >= 1
        assert stats["requeues"] >= 1
        faulty.join()

    def test_scripted_death_then_rejoin_serves_the_next_batch(self):
        """Crash-then-rejoin: the worker comes back at the current epoch.

        Batch one survives the death via requeue onto the survivor;
        the dead worker then reconnects through the normal handshake
        (counted as a ``remote_rejoins``) and batch two is served by a
        full two-worker fleet with zero additional requeues.
        """
        rng = _rng("rejoin")
        injector = FaultInjector(
            FaultPlan(
                die_after_tasks=rng.randint(1, 6), rejoin_after_death=True
            )
        )
        rejoin = RetryPolicy(max_attempts=5, base_delay=0.05, max_delay=0.5)
        with RemoteBackend(spawn_workers=False, **FAST) as backend:
            faulty = _WorkerThread(backend, injector=injector, rejoin=rejoin)
            _connect_sequenced(backend, faulty)
            assert backend.map_items(_square, ITEMS) == [
                x * x for x in ITEMS
            ]
            assert injector.deaths == 1
            assert _wait_for(
                lambda: backend.remote_stats()["rejoins"] >= 1
                and _fleet_size(backend) >= 2
            ), "dead worker never rejoined"
            before = backend.remote_stats()
            second = [x + 100 for x in ITEMS]
            assert backend.map_items(_square, second) == [
                x * x for x in second
            ]
            after = backend.remote_stats()
        assert after["requeues"] == before["requeues"]
        assert after["dead_workers"] == before["dead_workers"]
        assert after["live_workers"] == 2
        assert after["resident_epoch"] == after["epoch"]

    def test_deadline_abort_then_clean_next_batch(self):
        """An expired deadline aborts the batch; stragglers drop as stale.

        The worker keeps streaming answers for the abandoned batch;
        TCP FIFO means they all arrive before any result of the next
        batch, where the globally monotonic chunk ids make them
        unmistakably stale — counted, never merged.
        """
        with RemoteBackend(spawn_workers=False, **FAST) as backend:
            _WorkerThread(backend)
            assert _wait_for(lambda: _fleet_size(backend) >= 1)
            with pytest.raises(DeadlineExceeded, match="unanswered"):
                backend.map_items(
                    _slow_square, ITEMS[:6], deadline=Deadline.after(0.3)
                )
            assert backend.remote_stats()["deadline_aborts"] == 1
            # The fleet is still healthy: the next (budget-less) batch
            # must be answered in full and bit-identically.
            assert backend.map_items(_square, ITEMS) == [
                x * x for x in ITEMS
            ]
            stats = backend.remote_stats()
        assert stats["stale_results"] >= 1
        assert stats["dead_workers"] == 0
