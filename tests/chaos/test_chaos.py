"""Chaos parity harness: faults must be bit-identical or loudly typed.

The serving layer's promise under failure is binary — after any fault
(a pool worker killed mid-stream, a journal or spill file torn by a
crashed writer, mutations landing between in-flight batches) a request
either returns results **bit-identical** to the serial reference or
raises a **typed** error (:class:`ExecutionError`, :class:`SpillError`).
Silent degradation — a stale answer, a half-replayed journal, a partial
batch — is the one outcome none of these tests may ever observe.

Layout:

* ``TestJournalTailTruncation`` — the PR 8 torn-append regression: a
  journal whose last line lost its newline (writer died mid-``write``)
  replays its complete prefix and counts the skip, while interior
  corruption stays fatal;
* ``TestSpillFileCorruption`` — truncated spill companions (dataset
  JSON, manifest) raise :class:`SpillError`, and a worker booting from
  a spill with a torn journal converges on the parent's acknowledged
  state;
* ``TestWorkerKillMatrix`` — killing resident pool workers mid-stream
  (flat and sharded index, strict validation on) surfaces as
  :class:`ExecutionError` and the rebooted pool serves bit-identically;
* ``TestMutationInterleaveParity`` — rating/profile mutations
  interleaved with batches replay bit-identically across the backend
  matrix, with strict validation observing every answer.
"""

from __future__ import annotations

import json
import random
from pathlib import Path

import pytest

from repro.config import RecommenderConfig
from repro.data.datasets import HealthDataset, generate_dataset
from repro.data.groups import Group
from repro.exceptions import ExecutionError
from repro.kernels import PackedRatings, SpillError
from repro.obs import get_registry
from repro.serving import RecommendationService
from repro.serving import service as service_module
from repro.serving.service import (
    SPILL_DATASET_NAME,
    SPILL_JOURNAL_NAME,
    _load_spill_dataset,
    _replay_spill_journal,
)


def _config(**overrides) -> RecommenderConfig:
    return RecommenderConfig(
        peer_threshold=0.1, top_k=5, top_z=4, **overrides
    )


def _groups(dataset, count=3, seed=31) -> list[Group]:
    rng = random.Random(seed)
    return [
        Group(member_ids=sorted(rng.sample(dataset.users.ids(), 3)))
        for _ in range(count)
    ]


def _serial_reference(dataset_payload, groups, z=4, mutations=()) -> list[str]:
    """Ground truth: a fresh serial service replaying the same history."""
    service = RecommendationService(
        HealthDataset.from_dict(dataset_payload), _config()
    )
    try:
        for user_id, item_id, value in mutations:
            service.ingest_rating(user_id, item_id, value)
        return [repr(rec) for rec in service.recommend_many(groups, z=z)]
    finally:
        service.close()


@pytest.fixture(scope="module")
def dataset():
    return generate_dataset(num_users=18, num_items=24, ratings_per_user=8, seed=13)


class TestJournalTailTruncation:
    """The satellite-1 regression: torn journal tails, byte by byte."""

    @pytest.fixture
    def worker(self, dataset, monkeypatch):
        """A resident worker service for `_replay_spill_journal` to mutate."""
        service = RecommendationService(
            HealthDataset.from_dict(dataset.to_dict()), _config()
        )
        monkeypatch.setattr(service_module, "_SERVE_WORKER", service)
        yield service
        service.close()

    def _write_journal(self, directory: Path, deltas, torn: str = "") -> Path:
        path = directory / SPILL_JOURNAL_NAME
        body = "".join(json.dumps(list(delta)) + "\n" for delta in deltas)
        path.write_text(body + torn, encoding="utf-8")
        return path

    def _torn_skips(self) -> int:
        return int(get_registry().counter("spill_journal_torn_tail").value)

    def test_complete_journal_replays_fully(self, worker, dataset, tmp_path):
        user, item = dataset.users.ids()[0], dataset.items.ids()[0]
        self._write_journal(tmp_path, [("rating", user, item, 5.0)])
        before = self._torn_skips()
        assert _replay_spill_journal(tmp_path) == 1
        assert worker.matrix.has_rating(user, item)
        assert self._torn_skips() == before  # nothing torn, nothing counted

    def test_torn_tail_is_skipped_and_counted(self, worker, dataset, tmp_path):
        user = dataset.users.ids()[0]
        committed, never_acked = dataset.items.ids()[:2]
        self._write_journal(
            tmp_path,
            [("rating", user, committed, 5.0)],
            torn=f'["rating", "{user}", "{never_acked}"',
        )
        before = self._torn_skips()
        assert _replay_spill_journal(tmp_path) == 1
        assert worker.matrix.has_rating(user, committed)
        assert not worker.matrix.has_rating(user, never_acked)
        assert self._torn_skips() == before + 1

    def test_byte_truncated_journal_replays_prefix(
        self, worker, dataset, tmp_path
    ):
        # The regression proper: truncate a valid journal mid-line, the
        # way a crashed writer leaves it.  Pre-fix this raised a bare
        # json.JSONDecodeError out of the replay loop.
        user = dataset.users.ids()[1]
        first, second = dataset.items.ids()[:2]
        path = self._write_journal(
            tmp_path,
            [("rating", user, first, 4.0), ("rating", user, second, 3.0)],
        )
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) - 9])  # tear into line 2
        before = self._torn_skips()
        assert _replay_spill_journal(tmp_path) == 1
        assert worker.matrix.has_rating(user, first)
        assert not worker.matrix.has_rating(user, second)
        assert self._torn_skips() == before + 1

    def test_interior_corruption_is_fatal(self, worker, dataset, tmp_path):
        user, item = dataset.users.ids()[0], dataset.items.ids()[0]
        path = tmp_path / SPILL_JOURNAL_NAME
        good = json.dumps(["rating", user, item, 5.0])
        path.write_text(f"{{torn mid-line\n{good}\n", encoding="utf-8")
        with pytest.raises(SpillError, match="line 1"):
            _replay_spill_journal(tmp_path)

    def test_malformed_delta_is_fatal(self, worker, dataset, tmp_path):
        self._write_journal(tmp_path, [("rating", dataset.users.ids()[0])])
        with pytest.raises(SpillError, match="malformed"):
            _replay_spill_journal(tmp_path)
        self._write_journal(tmp_path, [("unknown-kind", "a", "b", 1.0)])
        with pytest.raises(SpillError, match="malformed"):
            _replay_spill_journal(tmp_path)

    def test_missing_or_empty_journal_is_a_noop(self, worker, tmp_path):
        before = self._torn_skips()
        assert _replay_spill_journal(tmp_path) == 0  # no file at all
        (tmp_path / SPILL_JOURNAL_NAME).write_text("", encoding="utf-8")
        assert _replay_spill_journal(tmp_path) == 0
        assert self._torn_skips() == before


class TestSpillFileCorruption:
    """Torn spill companions: loud typed errors, never a quiet boot."""

    def _publish(self, dataset, directory) -> None:
        """Publish a spill the way an owning service does, then release it."""
        service = RecommendationService(
            HealthDataset.from_dict(dataset.to_dict()),
            _config(packed_spill=str(directory)),
        )
        service.close()

    def test_truncated_spill_dataset_raises_spill_error(self, dataset, tmp_path):
        self._publish(dataset, tmp_path)
        target = tmp_path / SPILL_DATASET_NAME
        target.write_bytes(target.read_bytes()[:-40])
        with pytest.raises(SpillError, match="truncated"):
            _load_spill_dataset(tmp_path)

    def test_truncated_manifest_raises_spill_error(self, dataset, tmp_path):
        # ``PackedRatings.open_mmap`` is the loud worker-boot primitive
        # (``attach_spill`` is the parent-side wrapper that may fall
        # back to an in-memory rebuild — correctness never depends on a
        # spill, so only the mmap opener itself is required to raise).
        self._publish(dataset, tmp_path)
        manifest = tmp_path / "manifest.json"
        manifest.write_bytes(manifest.read_bytes()[:-5])
        clone = HealthDataset.from_dict(dataset.to_dict())
        with pytest.raises(SpillError, match="manifest"):
            PackedRatings.open_mmap(tmp_path, clone.ratings)

    def test_worker_boot_from_torn_journal_converges(self, dataset, tmp_path):
        """End to end: a worker rebooted from a spill whose journal lost
        its final append serves the parent's last acknowledged state."""
        payload = dataset.to_dict()
        groups = _groups(dataset)
        config = _config(
            exec_backend="pool",
            exec_workers=2,
            serve_workers=2,
            group_cache_size=0,
            relevance_cache_size=0,
            packed_spill=str(tmp_path),
        )
        service = RecommendationService(
            HealthDataset.from_dict(payload), config
        )
        try:
            service.recommend_many(groups, z=4)
            user = groups[0].member_ids[0]
            unseen = [
                item
                for item in dataset.items.ids()
                if not service.matrix.has_rating(user, item)
            ]
            mutation = (user, unseen[0], 5.0)
            service.ingest_rating(*mutation)
            reference = _serial_reference(
                payload, groups, mutations=[mutation]
            )
            assert [
                repr(rec) for rec in service.recommend_many(groups, z=4)
            ] == reference

            # A second writer died mid-append: the delta never reached
            # the epoch bump, so no acknowledged state includes it.
            journal = tmp_path / SPILL_JOURNAL_NAME
            with journal.open("ab") as handle:
                handle.write(b'["rating", "' + user.encode() + b'", "d')

            # Kill the resident workers; the pool surfaces a typed error
            # on some subsequent batch, then reboots from the torn spill.
            for victim in list(service.backend._workers):
                victim.process.terminate()
                victim.process.join()
            with pytest.raises(ExecutionError):
                for _ in range(10):
                    service.recommend_many(groups, z=4)
            recovered = [
                repr(rec) for rec in service.recommend_many(groups, z=4)
            ]
            assert recovered == reference
        finally:
            service.close()


class TestWorkerKillMatrix:
    """Pool workers killed mid-stream, across the index matrix."""

    @pytest.mark.parametrize("shards", [1, 3])
    def test_kill_surfaces_typed_error_then_recovers(self, dataset, shards):
        payload = dataset.to_dict()
        groups = _groups(dataset, seed=47)
        reference = _serial_reference(payload, groups)
        config = _config(
            exec_backend="pool",
            exec_workers=2,
            serve_workers=2,
            group_cache_size=0,
            relevance_cache_size=0,
            index_shards=shards,
            validation="strict",
        )
        service = RecommendationService(HealthDataset.from_dict(payload), config)
        try:
            first = [repr(rec) for rec in service.recommend_many(groups, z=4)]
            assert first == reference
            victim = service.backend._workers[0]
            victim.process.terminate()
            victim.process.join()
            with pytest.raises(ExecutionError):
                for _ in range(10):
                    service.recommend_many(groups, z=4)
            recovered = [
                repr(rec) for rec in service.recommend_many(groups, z=4)
            ]
            assert recovered == reference
        finally:
            service.close()


class TestMutationInterleaveParity:
    """Mutations between in-flight batches, across the backend matrix."""

    MATRIX = (
        ("serial", 1),
        ("pool", 1),
        ("pool", 3),
    )

    def _trace(self, payload, script, backend, shards) -> list:
        config = _config(
            exec_backend=backend,
            exec_workers=2,
            serve_workers=2,
            index_shards=shards,
            validation="strict" if backend != "serial" or shards != 1 else "off",
        )
        service = RecommendationService(HealthDataset.from_dict(payload), config)
        trace: list = []
        try:
            for op in script:
                if op[0] == "batch":
                    groups = [Group(member_ids=list(m)) for m in op[1]]
                    trace.append(
                        [repr(rec) for rec in service.recommend_many(groups, z=4)]
                    )
                elif op[0] == "ingest":
                    service.ingest_rating(op[1], op[2], op[3])
                else:
                    service.update_profile(
                        op[1], lambda user: setattr(user, "age", 44)
                    )
        finally:
            service.close()
        return trace

    def test_interleaved_mutations_stay_bit_identical(self, dataset):
        payload = dataset.to_dict()
        rng = random.Random(7)
        pool = rng.sample(dataset.users.ids(), 8)
        members = tuple(
            tuple(sorted(rng.sample(pool, 3))) for _ in range(3)
        )
        items = dataset.items.ids()
        script = [
            ("batch", members),
            ("ingest", pool[0], items[0], 1.0),
            ("batch", members),
            ("profile", pool[1]),
            ("ingest", pool[2], items[3], 5.0),
            ("batch", members),
        ]
        reference = self._trace(payload, script, *self.MATRIX[0])
        batches = [step for step in reference if isinstance(step, list)]
        assert batches[0] != batches[1], (
            "the interleaved mutation was supposed to change the second "
            "batch — the scenario is vacuous"
        )
        for backend, shards in self.MATRIX[1:]:
            trace = self._trace(payload, script, backend, shards)
            assert trace == reference, (
                f"backend={backend} shards={shards} diverged from the "
                f"serial reference under interleaved mutations"
            )
