"""Unit tests for the TF-IDF model (Definition 4)."""

from __future__ import annotations

import math

import pytest

from repro.text.tfidf import TfIdfModel, corpus_tfidf
from repro.text.tokenizer import Tokenizer


@pytest.fixture
def corpus() -> list[str]:
    return [
        "acute bronchitis cough inhaler",
        "chest pain heart pressure",
        "bronchitis inhaler breathing exercise",
        "diet nutrition meal plan",
    ]


class TestFitting:
    def test_idf_matches_definition4(self, corpus):
        model = TfIdfModel(tokenizer=Tokenizer(remove_stopwords=False)).fit(corpus)
        # 'bronchitis' appears in 2 of 4 documents: idf = log(4/2).
        assert model.idf("bronchitis") == pytest.approx(math.log(2.0))
        # 'diet' appears in 1 of 4 documents: idf = log(4).
        assert model.idf("diet") == pytest.approx(math.log(4.0))

    def test_idf_of_unknown_term_is_zero(self, corpus):
        model = TfIdfModel().fit(corpus)
        assert model.idf("unknown-term") == 0.0

    def test_term_in_every_document_has_zero_idf(self):
        model = TfIdfModel(tokenizer=Tokenizer(remove_stopwords=False)).fit(
            ["flu season", "flu vaccine", "flu symptoms"]
        )
        assert model.idf("flu") == pytest.approx(0.0)

    def test_document_frequency_reconstruction(self, corpus):
        model = TfIdfModel(tokenizer=Tokenizer(remove_stopwords=False)).fit(corpus)
        assert model.document_frequency("bronchitis") == 2
        assert model.document_frequency("diet") == 1
        assert model.document_frequency("unknown") == 0

    def test_vocabulary_and_num_documents(self, corpus):
        model = TfIdfModel().fit(corpus)
        assert model.num_documents == 4
        assert "bronchitis" in model.vocabulary
        assert model.is_fitted


class TestTransform:
    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            TfIdfModel().transform("some text")

    def test_vector_weights_are_tf_times_idf(self, corpus):
        model = TfIdfModel(tokenizer=Tokenizer(remove_stopwords=False)).fit(corpus)
        vector = model.transform("diet diet nutrition")
        assert vector["diet"] == pytest.approx(2.0 * math.log(4.0))
        assert vector["nutrition"] == pytest.approx(1.0 * math.log(4.0))

    def test_common_terms_filtered_out(self):
        model = TfIdfModel(tokenizer=Tokenizer(remove_stopwords=False)).fit(
            ["flu shot", "flu rest"]
        )
        vector = model.transform("flu shot")
        assert "flu" not in vector  # idf = 0 ⇒ filtered
        assert "shot" in vector

    def test_out_of_vocabulary_terms_ignored(self, corpus):
        model = TfIdfModel().fit(corpus)
        vector = model.transform("zzz unseen words")
        assert len(vector) == 0

    def test_sublinear_tf(self, corpus):
        model = TfIdfModel(
            tokenizer=Tokenizer(remove_stopwords=False), sublinear_tf=True
        ).fit(corpus)
        vector = model.transform("diet diet diet")
        assert vector["diet"] == pytest.approx((1.0 + math.log(3.0)) * math.log(4.0))

    def test_length_normalisation_preserves_cosine(self, corpus):
        plain = TfIdfModel(tokenizer=Tokenizer(remove_stopwords=False)).fit(corpus)
        normalised = TfIdfModel(
            tokenizer=Tokenizer(remove_stopwords=False), normalize_length=True
        ).fit(corpus)
        a, b = corpus[0], corpus[2]
        assert plain.similarity(a, b) == pytest.approx(normalised.similarity(a, b))

    def test_smooth_idf_never_zero(self, corpus):
        model = TfIdfModel(smooth_idf=True).fit(corpus)
        assert all(model.idf(term) > 0 for term in model.vocabulary)


class TestSimilarity:
    def test_identical_documents_have_similarity_one(self, corpus):
        model = TfIdfModel().fit(corpus)
        assert model.similarity(corpus[0], corpus[0]) == pytest.approx(1.0)

    def test_related_documents_more_similar_than_unrelated(self, corpus):
        model = TfIdfModel().fit(corpus)
        related = model.similarity(corpus[0], corpus[2])     # share bronchitis/inhaler
        unrelated = model.similarity(corpus[0], corpus[3])   # respiratory vs nutrition
        assert related > unrelated

    def test_corpus_tfidf_helper(self, corpus):
        model, vectors = corpus_tfidf(corpus)
        assert model.is_fitted
        assert len(vectors) == len(corpus)
