"""Unit tests for sparse vectors and cosine similarity."""

from __future__ import annotations

import math

import pytest

from repro.text.vectors import SparseVector, cosine_similarity


class TestConstructionAndAccess:
    def test_zero_entries_dropped(self):
        vector = SparseVector({"a": 0.0, "b": 2.0})
        assert "a" not in vector
        assert len(vector) == 1

    def test_getitem_defaults_to_zero(self):
        vector = SparseVector({"a": 1.0})
        assert vector["missing"] == 0.0
        assert vector.get("missing", 7.0) == 7.0

    def test_equality_ignores_explicit_zeros(self):
        assert SparseVector({"a": 1.0, "b": 0.0}) == SparseVector({"a": 1.0})

    def test_hashable(self):
        assert hash(SparseVector({"a": 1.0})) == hash(SparseVector({"a": 1.0}))

    def test_to_dict_copy(self):
        vector = SparseVector({"a": 1.0})
        payload = vector.to_dict()
        payload["a"] = 99.0
        assert vector["a"] == 1.0


class TestArithmetic:
    def test_dot_product(self):
        a = SparseVector({"x": 1.0, "y": 2.0})
        b = SparseVector({"y": 3.0, "z": 4.0})
        assert a.dot(b) == 6.0
        assert b.dot(a) == 6.0

    def test_norm(self):
        assert SparseVector({"x": 3.0, "y": 4.0}).norm() == 5.0
        assert SparseVector().norm() == 0.0

    def test_cosine_identical_is_one(self):
        a = SparseVector({"x": 2.0, "y": 1.0})
        assert a.cosine(a) == pytest.approx(1.0)

    def test_cosine_orthogonal_is_zero(self):
        assert SparseVector({"x": 1.0}).cosine(SparseVector({"y": 1.0})) == 0.0

    def test_cosine_with_empty_vector_is_zero(self):
        assert SparseVector({"x": 1.0}).cosine(SparseVector()) == 0.0

    def test_cosine_matches_manual_computation(self):
        a = SparseVector({"x": 1.0, "y": 2.0})
        b = SparseVector({"x": 2.0, "y": 1.0})
        expected = 4.0 / (math.sqrt(5.0) * math.sqrt(5.0))
        assert a.cosine(b) == pytest.approx(expected)

    def test_scale_and_add(self):
        a = SparseVector({"x": 1.0, "y": 2.0})
        assert a.scale(2.0).to_dict() == {"x": 2.0, "y": 4.0}
        combined = a.add(SparseVector({"y": 1.0, "z": 3.0}))
        assert combined.to_dict() == {"x": 1.0, "y": 3.0, "z": 3.0}

    def test_normalized_has_unit_norm(self):
        assert SparseVector({"x": 3.0, "y": 4.0}).normalized().norm() == pytest.approx(1.0)
        assert SparseVector().normalized() == SparseVector()

    def test_top_terms_ordering(self):
        vector = SparseVector({"a": 1.0, "b": 3.0, "c": 2.0})
        assert vector.top_terms(2) == [("b", 3.0), ("c", 2.0)]

    def test_module_level_cosine_helper(self):
        assert cosine_similarity({"x": 1.0}, {"x": 2.0}) == pytest.approx(1.0)
