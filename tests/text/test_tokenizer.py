"""Unit tests for the tokenizer."""

from __future__ import annotations

from repro.text.tokenizer import DEFAULT_STOPWORDS, Tokenizer, simple_stem


class TestSimpleStem:
    def test_strips_common_suffixes(self):
        assert simple_stem("ratings") == "rating"
        assert simple_stem("treated") == "treat"
        assert simple_stem("walking") == "walk"

    def test_keeps_short_tokens_unchanged(self):
        # Stripping would leave fewer than 4 characters.
        assert simple_stem("bed") == "bed"
        assert simple_stem("dogs") == "dogs"

    def test_no_matching_suffix(self):
        assert simple_stem("cancer") == "cancer"


class TestTokenizer:
    def test_lowercases_and_splits_on_non_alphanumeric(self):
        tokenizer = Tokenizer(remove_stopwords=False)
        assert tokenizer("Acute Bronchitis, 10 MG!") == ["acute", "bronchitis", "10", "mg"]

    def test_removes_stopwords_by_default(self):
        tokenizer = Tokenizer()
        tokens = tokenizer("the patient is in pain and has a fever")
        assert "the" not in tokens
        assert "and" not in tokens
        assert "pain" in tokens
        assert "fever" in tokens

    def test_min_length_filter(self):
        tokenizer = Tokenizer(min_length=3, remove_stopwords=False)
        assert tokenizer("a an the flu") == ["the", "flu"]

    def test_stemming_option(self):
        tokenizer = Tokenizer(stem=True, remove_stopwords=False)
        assert tokenizer("ratings rating") == ["rating", "rating"]

    def test_custom_stopwords(self):
        tokenizer = Tokenizer(stopwords=frozenset({"cancer"}))
        assert "cancer" not in tokenizer("breast cancer treatment")

    def test_empty_text(self):
        assert Tokenizer()("") == []

    def test_vocabulary(self):
        tokenizer = Tokenizer(remove_stopwords=False)
        vocab = tokenizer.vocabulary(["flu shot", "flu season"])
        assert vocab == ["flu", "season", "shot"]

    def test_default_stopwords_are_lowercase(self):
        assert all(word == word.lower() for word in DEFAULT_STOPWORDS)
