"""Dataset-shape tests: the declarative checks behind ``repro validate``.

Strategy: a freshly generated dataset (and its ``to_dict`` payload) must
pass every shape; then each shape is broken one way at a time and the
resulting violation list must name exactly that shape, with a message an
operator can act on.
"""

from __future__ import annotations

import pytest

from repro.data.datasets import generate_dataset
from repro.data.groups import Group
from repro.validation import (
    Violation,
    validate_dataset,
    validate_dataset_payload,
    validate_groups,
    validate_groups_payload,
)


@pytest.fixture(scope="module")
def dataset():
    return generate_dataset(num_users=12, num_items=20, ratings_per_user=6, seed=9)


@pytest.fixture
def payload(dataset):
    # to_dict returns fresh structures, so per-test mutation is safe.
    return dataset.to_dict()


def shapes(violations: list[Violation]) -> set[str]:
    return {violation.shape for violation in violations}


class TestDatasetPayload:
    def test_clean_payload_passes(self, payload):
        assert validate_dataset_payload(payload) == []

    def test_non_mapping_document(self):
        assert shapes(validate_dataset_payload([1, 2])) == {"dataset_document"}
        assert shapes(validate_dataset_payload(None)) == {"dataset_document"}

    def test_missing_sections_are_each_named(self, payload):
        del payload["ontology"]
        del payload["items"]
        violations = validate_dataset_payload(payload)
        messages = [v.message for v in violations if v.shape == "dataset_document"]
        assert any("'ontology'" in m for m in messages)
        assert any("'items'" in m for m in messages)

    def test_non_string_user_id(self, payload):
        payload["users"]["users"][0]["user_id"] = 7
        violations = validate_dataset_payload(payload)
        # The bad registry id is flagged, and (with the id gone from the
        # registry) that user's ratings become dangling references.
        assert "user_id_type" in shapes(violations)
        assert "rating_unknown_user" in shapes(violations)

    def test_empty_item_id(self, payload):
        payload["items"]["items"][0]["item_id"] = ""
        assert "item_id_type" in shapes(validate_dataset_payload(payload))

    def test_duplicate_ids(self, payload):
        users = payload["users"]["users"]
        users[1]["user_id"] = users[0]["user_id"]
        items = payload["items"]["items"]
        items[1]["item_id"] = items[0]["item_id"]
        found = shapes(validate_dataset_payload(payload))
        assert "duplicate_user_id" in found
        assert "duplicate_item_id" in found

    def test_malformed_section(self, payload):
        payload["users"] = {"users": "not a list"}
        assert "users_section" in shapes(validate_dataset_payload(payload))

    def test_bad_scale(self, payload):
        for bad in ([5.0, 1.0], [1.0], "1-5", [1.0, "five"]):
            payload["ratings"]["scale"] = bad
            assert "rating_scale" in shapes(validate_dataset_payload(payload))

    def test_bad_triple_arity(self, payload):
        payload["ratings"]["ratings"][0] = ["u0001", "d0001"]
        assert "rating_triple" in shapes(validate_dataset_payload(payload))

    def test_non_numeric_value(self, payload):
        payload["ratings"]["ratings"][0][2] = "five"
        assert "rating_value" in shapes(validate_dataset_payload(payload))
        # Booleans are not ratings even though bool subclasses int.
        payload["ratings"]["ratings"][0][2] = True
        assert "rating_value" in shapes(validate_dataset_payload(payload))

    def test_out_of_range_value(self, payload):
        low, high = payload["ratings"]["scale"]
        payload["ratings"]["ratings"][0][2] = high + 1
        violations = validate_dataset_payload(payload)
        assert shapes(violations) == {"rating_range"}
        assert str(low) in violations[0].message

    def test_unknown_rating_references(self, payload):
        payload["ratings"]["ratings"][0][0] = "ghost-user"
        payload["ratings"]["ratings"][1][1] = "ghost-item"
        found = shapes(validate_dataset_payload(payload))
        assert "rating_unknown_user" in found
        assert "rating_unknown_item" in found

    def test_violation_str_carries_shape_tag(self, payload):
        payload["ratings"]["ratings"][0][2] = "five"
        violation = validate_dataset_payload(payload)[0]
        assert str(violation).startswith("[rating_value] ")


class TestGroupsPayload:
    def test_clean_groups_pass(self, dataset):
        groups = [{"member_ids": dataset.users.ids()[:3]}]
        assert validate_groups_payload(groups, dataset.users.ids()) == []
        assert validate_groups_payload({"groups": groups}, dataset.users.ids()) == []

    def test_non_list_document(self):
        assert shapes(validate_groups_payload("nope")) == {"groups_document"}
        assert shapes(validate_groups_payload({"wrong": []})) == {"groups_document"}

    def test_non_object_entry(self):
        assert shapes(validate_groups_payload(["u1"])) == {"group_entry"}

    def test_empty_member_list(self):
        assert shapes(validate_groups_payload([{"member_ids": []}])) == {
            "group_members"
        }

    def test_non_string_member(self):
        violations = validate_groups_payload([{"member_ids": [3]}], ["u1"])
        assert shapes(violations) == {"user_id_type"}

    def test_unknown_member(self, dataset):
        violations = validate_groups_payload(
            [{"member_ids": ["ghost"]}], dataset.users.ids()
        )
        assert shapes(violations) == {"group_unknown_member"}

    def test_membership_check_skipped_without_registry(self):
        # No known ids given — referential integrity cannot be judged.
        assert validate_groups_payload([{"member_ids": ["anyone"]}]) == []


class TestObjectLevel:
    def test_clean_dataset_and_groups_pass(self, dataset):
        assert validate_dataset(dataset) == []
        group = Group(member_ids=dataset.users.ids()[:3])
        assert validate_groups([group], dataset) == []

    def test_out_of_scale_rating_object(self, dataset):
        # Mutate a rebuilt copy, not the module-scoped fixture.
        from repro.data.datasets import HealthDataset

        clone = HealthDataset.from_dict(dataset.to_dict())
        user = clone.ratings.user_ids()[0]
        item = next(iter(clone.ratings.items_of(user)))
        # Bypass RatingMatrix.add's own range guard — the object-level
        # check exists precisely for invariants broken behind the API.
        clone.ratings._by_user[user][item] = 99.0
        assert "rating_range" in shapes(validate_dataset(clone))

    def test_unknown_group_member_object(self, dataset):
        group = Group(member_ids=[dataset.users.ids()[0], "ghost"])
        violations = validate_groups([group], dataset)
        assert shapes(violations) == {"group_unknown_member"}
        assert "'ghost'" in violations[0].message
