"""Response-shape tests: paper invariants checked on served answers.

Strategy mirrors the dataset-shape tests: genuine pipeline output must
pass every shape, then each shape is broken by tampering with one field
of a real recommendation — the checks must catch exactly that defect.
The service-level tests wire the same checks through the
``validation="strict"|"log"|"off"`` knob, including the
``validation_failures{shape=...}`` counters and the poisoned-cache path.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.config import RecommenderConfig
from repro.core.pipeline import CaregiverPipeline
from repro.data.groups import random_group
from repro.exceptions import ConfigurationError, ValidationError
from repro.obs import MetricsRegistry, render_prometheus
from repro.serving import RecommendationService
from repro.validation import validate_group_response, validate_user_response

CONFIG = RecommenderConfig(peer_threshold=0.1, top_k=5, top_z=4, max_peers=10)
Z = CONFIG.top_z


def shapes(violations) -> set[str]:
    return {violation.shape for violation in violations}


@pytest.fixture(scope="module")
def world(small_dataset):
    """One genuine pipeline answer to tamper with, plus its inputs."""
    group = random_group(small_dataset.users.ids(), 3, seed=4)
    recommendation = CaregiverPipeline(small_dataset, CONFIG).recommend(group)
    assert recommendation.items  # a non-trivial answer to corrupt
    return small_dataset, group, recommendation


def tampered_selection(recommendation, items):
    selection = dataclasses.replace(recommendation.selection, items=tuple(items))
    return dataclasses.replace(recommendation, selection=selection)


class TestGroupShapes:
    def test_clean_answer_passes(self, world):
        dataset, _, recommendation = world
        assert (
            validate_group_response(
                recommendation, z=Z, matrix=dataset.ratings, selector="greedy"
            )
            == []
        )

    def test_oversized_selection(self, world):
        dataset, _, recommendation = world
        extra = [i for i in dataset.items.ids() if i not in recommendation.items]
        bad = tampered_selection(
            recommendation, list(recommendation.items) + extra[: Z + 1]
        )
        assert "item_count" in shapes(validate_group_response(bad, z=Z))

    def test_early_stopped_selection(self, world):
        _, _, recommendation = world
        bad = tampered_selection(recommendation, recommendation.items[:1])
        violations = validate_group_response(bad, z=Z)
        assert "item_count" in shapes(violations)
        assert "stopped early" in [
            v.message for v in violations if v.shape == "item_count"
        ][0]

    def test_short_selection_is_fine_when_pool_exhausted(self, world):
        # A one-member group whose top-k holds fewer than z items: the
        # greedy selector legitimately returns the whole (short) pool.
        dataset, _, _ = world
        config = dataclasses.replace(CONFIG, top_k=2, top_z=6)
        member = dataset.users.ids()[0]
        group = random_group([member], 1, seed=0)
        recommendation = CaregiverPipeline(dataset, config).recommend(group)
        assert len(recommendation.items) < 6
        assert (
            validate_group_response(
                recommendation, z=6, matrix=dataset.ratings, selector="greedy"
            )
            == []
        )

    def test_duplicate_decoded_ids(self, world):
        _, _, recommendation = world
        first = recommendation.items[0]
        bad = tampered_selection(
            recommendation, (first,) + recommendation.items[:-1]
        )
        assert "duplicate_item" in shapes(validate_group_response(bad, z=Z))

    def test_score_order_inversion(self, world):
        _, _, recommendation = world
        bad = dataclasses.replace(
            recommendation, plain_top_z=tuple(reversed(recommendation.plain_top_z))
        )
        violations = validate_group_response(bad, z=Z)
        assert "score_order" in shapes(violations)

    def test_already_rated_item(self, world):
        dataset, group, recommendation = world
        member = group.member_ids[0]
        rated = next(iter(dataset.ratings.items_of(member)))
        bad = tampered_selection(
            recommendation, (rated,) + recommendation.items[1:]
        )
        violations = validate_group_response(bad, z=Z, matrix=dataset.ratings)
        assert "already_rated" in shapes(violations)
        # Without the matrix (concurrent-mutation escape hatch) the
        # check is skipped rather than guessed.
        assert "already_rated" not in shapes(validate_group_response(bad, z=Z))

    def test_fairness_report_mismatch(self, world):
        _, _, recommendation = world
        report = dataclasses.replace(
            recommendation.selection.report, fairness=0.123
        )
        bad = dataclasses.replace(
            recommendation,
            selection=dataclasses.replace(recommendation.selection, report=report),
        )
        assert "fairness_report" in shapes(validate_group_response(bad, z=Z))

    def test_prop1_violation_detected(self, world):
        dataset, group, recommendation = world
        usable = set()
        for member in group.member_ids:
            usable.update(recommendation.candidates.user_top_items(member))
        outside = [i for i in dataset.items.ids() if i not in usable]
        assert len(outside) >= Z
        bad = tampered_selection(recommendation, outside[:Z])
        violations = validate_group_response(bad, z=Z, selector="greedy")
        assert "prop1" in shapes(violations)
        # The Prop-1 bound is only declared for the greedy selector.
        assert "prop1" not in shapes(
            validate_group_response(bad, z=Z, selector="brute-force")
        )


class TestUserShapes:
    def test_clean_answer_passes(self, world):
        dataset, _, _ = world
        user_id = dataset.users.ids()[0]
        items = CaregiverPipeline(dataset, CONFIG).recommend_for_user(user_id)
        assert (
            validate_user_response(
                items, user_id=user_id, k=CONFIG.top_k, matrix=dataset.ratings
            )
            == []
        )

    def test_every_user_shape_fires(self, world):
        dataset, _, _ = world
        user_id = dataset.users.ids()[0]
        items = CaregiverPipeline(dataset, CONFIG).recommend_for_user(user_id)
        assert len(items) >= 2
        too_many = validate_user_response(
            items, user_id=user_id, k=len(items) - 1, matrix=None
        )
        assert "item_count" in shapes(too_many)
        duplicated = validate_user_response(
            [items[0], items[0]], user_id=user_id, k=5, matrix=None
        )
        assert "duplicate_item" in shapes(duplicated)
        inverted = validate_user_response(
            list(reversed(items)), user_id=user_id, k=5, matrix=None
        )
        assert "score_order" in shapes(inverted)
        rated_id = next(iter(dataset.ratings.items_of(user_id)))
        rated = dataclasses.replace(items[0], item_id=rated_id)
        already = validate_user_response(
            [rated], user_id=user_id, k=5, matrix=dataset.ratings
        )
        assert "already_rated" in shapes(already)


class TestServiceWiring:
    def _service(self, dataset, mode, registry=None):
        config = dataclasses.replace(CONFIG, validation=mode)
        return RecommendationService(dataset, config, metrics=registry)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            RecommenderConfig(validation="paranoid")

    def test_strict_clean_traffic_is_bit_identical_to_off(self, small_dataset):
        strict = self._service(small_dataset, "strict")
        plain = self._service(small_dataset, "off")
        try:
            for seed in range(3):
                group = random_group(small_dataset.users.ids(), 3, seed=seed)
                assert repr(strict.recommend_group(group)) == repr(
                    plain.recommend_group(group)
                )
            user_id = small_dataset.users.ids()[0]
            assert repr(strict.recommend_user(user_id)) == repr(
                plain.recommend_user(user_id)
            )
        finally:
            strict.close()
            plain.close()

    def _poison(self, service, group, z):
        """Warm the group cache, then corrupt the cached entry."""
        clean = service.recommend_group(group, z=z)
        bad = dataclasses.replace(
            clean, plain_top_z=tuple(reversed(clean.plain_top_z))
        )
        service.group_cache.put((tuple(group.member_ids), z), bad)
        return bad

    def test_strict_raises_on_poisoned_cache_and_counts(self, small_dataset):
        registry = MetricsRegistry()
        service = self._service(small_dataset, "strict", registry)
        try:
            group = random_group(small_dataset.users.ids(), 3, seed=1)
            self._poison(service, group, Z)
            with pytest.raises(ValidationError) as excinfo:
                service.recommend_group(group, z=Z)
            assert "score_order" in str(excinfo.value)
            assert excinfo.value.violations
            rendered = render_prometheus(registry)
            assert 'repro_validation_failures_total{shape="score_order"} 1' in (
                rendered
            )
        finally:
            service.close()

    def test_log_mode_counts_but_serves(self, small_dataset):
        registry = MetricsRegistry()
        service = self._service(small_dataset, "log", registry)
        try:
            group = random_group(small_dataset.users.ids(), 3, seed=1)
            bad = self._poison(service, group, Z)
            served = service.recommend_group(group, z=Z)
            assert repr(served) == repr(bad)  # still served...
            counter = registry.counter("validation_failures", shape="score_order")
            assert counter.value == 1  # ...but never silently
        finally:
            service.close()

    def test_off_mode_neither_raises_nor_counts(self, small_dataset):
        registry = MetricsRegistry()
        service = self._service(small_dataset, "off", registry)
        try:
            group = random_group(small_dataset.users.ids(), 3, seed=1)
            bad = self._poison(service, group, Z)
            served = service.recommend_group(group, z=Z)
            assert repr(served) == repr(bad)
            assert "validation_failures" not in render_prometheus(registry)
        finally:
            service.close()

    def test_strict_batch_path_validates(self, small_dataset):
        service = self._service(small_dataset, "strict")
        try:
            groups = [
                random_group(small_dataset.users.ids(), 3, seed=s)
                for s in range(3)
            ]
            clean = service.recommend_many(groups, z=Z)
            assert len(clean) == 3
            self._poison(service, groups[1], Z)
            with pytest.raises(ValidationError):
                service.recommend_many(groups, z=Z)
        finally:
            service.close()

    def test_strict_survives_online_mutations(self, mutable_dataset):
        # The epoch guard: a mutation between compute and validate must
        # degrade to matrix-independent checks, never a false positive.
        service = self._service(mutable_dataset, "strict")
        try:
            group = random_group(mutable_dataset.users.ids(), 3, seed=2)
            before = service.recommend_group(group, z=Z)
            member = group.member_ids[0]
            service.ingest_rating(member, before.items[0], 5.0)
            after = service.recommend_group(group, z=Z)
            assert before.items[0] not in after.items
        finally:
            service.close()
