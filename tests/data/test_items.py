"""Unit tests for health documents and the item catalog."""

from __future__ import annotations

import pytest

from repro.data.items import HealthDocument, ItemCatalog
from repro.exceptions import UnknownItemError


class TestHealthDocument:
    def test_requires_non_empty_id(self):
        with pytest.raises(ValueError):
            HealthDocument(item_id="")

    def test_quality_bounds(self):
        with pytest.raises(ValueError):
            HealthDocument(item_id="d1", quality=1.5)
        with pytest.raises(ValueError):
            HealthDocument(item_id="d1", quality=-0.1)

    def test_full_text(self):
        document = HealthDocument(item_id="d1", title="Diet", text="eat fiber")
        assert document.full_text() == "Diet eat fiber"

    def test_roundtrip(self):
        document = HealthDocument(
            item_id="d1",
            title="Diet",
            text="eat fiber",
            topics=["nutrition"],
            source="expert-1",
            quality=0.9,
            concept_ids=["C1"],
        )
        rebuilt = HealthDocument.from_dict(document.to_dict())
        assert rebuilt.to_dict() == document.to_dict()


class TestItemCatalog:
    @pytest.fixture
    def catalog(self) -> ItemCatalog:
        return ItemCatalog(
            [
                HealthDocument(item_id="d1", title="Diet", topics=["nutrition"]),
                HealthDocument(item_id="d2", title="Walk", topics=["exercise"]),
                HealthDocument(
                    item_id="d3", title="Meal plan", topics=["nutrition", "diabetes"]
                ),
            ]
        )

    def test_get_and_contains(self, catalog):
        assert catalog.get("d1").title == "Diet"
        assert "d2" in catalog
        assert "missing" not in catalog

    def test_get_unknown_raises(self, catalog):
        with pytest.raises(UnknownItemError):
            catalog.get("missing")

    def test_remove(self, catalog):
        catalog.remove("d1")
        assert "d1" not in catalog
        with pytest.raises(UnknownItemError):
            catalog.remove("d1")

    def test_by_topic(self, catalog):
        assert [d.item_id for d in catalog.by_topic("nutrition")] == ["d1", "d3"]
        assert catalog.by_topic("unknown") == []

    def test_topics_sorted_distinct(self, catalog):
        assert catalog.topics() == ["diabetes", "exercise", "nutrition"]

    def test_ids_order_and_len(self, catalog):
        assert catalog.ids() == ["d1", "d2", "d3"]
        assert len(catalog) == 3

    def test_roundtrip(self, catalog):
        rebuilt = ItemCatalog.from_dict(catalog.to_dict())
        assert rebuilt.ids() == catalog.ids()
        assert rebuilt.get("d3").topics == ["nutrition", "diabetes"]
