"""Unit tests for the nutrition workload generator."""

from __future__ import annotations

import random

import pytest

from repro.data.nutrition import (
    DIETARY_CONDITIONS,
    NUTRIENTS,
    NutritionConfig,
    NutritionDataSource,
    Recipe,
    generate_nutrition_dataset,
)


class TestNutritionConfig:
    @pytest.mark.parametrize(
        "field, value",
        [("num_users", 0), ("num_recipes", 0), ("ratings_per_user", 0), ("rating_noise", -1.0)],
    )
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(ValueError):
            NutritionConfig(**{field: value})


class TestRecipe:
    def test_to_document_tags_nutrients(self):
        recipe = Recipe(
            item_id="r1",
            name="Salad 1",
            category="salad",
            nutrients={"sugar": 0.2, "protein": 0.8},
        )
        document = recipe.to_document()
        assert document.item_id == "r1"
        assert "nutrition" in document.topics
        assert "salad" in document.topics
        assert "low sugar" in document.text
        assert "high protein" in document.text


class TestGeneration:
    def test_sizes(self):
        dataset = generate_nutrition_dataset(
            num_users=12, num_recipes=20, ratings_per_user=6, seed=3
        )
        assert dataset.num_users == 12
        assert dataset.num_items == 20
        assert dataset.num_ratings == 12 * 6

    def test_deterministic(self):
        first = generate_nutrition_dataset(num_users=8, num_recipes=15, ratings_per_user=4, seed=9)
        second = generate_nutrition_dataset(num_users=8, num_recipes=15, ratings_per_user=4, seed=9)
        assert first.ratings.triples() == second.ratings.triples()

    def test_every_patient_has_a_dietary_condition(self):
        dataset = generate_nutrition_dataset(num_users=10, num_recipes=15, ratings_per_user=4, seed=3)
        known_concepts = {concept_id for _, concept_id, _, _ in DIETARY_CONDITIONS}
        for user in dataset.users:
            concepts = user.problem_concepts()
            assert concepts
            assert set(concepts) <= known_concepts

    def test_recipes_cover_all_nutrients(self):
        source = NutritionDataSource(NutritionConfig(num_recipes=10, seed=1))
        recipes = source.generate_recipes(random.Random(1))
        for recipe in recipes:
            assert set(recipe.nutrients) == set(NUTRIENTS)
            assert all(0.0 <= value <= 1.0 for value in recipe.nutrients.values())

    def test_diabetic_prefers_low_sugar_recipes(self):
        """The rating model encodes the dietary preference direction."""
        source = NutritionDataSource(NutritionConfig(rating_noise=0.0, seed=1))
        rng = random.Random(0)
        low_sugar = Recipe("r-low", "Low", "salad", {"sugar": 0.05})
        high_sugar = Recipe("r-high", "High", "dessert", {"sugar": 0.95})
        sensitivities = [("sugar", True)]
        low_rating = source._recipe_rating(rng, low_sugar, sensitivities)
        high_rating = source._recipe_rating(rng, high_sugar, sensitivities)
        assert low_rating > high_rating

    def test_ratings_within_scale(self):
        dataset = generate_nutrition_dataset(num_users=10, num_recipes=15, ratings_per_user=4, seed=3)
        for _, _, value in dataset.ratings.triples():
            assert 1.0 <= value <= 5.0
