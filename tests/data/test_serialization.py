"""Unit tests for JSON/CSV persistence."""

from __future__ import annotations

import pytest

from repro.data.datasets import generate_dataset
from repro.data.ratings import RatingMatrix
from repro.data.serialization import (
    load_dataset,
    load_json,
    load_ratings_csv,
    save_dataset,
    save_json,
    save_ratings_csv,
)
from repro.exceptions import SerializationError


class TestJson:
    def test_save_and_load_roundtrip(self, tmp_path):
        payload = {"a": 1, "b": [1, 2, 3]}
        path = save_json(payload, tmp_path / "payload.json")
        assert load_json(path) == payload

    def test_save_creates_parent_directories(self, tmp_path):
        path = save_json({"x": 1}, tmp_path / "nested" / "dir" / "payload.json")
        assert path.exists()

    def test_load_missing_file_raises(self, tmp_path):
        with pytest.raises(SerializationError):
            load_json(tmp_path / "missing.json")

    def test_load_invalid_json_raises(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(SerializationError):
            load_json(path)

    def test_unserialisable_payload_raises(self, tmp_path):
        with pytest.raises(SerializationError):
            save_json({"bad": object()}, tmp_path / "bad.json")


class TestDatasetPersistence:
    def test_dataset_roundtrip(self, tmp_path):
        dataset = generate_dataset(num_users=6, num_items=10, ratings_per_user=3, seed=1)
        path = save_dataset(dataset, tmp_path / "dataset.json")
        loaded = load_dataset(path)
        assert loaded.num_users == dataset.num_users
        assert loaded.ratings.triples() == dataset.ratings.triples()

    def test_malformed_dataset_raises(self, tmp_path):
        path = save_json({"users": {}}, tmp_path / "broken.json")
        with pytest.raises(SerializationError):
            load_dataset(path)


class TestRatingsCsv:
    def test_csv_roundtrip(self, tmp_path, tiny_matrix):
        path = save_ratings_csv(tiny_matrix, tmp_path / "ratings.csv")
        loaded = load_ratings_csv(path)
        assert sorted(loaded.triples()) == sorted(tiny_matrix.triples())

    def test_csv_without_header_is_accepted(self, tmp_path):
        path = tmp_path / "ratings.csv"
        path.write_text("u1,i1,4.0\nu2,i1,5.0\n")
        loaded = load_ratings_csv(path)
        assert loaded.num_ratings == 2

    def test_csv_with_bad_row_raises(self, tmp_path):
        path = tmp_path / "ratings.csv"
        path.write_text("u1,i1\n")
        with pytest.raises(SerializationError):
            load_ratings_csv(path)

    def test_csv_with_bad_value_raises(self, tmp_path):
        path = tmp_path / "ratings.csv"
        path.write_text("u1,i1,not-a-number\n")
        with pytest.raises(SerializationError):
            load_ratings_csv(path)

    def test_missing_csv_raises(self, tmp_path):
        with pytest.raises(SerializationError):
            load_ratings_csv(tmp_path / "missing.csv")

    def test_custom_scale_enforced(self, tmp_path):
        matrix = RatingMatrix([("u1", "i1", 4.0)])
        path = save_ratings_csv(matrix, tmp_path / "ratings.csv")
        with pytest.raises(SerializationError):
            load_ratings_csv(path, scale=(1.0, 3.0))
