"""Unit tests for the personal health record model."""

from __future__ import annotations

from repro.data.phr import (
    Allergy,
    HealthProblem,
    Measurement,
    Medication,
    PersonalHealthRecord,
    Procedure,
)


class TestEntries:
    def test_problem_text_and_roundtrip(self):
        problem = HealthProblem(name="Acute bronchitis", concept_id="C1", onset_year=2015)
        assert problem.as_text() == "Acute bronchitis"
        rebuilt = HealthProblem.from_dict(problem.to_dict())
        assert rebuilt == problem

    def test_medication_text_includes_dosage_and_frequency(self):
        medication = Medication(name="Ramipril", dosage="10 MG", frequency="daily")
        assert medication.as_text() == "Ramipril 10 MG daily"
        assert Medication.from_dict(medication.to_dict()) == medication

    def test_procedure_roundtrip(self):
        procedure = Procedure(name="Appendectomy", year=2010)
        assert Procedure.from_dict(procedure.to_dict()) == procedure

    def test_measurement_text(self):
        measurement = Measurement(name="Glucose", value=5.4, unit="mmol/L")
        assert measurement.as_text() == "Glucose 5.4 mmol/L"
        assert Measurement.from_dict(measurement.to_dict()) == measurement

    def test_allergy_text(self):
        allergy = Allergy(substance="Penicillin", reaction="rash")
        assert allergy.as_text() == "Penicillin rash"
        assert Allergy.from_dict(allergy.to_dict()) == allergy


class TestRecord:
    def test_empty_record(self):
        record = PersonalHealthRecord()
        assert record.is_empty()
        assert record.as_text() == ""
        assert record.problem_concept_ids() == []

    def test_add_helpers(self):
        record = PersonalHealthRecord()
        record.add_problem(HealthProblem(name="Asthma", concept_id="C-A"))
        record.add_medication(Medication(name="Salbutamol"))
        record.add_procedure(Procedure(name="Spirometry"))
        record.add_measurement(Measurement(name="FEV1", value=2.5, unit="L"))
        record.add_allergy(Allergy(substance="Pollen"))
        assert not record.is_empty()
        assert record.problem_concept_ids() == ["C-A"]

    def test_as_text_order_is_deterministic(self):
        record = PersonalHealthRecord(
            problems=[HealthProblem(name="Asthma")],
            medications=[Medication(name="Salbutamol")],
            notes="likes walking",
        )
        assert record.as_text() == "Asthma Salbutamol likes walking"

    def test_active_problems_filter(self):
        record = PersonalHealthRecord(
            problems=[
                HealthProblem(name="Asthma", active=True),
                HealthProblem(name="Old fracture", active=False),
            ]
        )
        assert [p.name for p in record.active_problems()] == ["Asthma"]

    def test_roundtrip(self):
        record = PersonalHealthRecord(
            problems=[HealthProblem(name="Asthma", concept_id="C-A")],
            medications=[Medication(name="Salbutamol", dosage="100 MCG")],
            procedures=[Procedure(name="Spirometry", year=2020)],
            measurements=[Measurement(name="FEV1", value=2.5, unit="L")],
            allergies=[Allergy(substance="Pollen")],
            notes="note",
        )
        rebuilt = PersonalHealthRecord.from_dict(record.to_dict())
        assert rebuilt.to_dict() == record.to_dict()

    def test_from_problems_constructor(self):
        record = PersonalHealthRecord.from_problems([("Asthma", "C-A"), ("Flu", "C-F")])
        assert record.problem_concept_ids() == ["C-A", "C-F"]
        assert [p.name for p in record.problems] == ["Asthma", "Flu"]
